//! Composition of the Table IV hardware-overhead estimate.

use crate::logic::{Fp32AdderArray, OperandCollector};
use crate::sram::SramMacro;
use crate::tech::TechnologyNode;

/// V100 die area in mm² (the denominator of the paper's 1.5 % figure).
pub const V100_DIE_AREA_MM2: f64 = 815.0;
/// V100 TDP in watts (the denominator of the paper's 1.6 % figure).
pub const V100_TDP_W: f64 = 250.0;

/// Area and power of one added hardware module.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleOverhead {
    /// Module name as it appears in Table IV.
    pub name: String,
    /// Area in mm² at the target node.
    pub area_mm2: f64,
    /// Power in watts at the target node.
    pub power_w: f64,
}

impl ModuleOverhead {
    /// Creates a module entry.
    pub fn new(name: &str, area_mm2: f64, power_w: f64) -> Self {
        ModuleOverhead { name: name.to_string(), area_mm2, power_w }
    }
}

/// The complete overhead estimate for the dual-side sparse Tensor Core.
#[derive(Clone, Debug, PartialEq)]
pub struct DsstcOverhead {
    node: TechnologyNode,
    modules: Vec<ModuleOverhead>,
}

impl DsstcOverhead {
    /// Builds the estimate for the paper's configuration: 80 SMs x 4
    /// sub-cores, two extra FP32 accumulate adders per Tensor Core, one
    /// 16-bank 4 KB accumulation buffer and one operand collector per
    /// sub-core, at 12 nm and 1.53 GHz.
    pub fn paper_configuration() -> Self {
        Self::for_configuration(TechnologyNode::Nm12, 80, 4, 2, 1.53)
    }

    /// Builds the estimate for an arbitrary GPU configuration.
    ///
    /// `tensor_cores_per_sub_core` extra adder pairs are charged per Tensor
    /// Core; one accumulation buffer + operand collector is charged per
    /// sub-core.
    pub fn for_configuration(
        node: TechnologyNode,
        num_sms: u64,
        sub_cores_per_sm: u64,
        tensor_cores_per_sub_core: u64,
        clock_ghz: f64,
    ) -> Self {
        let sub_cores = num_sms * sub_cores_per_sm;
        let tensor_cores = sub_cores * tensor_cores_per_sub_core;

        let adders = Fp32AdderArray::new(tensor_cores * 2);
        // Accumulation-buffer accesses: 16 x 4-byte writes per cycle per
        // sub-core at a representative 50 % duty cycle.
        let buffer = SramMacro::new(4 * 1024, 16);
        let buffer_bandwidth = 64.0 * clock_ghz * 1e9 * 0.5;
        let collector = OperandCollector::new(sub_cores, 16, 8, 36);

        let modules = vec![
            ModuleOverhead::new(
                "Float Point Adders",
                adders.area_mm2(node),
                adders.power_w(node, clock_ghz, 1.0),
            ),
            ModuleOverhead::new(
                "Accumulation Operand Collector",
                collector.area_mm2(node),
                collector.power_w(node, 1.0),
            ),
            ModuleOverhead::new(
                "Shared Accumulation Buffer",
                buffer.area_mm2(node) * sub_cores as f64,
                buffer.power_w(node, buffer_bandwidth) * sub_cores as f64,
            ),
        ];
        DsstcOverhead { node, modules }
    }

    /// The target technology node.
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// The per-module rows of Table IV.
    pub fn modules(&self) -> &[ModuleOverhead] {
        &self.modules
    }

    /// The "Total overhead" row.
    pub fn total(&self) -> ModuleOverhead {
        ModuleOverhead {
            name: "Total overhead on V100".to_string(),
            area_mm2: self.modules.iter().map(|m| m.area_mm2).sum(),
            power_w: self.modules.iter().map(|m| m.power_w).sum(),
        }
    }

    /// Total area as a fraction of the V100 die.
    pub fn area_fraction_of_v100(&self) -> f64 {
        self.total().area_mm2 / V100_DIE_AREA_MM2
    }

    /// Total power as a fraction of the V100 TDP.
    pub fn power_fraction_of_v100(&self) -> f64 {
        self.total().power_w / V100_TDP_W
    }

    /// Renders the estimate as a Table IV-style text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<34} {:>14} {:>18}\n", "Module Name", "Area (mm^2)", "Power (W)"));
        for m in &self.modules {
            out.push_str(&format!("{:<34} {:>14.3} {:>18.2}\n", m.name, m.area_mm2, m.power_w));
        }
        let total = self.total();
        out.push_str(&format!(
            "{:<34} {:>9.3} ({:.1}%) {:>12.2} ({:.2}%)\n",
            total.name,
            total.area_mm2,
            100.0 * self.area_fraction_of_v100(),
            total.power_w,
            100.0 * self.power_fraction_of_v100(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_total_is_close_to_table_iv() {
        let o = DsstcOverhead::paper_configuration();
        let total = o.total();
        assert!((total.area_mm2 - 12.8).abs() < 2.5, "area {}", total.area_mm2);
        assert!((total.power_w - 3.9).abs() < 1.2, "power {}", total.power_w);
        assert!(o.area_fraction_of_v100() < 0.02);
        assert!(o.power_fraction_of_v100() < 0.025);
    }

    #[test]
    fn buffer_dominates_area_adders_dominate_power() {
        let o = DsstcOverhead::paper_configuration();
        let buffer = &o.modules()[2];
        let adders = &o.modules()[0];
        assert!(buffer.area_mm2 > adders.area_mm2 * 10.0);
        assert!(adders.power_w > buffer.power_w);
    }

    #[test]
    fn three_modules_match_table_iv_rows() {
        let o = DsstcOverhead::paper_configuration();
        let names: Vec<&str> = o.modules().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Float Point Adders",
                "Accumulation Operand Collector",
                "Shared Accumulation Buffer"
            ]
        );
    }

    #[test]
    fn smaller_gpu_has_proportionally_smaller_overhead() {
        let full = DsstcOverhead::paper_configuration();
        let half = DsstcOverhead::for_configuration(TechnologyNode::Nm12, 40, 4, 2, 1.53);
        assert!(half.total().area_mm2 < full.total().area_mm2 * 0.6);
    }

    #[test]
    fn rendered_table_contains_all_rows_and_percentages() {
        let table = DsstcOverhead::paper_configuration().render_table();
        assert!(table.contains("Float Point Adders"));
        assert!(table.contains("Shared Accumulation Buffer"));
        assert!(table.contains("Total overhead"));
        assert!(table.contains('%'));
    }
}
