//! Wire-protocol client driving a `serve_demo --listen` (or any
//! [`WireServer`]) over TCP: pipelined mixed ResNet-50 / BERT traffic on a
//! handful of connections, verifying every request is answered exactly once
//! and printing the client-observed latency summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dsstc --example serve_demo   -- --listen 127.0.0.1:7411 &
//! cargo run --release -p dsstc --example serve_client -- --addr 127.0.0.1:7411
//! ```
//!
//! The client retries the initial connect for up to 60 seconds, so the two
//! processes can start concurrently (the CI wire smoke does exactly that).

#[cfg(target_os = "linux")]
use std::collections::HashMap;
#[cfg(target_os = "linux")]
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use dsstc::serve::net::WireClient;
#[cfg(target_os = "linux")]
use dsstc::serve::{percentile, InferRequest, ModelId, Priority};
#[cfg(target_os = "linux")]
use dsstc_tensor::{Matrix, SparsityPattern};

#[cfg(target_os = "linux")]
const USAGE: &str = "usage: serve_client --addr ADDR:PORT [--requests N] [--connections C] \
[--cluster]";

#[cfg(target_os = "linux")]
fn usage_error(message: &str) -> ! {
    eprintln!("serve_client: {message}\n{USAGE}");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
fn request_for(seed: u64) -> InferRequest {
    let model = if seed.is_multiple_of(2) { ModelId::ResNet50 } else { ModelId::BertBase };
    let priority = if seed.is_multiple_of(3) { Priority::High } else { Priority::Normal };
    let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, seed);
    InferRequest::new(model, features).with_priority(priority)
}

/// `--cluster` mode: treat `--addr` as a seed node of a consistent-hash
/// serving cluster, fetch the shard map with a `HELO` exchange, and route
/// every request to its shard's owner through the cluster-aware client —
/// following `NotMine` redirects and failing over to replica peers when a
/// node dies. Requests spread over many distinct shard keys (weight
/// sparsity varies per seed) so the stream exercises the whole ring; the
/// closing line reports the redirects and failovers the client performed,
/// which the CI cluster smoke greps after killing a node.
#[cfg(target_os = "linux")]
fn run_cluster(addr: std::net::SocketAddr, requests: u64) {
    use dsstc::serve::net::ClusterClient;
    // The seed node may still be booting; retry the initial hello like the
    // plain mode retries its connect.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut client = loop {
        match ClusterClient::connect(&[addr]) {
            Ok(client) => break client,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("could not reach the cluster at {addr} within 60s: {e}");
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    println!(
        "serve_client: {requests} cluster-routed requests via seed {addr} \
         (shard map v{}, {} node(s))",
        client.map().version,
        client.map().nodes.len()
    );
    let started = Instant::now();
    let mut latencies_us = Vec::with_capacity(requests as usize);
    for seed in 0..requests {
        let request = request_for(seed).with_weight_sparsity(0.50 + (seed % 48) as f64 * 0.01);
        let sent = Instant::now();
        let body = client.infer(&request).expect("cluster serves every request");
        assert_eq!(body.output.rows(), 4, "seed {seed}");
        assert_eq!(body.output.cols(), 64, "seed {seed}");
        latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "cluster ok: {requests} responses in {elapsed:.2}s ({:.1} req/s), \
         {} redirects followed, {} failovers   end-to-end us: p50 {:.0}  p99 {:.0}",
        requests as f64 / elapsed,
        client.redirects_followed(),
        client.failovers(),
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.99),
    );
}

/// The wire protocol client needs the epoll front-end (Linux-only).
#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("serve_client needs the epoll wire front-end, which is Linux-only");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<std::net::SocketAddr> = None;
    let mut requests: u64 = 48;
    let mut connections: usize = 2;
    let mut cluster = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next().map(|v| v.parse()) {
                Some(Ok(a)) => addr = Some(a),
                _ => usage_error("--addr needs an ADDR:PORT server address"),
            },
            "--requests" => {
                match iter.next().and_then(|v| v.parse().ok()).filter(|&n: &u64| n > 0) {
                    Some(n) => requests = n,
                    None => usage_error("--requests needs a positive integer"),
                }
            }
            "--connections" => {
                match iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0) {
                    Some(n) => connections = n,
                    None => usage_error("--connections needs a positive integer"),
                }
            }
            "--cluster" => cluster = true,
            unknown => usage_error(&format!("unknown flag {unknown}")),
        }
    }
    let Some(addr) = addr else {
        usage_error("--addr is required");
    };
    if cluster {
        // The cluster client owns one pooled connection per node; the
        // plain mode's --connections fan-out does not apply.
        if connections != 2 {
            usage_error("--connections applies to the plain mode, not --cluster");
        }
        run_cluster(addr, requests);
        return;
    }

    println!(
        "serve_client: {requests} pipelined requests over {connections} connection(s) to {addr}"
    );
    let started = Instant::now();
    let latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = WireClient::connect_retry(addr, Duration::from_secs(60))
                        .unwrap_or_else(|e| {
                            panic!("could not reach the server at {addr} within 60s: {e}")
                        });
                    let share = requests / connections as u64
                        + u64::from((c as u64) < requests % connections as u64);
                    // Pipeline the whole share before reading anything.
                    let mut sent = HashMap::new();
                    for i in 0..share {
                        let seed = c as u64 * 7_919 + i;
                        let id = client.send(&request_for(seed)).expect("send");
                        sent.insert(id, (seed, Instant::now()));
                    }
                    let mut latencies = Vec::with_capacity(share as usize);
                    for _ in 0..share {
                        let response = client.recv().expect("response");
                        let arrived = Instant::now();
                        let (seed, sent_at) =
                            sent.remove(&response.id).expect("every id answers exactly once");
                        let body = response.into_body().expect("served");
                        assert_eq!(body.output.rows(), 4, "seed {seed}");
                        assert_eq!(body.output.cols(), 64, "seed {seed}");
                        assert!(body.batch_size >= 1);
                        latencies.push(arrived.duration_since(sent_at).as_secs_f64() * 1e6);
                    }
                    assert!(sent.is_empty(), "every pipelined request answered");
                    latencies
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("connection thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "ok: {requests} responses in {elapsed:.2}s ({:.1} req/s)   end-to-end us: p50 {:.0}  p99 {:.0}  max {:.0}",
        requests as f64 / elapsed,
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.99),
        percentile(&latencies_us, 1.0),
    );
}
