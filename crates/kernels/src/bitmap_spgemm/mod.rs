//! The paper's dual-side sparse GEMM: bitmap encoding + outer product.
//!
//! [`BitmapSpGemm`] is the device-level kernel (Section III-C): the GEMM is
//! tiled into 128x128 thread-block tiles made of 32x32x16 warp tiles, the
//! operands are held in the two-level bitmap encoding, warp tiles whose
//! warp-bit is 0 on either side are skipped outright, and every surviving
//! warp tile runs the warp-level algorithm of [`warp`] — predicated OHMMAs
//! on condensed operands plus the gather-accumulate-scatter merge in the
//! OTC accumulation buffer.

pub mod warp;
mod word;

use dsstc_formats::{TwoLevelBitmapMatrix, VectorLayout};
use dsstc_sim::{AccumulationBuffer, GpuConfig, OtcStepCost, WorkloadProfile};
use dsstc_tensor::{GemmShape, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tiling::{GemmTiling, TrafficInputs};
use warp::{warp_spgemm, warp_tile_profile};

/// Description of a synthetic (statistically sampled) SpGEMM problem, used
/// when the matrices are too large to materialise — the Fig. 21 sparsity
/// sweep and the Fig. 22 network layers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticGemmSpec {
    /// GEMM shape.
    pub shape: GemmShape,
    /// Fraction of zeros in the A (activation) operand.
    pub a_sparsity: f64,
    /// Fraction of zeros in the B (weight) operand.
    pub b_sparsity: f64,
    /// How clustered the A operand's non-zeros are: the fraction of
    /// condensed 32-element vectors that are *entirely empty*, with the
    /// surviving non-zeros concentrated in the remaining vectors so the
    /// overall sparsity is preserved. `0.0` (the default) is the uniform,
    /// pessimistic case; real pruned checkpoints exhibit exactly this kind
    /// of unevenness (paper Fig. 6), which the per-step and warp-level
    /// skipping exploit.
    pub a_clustering: f64,
    /// Clustering of the B operand's non-zeros (same definition).
    pub b_clustering: f64,
    /// Overrides the DRAM footprint of the A operand (e.g. the original
    /// feature map instead of the lowered matrix for implicit im2col).
    pub a_bytes_override: Option<u64>,
    /// Overrides the DRAM footprint of the B operand.
    pub b_bytes_override: Option<u64>,
    /// Seed for the per-tile non-zero count sampling.
    pub seed: u64,
}

impl SyntheticGemmSpec {
    /// Creates a spec with uniform (unclustered) operands and no footprint
    /// overrides.
    pub fn new(shape: GemmShape, a_sparsity: f64, b_sparsity: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&a_sparsity) && (0.0..=1.0).contains(&b_sparsity),
            "sparsity must be in [0,1]"
        );
        SyntheticGemmSpec {
            shape,
            a_sparsity,
            b_sparsity,
            a_clustering: 0.0,
            b_clustering: 0.0,
            a_bytes_override: None,
            b_bytes_override: None,
            seed,
        }
    }

    /// Sets the clustering of both operands' non-zeros (see
    /// [`Self::a_clustering`]).
    ///
    /// # Panics
    /// Panics if a clustering is outside `[0, 1)` or would require the
    /// surviving vectors to be denser than 100 %.
    pub fn with_clustering(mut self, a_clustering: f64, b_clustering: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&a_clustering) && (0.0..1.0).contains(&b_clustering),
            "clustering must be in [0,1)"
        );
        assert!(
            (1.0 - self.a_sparsity) <= (1.0 - a_clustering) + 1e-12,
            "A clustering {a_clustering} incompatible with density {}",
            1.0 - self.a_sparsity
        );
        assert!(
            (1.0 - self.b_sparsity) <= (1.0 - b_clustering) + 1e-12,
            "B clustering {b_clustering} incompatible with density {}",
            1.0 - self.b_sparsity
        );
        self.a_clustering = a_clustering;
        self.b_clustering = b_clustering;
        self
    }

    /// Creates a spec with the operands oriented so that the **sparser** one
    /// sits on the column-condensed A side of the outer product.
    ///
    /// The A side skips at 8-element (25 %) granularity and triggers the
    /// whole-step skip when its condensed column is empty, whereas the B side
    /// only skips at 16-element (50 %) granularity (paper Section III-B3), so
    /// a GEMM library built on this kernel computes `D^T = B^T * A^T`
    /// whenever the B operand is the sparser one. The byte footprints follow
    /// their operands through the swap.
    pub fn oriented(
        shape: GemmShape,
        a_sparsity: f64,
        b_sparsity: f64,
        a_bytes: Option<u64>,
        b_bytes: Option<u64>,
        seed: u64,
    ) -> Self {
        let mut spec = if b_sparsity > a_sparsity {
            let mut s =
                Self::new(GemmShape::new(shape.n, shape.m, shape.k), b_sparsity, a_sparsity, seed);
            s.a_bytes_override = b_bytes;
            s.b_bytes_override = a_bytes;
            s
        } else {
            let mut s = Self::new(shape, a_sparsity, b_sparsity, seed);
            s.a_bytes_override = a_bytes;
            s.b_bytes_override = b_bytes;
            s
        };
        // The output footprint is M*N*4 either way; nothing else changes.
        spec.seed = seed;
        spec
    }
}

/// Configuration knobs of the dual-side SpGEMM, exposed for the ablation
/// benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitmapSpGemmOptions {
    /// Whether the accumulation buffer has the operand collector
    /// (paper Fig. 19/20). Disabling it inflates merge bank conflicts.
    pub operand_collector: bool,
    /// Whether the two-level (warp bitmap) encoding is used. Disabling it
    /// falls back to the one-level encoding of Fig. 8a: no whole-tile
    /// skipping and partial-matrix scatters that spill past the local
    /// accumulation buffer.
    pub two_level: bool,
}

impl Default for BitmapSpGemmOptions {
    fn default() -> Self {
        BitmapSpGemmOptions { operand_collector: true, two_level: true }
    }
}

/// Extra statistics the dual-side SpGEMM reports alongside its profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpGemmStats {
    /// Warp-tile x k-slice steps skipped entirely thanks to the warp bitmap.
    pub skipped_warp_tiles: u64,
    /// Total warp-tile x k-slice steps of the launch.
    pub total_warp_tiles: u64,
    /// OHMMA instructions skipped by predication inside surviving tiles.
    pub skipped_ohmma: u64,
    /// OHMMA instructions a dense outer-product execution would have issued.
    pub dense_ohmma: u64,
}

impl SpGemmStats {
    /// Fraction of dense OHMMA work avoided by predication inside surviving
    /// tiles (whole-tile skips avoid their OHMMAs implicitly and are counted
    /// in [`Self::skipped_warp_tiles`]).
    pub fn compute_savings(&self) -> f64 {
        if self.dense_ohmma == 0 {
            return 0.0;
        }
        self.skipped_ohmma as f64 / self.dense_ohmma as f64
    }
}

/// The dual-side sparse GEMM kernel (this paper's method).
#[derive(Clone, Debug)]
pub struct BitmapSpGemm {
    config: GpuConfig,
    tiling: GemmTiling,
    options: BitmapSpGemmOptions,
    /// Worker threads [`Self::execute_encoded`] may fan output tiles across
    /// (`0` = one per available core, resolved at execute time).
    execute_threads: usize,
}

impl BitmapSpGemm {
    /// Creates the kernel with the paper's default options and the paper's
    /// 32x32x16 warp tiling (see [`Self::for_device`] for the
    /// device-native tiling).
    pub fn new(config: GpuConfig) -> Self {
        BitmapSpGemm {
            config,
            tiling: GemmTiling::paper_spgemm(),
            options: BitmapSpGemmOptions::default(),
            execute_threads: 1,
        }
    }

    /// Creates the kernel running `config`'s **native** tiling
    /// ([`GpuConfig::native_tiling`]) — what a heterogeneous device pool
    /// uses so each device executes encodings shaped for its own Tensor
    /// Cores.
    pub fn for_device(config: GpuConfig) -> Self {
        let tiling = config.native_tiling();
        Self::new(config).with_tiling(tiling)
    }

    /// Overrides the GEMM tiling (and therefore the encoding this kernel
    /// produces and accepts).
    ///
    /// # Panics
    /// Panics if any tile dimension is zero or a block dimension is not a
    /// multiple of its warp dimension.
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        assert!(
            tiling.warp_m > 0 && tiling.warp_n > 0 && tiling.warp_k > 0,
            "warp tile dimensions must be non-zero"
        );
        assert!(
            tiling.block_m.is_multiple_of(tiling.warp_m)
                && tiling.block_n.is_multiple_of(tiling.warp_n),
            "block tile must be a whole number of warp tiles"
        );
        self.tiling = tiling;
        self
    }

    /// Overrides the ablation options.
    pub fn with_options(mut self, options: BitmapSpGemmOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets how many worker threads [`Self::execute_encoded`] may spread a
    /// single GEMM's output tiles across (`0` = one per available core,
    /// resolved when the GEMM runs). The default is `1` (serial). Grids too
    /// small to amortise thread startup always run serially, and the result
    /// is bit-identical at every thread count — each thread owns a disjoint
    /// band of output rows.
    pub fn with_execute_threads(mut self, threads: usize) -> Self {
        self.execute_threads = threads;
        self
    }

    /// The configured within-GEMM worker thread count (`0` = auto).
    pub fn execute_threads(&self) -> usize {
        self.execute_threads
    }

    /// The options in use.
    pub fn options(&self) -> BitmapSpGemmOptions {
        self.options
    }

    /// The GEMM tiling in use.
    pub fn tiling(&self) -> &GemmTiling {
        &self.tiling
    }

    /// The identity of the encodings this kernel produces and accepts.
    pub fn encoding_spec(&self) -> crate::encoding::EncodingSpec {
        crate::encoding::EncodingSpec::for_tiling(self.tiling)
    }

    /// Builds the workload profile (and skip statistics) of `A * B` for
    /// dense input matrices of arbitrary sparsity.
    pub fn profile_with_stats(&self, a: &Matrix, b: &Matrix) -> (WorkloadProfile, SpGemmStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let (wm, wn, wk) = (self.tiling.warp_m, self.tiling.warp_n, self.tiling.warp_k);
        let grid_m = shape.m.div_ceil(wm);
        let grid_n = shape.n.div_ceil(wn);
        let grid_k = shape.k.div_ceil(wk);

        // Per-tile, per-step condensed non-zero counts, gathered in one pass
        // over each operand.
        let mut a_counts = vec![vec![0usize; wk]; grid_m * grid_k];
        let mut a_tile_nnz = vec![0u32; grid_m * grid_k];
        for r in 0..shape.m {
            for c in 0..shape.k {
                if a[(r, c)] != 0.0 {
                    let idx = (r / wm) * grid_k + c / wk;
                    a_counts[idx][c % wk] += 1;
                    a_tile_nnz[idx] += 1;
                }
            }
        }
        let mut b_counts = vec![vec![0usize; wk]; grid_k * grid_n];
        let mut b_tile_nnz = vec![0u32; grid_k * grid_n];
        for r in 0..shape.k {
            for c in 0..shape.n {
                if b[(r, c)] != 0.0 {
                    let idx = (r / wk) * grid_n + c / wn;
                    b_counts[idx][r % wk] += 1;
                    b_tile_nnz[idx] += 1;
                }
            }
        }

        let otc = &self.config.otc;
        let mut profile = WorkloadProfile::new(format!("bitmap-spgemm-{shape}"));
        let mut stats = SpGemmStats {
            total_warp_tiles: (grid_m * grid_n * grid_k) as u64,
            ..Default::default()
        };
        let mut partial_nnz_total: u64 = 0;

        for im in 0..grid_m {
            for kk in 0..grid_k {
                let a_idx = im * grid_k + kk;
                let a_empty = a_tile_nnz[a_idx] == 0;
                for jn in 0..grid_n {
                    let b_idx = kk * grid_n + jn;
                    if self.options.two_level && (a_empty || b_tile_nnz[b_idx] == 0) {
                        stats.skipped_warp_tiles += 1;
                        stats.dense_ohmma += (wk as u64)
                            * dsstc_sim::OtcStepCost::dense_ohmma_count(wm.max(wn), otc);
                        profile.scalar_ops += 1; // warp-bitmap check
                        continue;
                    }
                    let tile = warp_tile_profile(
                        &a_counts[a_idx],
                        &b_counts[b_idx],
                        wm.max(wn),
                        otc,
                        self.options.operand_collector,
                    );
                    profile.ohmma_instructions += tile.cost.steps.ohmma_issued;
                    profile.bohmma_instructions += tile.cost.steps.bohmma;
                    profile.popc_instructions += tile.cost.steps.popc;
                    profile.merge_cycles += tile.cost.steps.merge_cycles;
                    profile.accum_conflict_cycles += tile.conflict_cycles;
                    profile.scalar_ops += 32; // tile address generation
                    partial_nnz_total += tile.cost.steps.partial_nnz;
                    stats.skipped_ohmma += tile.cost.steps.ohmma_skipped;
                    stats.dense_ohmma += tile.cost.dense_ohmma(wm.max(wn), otc);
                }
            }
        }

        // DRAM traffic with the two-level encoded operand footprints.
        let a_nnz: u64 = a_tile_nnz.iter().map(|&x| x as u64).sum();
        let b_nnz: u64 = b_tile_nnz.iter().map(|&x| x as u64).sum();
        let a_bytes =
            a_nnz * 2 + ((shape.m * shape.k) as u64).div_ceil(8) + (grid_m * grid_k) as u64 / 8 + 1;
        let b_bytes =
            b_nnz * 2 + ((shape.k * shape.n) as u64).div_ceil(8) + (grid_k * grid_n) as u64 / 8 + 1;
        let d_bytes = (shape.m * shape.n) as u64 * 4;
        let traffic = self.tiling.dram_traffic(&TrafficInputs {
            a_bytes,
            b_bytes,
            d_bytes,
            shape,
            l2_bytes: self.config.l2_bytes as u64,
            concurrent_blocks: (self.config.num_sms * self.config.max_blocks_per_sm) as u64,
        });
        profile.dram_bytes_read = traffic.read_bytes;
        profile.dram_bytes_written = traffic.write_bytes;
        profile.shared_bytes = a_bytes + b_bytes; // staged once per resident tile
        profile.thread_blocks = self.tiling.grid_blocks(&shape);

        if !self.options.two_level {
            // One-level encoding (Fig. 8a): partial-matrix non-zeros scatter
            // beyond the warp's local buffer and have to round-trip through
            // the memory hierarchy.
            profile.shared_bytes += partial_nnz_total * 8;
            profile.scalar_ops += partial_nnz_total * 2;
        }

        (profile, stats)
    }

    /// Builds only the workload profile of `A * B`.
    pub fn profile(&self, a: &Matrix, b: &Matrix) -> WorkloadProfile {
        self.profile_with_stats(a, b).0
    }

    /// Builds the workload profile of a large SpGEMM from a *statistical*
    /// description of its operands instead of materialised matrices.
    ///
    /// Per-tile, per-step non-zero counts are drawn from the binomial
    /// distribution implied by the operand sparsities (non-zeros placed
    /// uniformly at random), which is the distribution the materialised path
    /// produces for [`dsstc_tensor::SparsityPattern::Uniform`] data. A
    /// 33x33 lookup table of step costs keeps the warp-tile sweep cheap even
    /// for 4096-cubed problems.
    pub fn profile_synthetic(&self, spec: &SyntheticGemmSpec) -> (WorkloadProfile, SpGemmStats) {
        self.profile_synthetic_capped(spec, usize::MAX)
    }

    /// Like [`Self::profile_synthetic`], but samples at most `max_m_tiles`
    /// warp-tile rows of the M dimension and scales the compute-side events
    /// to the full grid (DRAM traffic and launch geometry stay analytic and
    /// exact).
    ///
    /// The per-tile non-zero counts are i.i.d. across tile rows, so the
    /// scaled profile converges on the exact one while costing
    /// `O(max_m_tiles)` instead of `O(M / warp_m)` — this is what lets a
    /// serving layer price large batched GEMMs per batch size at request
    /// rate.
    ///
    /// # Panics
    /// Panics if `max_m_tiles` is zero.
    pub fn profile_synthetic_capped(
        &self,
        spec: &SyntheticGemmSpec,
        max_m_tiles: usize,
    ) -> (WorkloadProfile, SpGemmStats) {
        assert!(max_m_tiles > 0, "at least one M tile row must be sampled");
        let shape = spec.shape;
        let (wm, wn, wk) = (self.tiling.warp_m, self.tiling.warp_n, self.tiling.warp_k);
        let full_grid_m = shape.m.div_ceil(wm);
        let grid_m = full_grid_m.min(max_m_tiles);
        let grid_n = shape.n.div_ceil(wn);
        let grid_k = shape.k.div_ceil(wk);
        let otc = &self.config.otc;
        let warp_dim = wm.max(wn);
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Sample per-(im,kk) A-step and per-(kk,jn) B-step non-zero counts.
        let a_density = 1.0 - spec.a_sparsity;
        let b_density = 1.0 - spec.b_sparsity;
        // With clustering `q`, a fraction `q` of condensed vectors is empty
        // and the survivors carry the non-zeros at density `d / (1 - q)`,
        // preserving the overall sparsity (paper Fig. 6's uneven case).
        let sample_counts = |rng: &mut StdRng,
                             vec_len: usize,
                             steps: usize,
                             density: f64,
                             clustering: f64|
         -> Vec<u16> {
            let boosted = (density / (1.0 - clustering)).min(1.0);
            (0..steps)
                .map(|_| {
                    if clustering > 0.0 && rng.random_bool(clustering) {
                        0
                    } else {
                        sample_binomial(rng, vec_len, boosted)
                    }
                })
                .collect()
        };
        let mut a_counts: Vec<Vec<u16>> = Vec::with_capacity(grid_m * grid_k);
        for im in 0..grid_m {
            let rows = wm.min(shape.m - im * wm);
            for kk in 0..grid_k {
                let steps = wk.min(shape.k - kk * wk);
                a_counts.push(sample_counts(&mut rng, rows, steps, a_density, spec.a_clustering));
            }
        }
        let mut b_counts: Vec<Vec<u16>> = Vec::with_capacity(grid_k * grid_n);
        for kk in 0..grid_k {
            let steps = wk.min(shape.k - kk * wk);
            for jn in 0..grid_n {
                let cols = wn.min(shape.n - jn * wn);
                // One count per step; each counts non-zeros across `cols`.
                b_counts.push(sample_counts(&mut rng, cols, steps, b_density, spec.b_clustering));
            }
        }

        // Lookup table of step costs indexed by (a_nnz, b_nnz).
        let table: Vec<OtcStepCost> = (0..=warp_dim)
            .flat_map(|a| (0..=warp_dim).map(move |b| (a, b)))
            .map(|(a, b)| OtcStepCost::for_vectors(a, b, warp_dim, otc))
            .collect();
        let step_cost =
            |a: u16, b: u16| -> &OtcStepCost { &table[a as usize * (warp_dim + 1) + b as usize] };

        let buffer = AccumulationBuffer::from_otc(otc);
        let conflict_factor = buffer.conflict_factor_estimate(16, self.options.operand_collector);

        let mut profile = WorkloadProfile::new(format!("bitmap-spgemm-synthetic-{shape}"));
        let mut stats = SpGemmStats {
            total_warp_tiles: (full_grid_m * grid_n * grid_k) as u64,
            ..Default::default()
        };
        let mut partial_nnz_total = 0u64;
        let dense_per_step = OtcStepCost::dense_ohmma_count(warp_dim, otc);

        for im in 0..grid_m {
            for kk in 0..grid_k {
                let a_steps = &a_counts[im * grid_k + kk];
                let a_empty = a_steps.iter().all(|&c| c == 0);
                for jn in 0..grid_n {
                    let b_steps = &b_counts[kk * grid_n + jn];
                    stats.dense_ohmma += dense_per_step * a_steps.len() as u64;
                    if self.options.two_level && (a_empty || b_steps.iter().all(|&c| c == 0)) {
                        stats.skipped_warp_tiles += 1;
                        profile.scalar_ops += 1;
                        continue;
                    }
                    let mut merge = 0u64;
                    for (&a, &b) in a_steps.iter().zip(b_steps) {
                        let c = step_cost(a, b);
                        profile.ohmma_instructions += c.ohmma_issued;
                        profile.bohmma_instructions += c.bohmma;
                        profile.popc_instructions += c.popc;
                        merge += c.merge_cycles;
                        partial_nnz_total += c.partial_nnz;
                        stats.skipped_ohmma += c.ohmma_skipped;
                    }
                    profile.merge_cycles += merge;
                    profile.accum_conflict_cycles +=
                        ((conflict_factor - 1.0) * merge as f64).round() as u64;
                    profile.scalar_ops += 32;
                }
            }
        }

        // Scale the sampled compute-side events to the full M grid; the
        // memory-side quantities below are analytic over the full shape.
        if grid_m < full_grid_m {
            let scale = full_grid_m as f64 / grid_m as f64;
            let scale_u = |v: u64| (v as f64 * scale).round() as u64;
            profile.ohmma_instructions = scale_u(profile.ohmma_instructions);
            profile.bohmma_instructions = scale_u(profile.bohmma_instructions);
            profile.popc_instructions = scale_u(profile.popc_instructions);
            profile.merge_cycles = scale_u(profile.merge_cycles);
            profile.accum_conflict_cycles = scale_u(profile.accum_conflict_cycles);
            profile.scalar_ops = scale_u(profile.scalar_ops);
            partial_nnz_total = scale_u(partial_nnz_total);
            stats.skipped_warp_tiles = scale_u(stats.skipped_warp_tiles);
            stats.skipped_ohmma = scale_u(stats.skipped_ohmma);
            stats.dense_ohmma = scale_u(stats.dense_ohmma);
        }

        // Encoded operand footprints (values + element bitmap + warp bitmap).
        let a_nnz = ((shape.m * shape.k) as f64 * a_density) as u64;
        let b_nnz = ((shape.k * shape.n) as f64 * b_density) as u64;
        let a_bytes = spec.a_bytes_override.unwrap_or(
            a_nnz * 2
                + ((shape.m * shape.k) as u64).div_ceil(8)
                + ((full_grid_m * grid_k) as u64).div_ceil(8),
        );
        let b_bytes = spec.b_bytes_override.unwrap_or(
            b_nnz * 2
                + ((shape.k * shape.n) as u64).div_ceil(8)
                + ((grid_k * grid_n) as u64).div_ceil(8),
        );
        let d_bytes = (shape.m * shape.n) as u64 * 4;
        let traffic = self.tiling.dram_traffic(&TrafficInputs {
            a_bytes,
            b_bytes,
            d_bytes,
            shape,
            l2_bytes: self.config.l2_bytes as u64,
            concurrent_blocks: (self.config.num_sms * self.config.max_blocks_per_sm) as u64,
        });
        profile.dram_bytes_read = traffic.read_bytes;
        profile.dram_bytes_written = traffic.write_bytes;
        profile.shared_bytes = a_bytes + b_bytes;
        profile.thread_blocks = self.tiling.grid_blocks(&shape);
        if !self.options.two_level {
            profile.shared_bytes += partial_nnz_total * 8;
            profile.scalar_ops += partial_nnz_total * 2;
        }
        (profile, stats)
    }

    /// Encodes the A (activation) operand of an SpGEMM into the two-level
    /// bitmap layout this kernel's warp tiling expects (column-major
    /// condensed vectors, `warp_m x warp_k` tiles), rounding values to FP16
    /// storage precision as it encodes (fused — no whole-matrix rounding
    /// pass, which matters because this runs per batch on the serve path).
    pub fn encode_a(&self, a: &Matrix) -> TwoLevelBitmapMatrix {
        TwoLevelBitmapMatrix::encode_f16(
            a,
            self.tiling.warp_m,
            self.tiling.warp_k,
            VectorLayout::ColumnMajor,
        )
    }

    /// Encodes the B (weight) operand of an SpGEMM into the two-level bitmap
    /// layout this kernel's warp tiling expects (row-major condensed
    /// vectors, `warp_k x warp_n` tiles), rounding values to FP16 storage
    /// precision as it encodes.
    ///
    /// A model-serving stack encodes its pruned weights once with this and
    /// reuses the encoding across requests (the paper encodes weights
    /// offline for the same reason).
    pub fn encode_b(&self, b: &Matrix) -> TwoLevelBitmapMatrix {
        TwoLevelBitmapMatrix::encode_f16(
            b,
            self.tiling.warp_k,
            self.tiling.warp_n,
            VectorLayout::RowMajor,
        )
    }

    /// Checks that encoded operands agree with each other and with this
    /// kernel's warp tiling.
    fn validate_encoded(&self, a_enc: &TwoLevelBitmapMatrix, b_enc: &TwoLevelBitmapMatrix) {
        assert_eq!(a_enc.cols(), b_enc.rows(), "inner dimensions must agree");
        let (wm, wn, wk) = (self.tiling.warp_m, self.tiling.warp_n, self.tiling.warp_k);
        assert!(
            a_enc.tile_rows() == wm && a_enc.tile_cols() == wk,
            "A operand tiling {}x{} does not match the kernel's {wm}x{wk}",
            a_enc.tile_rows(),
            a_enc.tile_cols()
        );
        assert!(
            b_enc.tile_rows() == wk && b_enc.tile_cols() == wn,
            "B operand tiling {}x{} does not match the kernel's {wk}x{wn}",
            b_enc.tile_rows(),
            b_enc.tile_cols()
        );
    }

    /// Functionally computes `A * B` over operands that are **already** in
    /// the two-level bitmap encoding (see [`Self::encode_a`] /
    /// [`Self::encode_b`]), skipping warp tiles whose warp-bit is 0 on
    /// either side.
    ///
    /// This is the word-parallel hot path (the `word` submodule): per-step bitmaps
    /// are single `u64` words, gathers walk `count_ones`/`trailing_zeros`
    /// over borrowed condensed-value slices, the tile grid is cache-blocked,
    /// and large grids fan output bands across
    /// [`Self::with_execute_threads`] scoped threads. Results are
    /// bit-identical to [`Self::execute_encoded_scalar`], which tilings
    /// wider than 64 fall back to.
    ///
    /// # Panics
    /// Panics if the operands' inner dimensions disagree or their tile
    /// shapes do not match this kernel's warp tiling.
    pub fn execute_encoded(
        &self,
        a_enc: &TwoLevelBitmapMatrix,
        b_enc: &TwoLevelBitmapMatrix,
    ) -> Matrix {
        self.validate_encoded(a_enc, b_enc);
        let (wm, wn) = (self.tiling.warp_m, self.tiling.warp_n);
        if wm > 64 || wn > 64 {
            // A step's bitmap no longer fits one word; keep the scalar path.
            return self.execute_encoded_scalar(a_enc, b_enc);
        }
        let threads = match self.execute_threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        word::execute(a_enc, b_enc, threads)
    }

    /// The retained scalar reference for [`Self::execute_encoded`]: the
    /// straightforward per-position loop over [`warp_spgemm`], against which
    /// the word-parallel path is differentially tested bit-for-bit.
    ///
    /// # Panics
    /// Panics if the operands' inner dimensions disagree or their tile
    /// shapes do not match this kernel's warp tiling.
    pub fn execute_encoded_scalar(
        &self,
        a_enc: &TwoLevelBitmapMatrix,
        b_enc: &TwoLevelBitmapMatrix,
    ) -> Matrix {
        self.validate_encoded(a_enc, b_enc);
        let (wm, wn) = (self.tiling.warp_m, self.tiling.warp_n);
        let mut out = Matrix::zeros(a_enc.rows(), b_enc.cols());
        for im in 0..a_enc.grid_rows() {
            for jn in 0..b_enc.grid_cols() {
                let mut acc = Matrix::zeros(wm, wn);
                for kk in 0..a_enc.grid_cols() {
                    let (a_tile, b_tile) = match (a_enc.tile(im, kk), b_enc.tile(kk, jn)) {
                        (Some(a_tile), Some(b_tile)) => (a_tile, b_tile),
                        _ => continue, // warp-bit 0 on either side: skip
                    };
                    warp_spgemm(a_tile, b_tile, &mut acc);
                }
                out.set_tile(im * wm, jn * wn, &acc);
            }
        }
        out
    }

    /// Functionally computes `A * B` with the warp-level outer-product
    /// algorithm over two-level bitmap operands, returning the product and
    /// the profile.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> (Matrix, WorkloadProfile) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let out = self.execute_encoded(&self.encode_a(a), &self.encode_b(b));
        let profile = self.profile(a, b);
        (out, profile)
    }
}

/// Samples a `Binomial(n, p)` count: exact Bernoulli summation for small
/// variance, a clamped normal approximation otherwise (fast enough to sweep
/// 4096-cubed problems while keeping the per-tile statistics faithful).
fn sample_binomial(rng: &mut StdRng, n: usize, p: f64) -> u16 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n as u16;
    }
    let variance = n as f64 * p * (1.0 - p);
    if variance < 9.0 {
        let mut c = 0u16;
        for _ in 0..n {
            if rng.random_bool(p) {
                c += 1;
            }
        }
        return c;
    }
    // Box-Muller normal approximation.
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let value = (n as f64 * p + z * variance.sqrt()).round();
    value.clamp(0.0, n as f64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_gemm::DenseGemm;
    use dsstc_sim::GpuTimingModel;
    use dsstc_tensor::SparsityPattern;

    fn kernel() -> BitmapSpGemm {
        BitmapSpGemm::new(GpuConfig::v100())
    }

    fn random(m: usize, n: usize, s: f64, seed: u64) -> Matrix {
        Matrix::random_sparse(m, n, s, SparsityPattern::Uniform, seed)
    }

    #[test]
    fn execute_matches_dense_reference_across_sparsities() {
        for (sa, sb) in [(0.0, 0.0), (0.5, 0.5), (0.9, 0.0), (0.0, 0.9), (0.95, 0.95)] {
            let a = random(64, 48, sa, 1);
            let b = random(48, 96, sb, 2);
            let (out, _) = kernel().execute(&a, &b);
            assert!(out.approx_eq(&a.matmul(&b), 1e-2), "sparsity ({sa},{sb})");
        }
    }

    #[test]
    fn execute_handles_ragged_shapes() {
        let a = random(50, 30, 0.7, 3);
        let b = random(30, 70, 0.6, 4);
        let (out, _) = kernel().execute(&a, &b);
        assert!(out.approx_eq(&a.matmul(&b), 1e-2));
    }

    #[test]
    fn dense_inputs_issue_as_many_ohmmas_as_the_inner_product_kernel() {
        let a = random(128, 128, 0.0, 5);
        let b = random(128, 128, 0.0, 6);
        let p = kernel().profile(&a, &b);
        let dense_hmma = (128u64 * 128 * 128) / 128;
        assert_eq!(p.ohmma_instructions, dense_hmma);
        assert_eq!(p.hmma_instructions, 0);
        assert!(p.bohmma_instructions > 0);
    }

    #[test]
    fn sparsity_reduces_issued_ohmmas() {
        let a_dense = random(128, 128, 0.0, 7);
        let b_dense = random(128, 128, 0.0, 8);
        let a_sparse = random(128, 128, 0.9, 7);
        let b_sparse = random(128, 128, 0.9, 8);
        let p_dense = kernel().profile(&a_dense, &b_dense);
        let p_dual = kernel().profile(&a_sparse, &b_sparse);
        assert!(p_dual.ohmma_instructions < p_dense.ohmma_instructions / 4);
    }

    #[test]
    fn skip_stats_track_empty_tiles() {
        // A entirely zero except one 32x16 tile.
        let mut a = Matrix::zeros(64, 32);
        a[(0, 0)] = 1.0;
        let b = random(32, 64, 0.0, 9);
        let (_, stats) = kernel().profile_with_stats(&a, &b);
        assert_eq!(stats.total_warp_tiles, 2 * 2 * 2);
        // 3 of the 4 A tiles are empty; each empty A tile kills grid_n = 2
        // warp tiles.
        assert_eq!(stats.skipped_warp_tiles, 6);
        assert!(stats.compute_savings() > 0.0);
    }

    #[test]
    fn dual_side_speedup_on_99_percent_sparsity_is_large() {
        let model = GpuTimingModel::v100();
        let shape = GemmShape::new(1024, 1024, 1024);
        let dense_est = model.estimate(&DenseGemm::new(GpuConfig::v100()).profile(&shape));
        let a = random(1024, 1024, 0.99, 11);
        let b = random(1024, 1024, 0.99, 12);
        let est = model.estimate(&kernel().profile(&a, &b));
        let speedup = est.speedup_over(&dense_est);
        assert!(speedup > 3.0, "expected a large dual-side speedup, got {speedup}x");
    }

    #[test]
    fn dense_inputs_are_only_modestly_slower_than_cutlass() {
        let model = GpuTimingModel::v100();
        let shape = GemmShape::new(1024, 1024, 1024);
        let dense_est = model.estimate(&DenseGemm::new(GpuConfig::v100()).profile(&shape));
        let a = random(1024, 1024, 0.0, 13);
        let b = random(1024, 1024, 0.0, 14);
        let est = model.estimate(&kernel().profile(&a, &b));
        // Ratio of our time to the dense baseline's: the bitmap/outer-product
        // overheads on fully dense inputs should stay below ~50%.
        let ratio = est.time_us() / dense_est.time_us();
        assert!(ratio > 0.9 && ratio < 1.5, "got {ratio}x of CUTLASS time");
    }

    #[test]
    fn ablation_disabling_two_level_is_never_faster() {
        let a = random(256, 256, 0.95, 15);
        let b = random(256, 256, 0.95, 16);
        let model = GpuTimingModel::v100();
        let base = model.estimate(&kernel().profile(&a, &b));
        let one_level = kernel()
            .with_options(BitmapSpGemmOptions { operand_collector: true, two_level: false });
        let est = model.estimate(&one_level.profile(&a, &b));
        assert!(est.time_us() >= base.time_us());
    }

    #[test]
    fn ablation_disabling_operand_collector_adds_conflicts() {
        let a = random(256, 256, 0.5, 17);
        let b = random(256, 256, 0.5, 18);
        let with = kernel().profile(&a, &b);
        let without = kernel()
            .with_options(BitmapSpGemmOptions { operand_collector: false, two_level: true })
            .profile(&a, &b);
        assert!(without.accum_conflict_cycles > with.accum_conflict_cycles);
    }

    #[test]
    fn profile_and_execute_report_identical_profiles() {
        let a = random(96, 64, 0.8, 19);
        let b = random(64, 96, 0.7, 20);
        let k = kernel();
        let (_, exec_profile) = k.execute(&a, &b);
        let profile = k.profile(&a, &b);
        assert_eq!(exec_profile, profile);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let _ = kernel().profile(&Matrix::zeros(4, 4), &Matrix::zeros(8, 8));
    }

    #[test]
    fn synthetic_profile_tracks_materialised_profile() {
        // The synthetic (sampled) path should agree with the exact path to
        // within sampling noise on instruction counts.
        let shape = GemmShape::new(512, 512, 512);
        let a = random(512, 512, 0.7, 41);
        let b = random(512, 512, 0.5, 42);
        let exact = kernel().profile(&a, &b);
        let (synthetic, _) =
            kernel().profile_synthetic(&SyntheticGemmSpec::new(shape, 0.7, 0.5, 43));
        let ratio = synthetic.ohmma_instructions as f64 / exact.ohmma_instructions as f64;
        assert!((0.85..=1.15).contains(&ratio), "OHMMA ratio {ratio}");
        let merge_ratio = synthetic.merge_cycles as f64 / exact.merge_cycles as f64;
        assert!((0.8..=1.2).contains(&merge_ratio), "merge ratio {merge_ratio}");
    }

    #[test]
    fn synthetic_profile_is_deterministic_and_respects_overrides() {
        let shape = GemmShape::new(256, 256, 256);
        let spec = SyntheticGemmSpec::new(shape, 0.9, 0.9, 7);
        let k = kernel();
        let (p1, s1) = k.profile_synthetic(&spec);
        let (p2, s2) = k.profile_synthetic(&spec);
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        let mut small = spec;
        small.a_bytes_override = Some(1024);
        small.b_bytes_override = Some(1024);
        let (p3, _) = k.profile_synthetic(&small);
        assert!(p3.dram_bytes_read < p1.dram_bytes_read);
    }

    #[test]
    fn capped_synthetic_profile_tracks_the_exact_one() {
        use dsstc_sim::GpuTimingModel;
        let spec = SyntheticGemmSpec::new(GemmShape::new(4096, 512, 512), 0.7, 0.85, 11);
        let k = kernel();
        let (exact, exact_stats) = k.profile_synthetic(&spec);
        let (capped, capped_stats) = k.profile_synthetic_capped(&spec, 16);
        // Memory-side quantities are analytic and must agree exactly.
        assert_eq!(capped.dram_bytes_read, exact.dram_bytes_read);
        assert_eq!(capped.thread_blocks, exact.thread_blocks);
        assert_eq!(capped_stats.total_warp_tiles, exact_stats.total_warp_tiles);
        // Compute-side quantities are scaled samples: close, not identical.
        let ratio = capped.ohmma_instructions as f64 / exact.ohmma_instructions as f64;
        assert!((0.9..=1.1).contains(&ratio), "OHMMA ratio {ratio}");
        let model = GpuTimingModel::v100();
        let t_ratio = model.estimate(&capped).time_us() / model.estimate(&exact).time_us();
        assert!((0.9..=1.1).contains(&t_ratio), "time ratio {t_ratio}");
        // An uncapped call is bit-identical to profile_synthetic.
        let (uncapped, _) = k.profile_synthetic_capped(&spec, usize::MAX);
        assert_eq!(uncapped, exact);
    }

    #[test]
    #[should_panic(expected = "at least one M tile row")]
    fn zero_cap_panics() {
        let spec = SyntheticGemmSpec::new(GemmShape::new(64, 64, 64), 0.5, 0.5, 1);
        let _ = kernel().profile_synthetic_capped(&spec, 0);
    }

    #[test]
    fn clustered_weights_skip_more_and_run_faster() {
        // Same overall sparsity, but with 60% of the weight vectors entirely
        // empty (paper Fig. 6's uneven distribution): more OHMMAs are
        // skipped and the modelled time drops.
        use dsstc_sim::GpuTimingModel;
        let shape = GemmShape::new(1024, 1024, 1024);
        let uniform = SyntheticGemmSpec::new(shape, 0.9, 0.0, 3);
        let clustered = SyntheticGemmSpec::new(shape, 0.9, 0.0, 3).with_clustering(0.6, 0.0);
        let k = kernel();
        let (p_uniform, s_uniform) = k.profile_synthetic(&uniform);
        let (p_clustered, s_clustered) = k.profile_synthetic(&clustered);
        assert!(p_clustered.ohmma_instructions < p_uniform.ohmma_instructions);
        assert!(s_clustered.skipped_warp_tiles >= s_uniform.skipped_warp_tiles);
        let model = GpuTimingModel::v100();
        assert!(model.estimate(&p_clustered).time_us() <= model.estimate(&p_uniform).time_us());
    }

    #[test]
    #[should_panic(expected = "incompatible with density")]
    fn clustering_denser_than_possible_panics() {
        let shape = GemmShape::new(64, 64, 64);
        let _ = SyntheticGemmSpec::new(shape, 0.1, 0.0, 1).with_clustering(0.5, 0.0);
    }

    #[test]
    fn execute_encoded_reuses_a_pre_encoded_weight_operand() {
        // A serving stack encodes the weight matrix once and replays it
        // against many activation batches; the results must match the dense
        // reference every time.
        let k = kernel();
        let b = random(48, 96, 0.8, 21);
        let b_enc = k.encode_b(&b);
        for seed in 0..3 {
            let a = random(64, 48, 0.6, 30 + seed);
            let out = k.execute_encoded(&k.encode_a(&a), &b_enc);
            assert!(out.approx_eq(&a.matmul(&b), 1e-2), "batch seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match the kernel's")]
    fn execute_encoded_rejects_foreign_tilings() {
        let k = kernel();
        let a = TwoLevelBitmapMatrix::encode(&Matrix::zeros(8, 8), 8, 8, VectorLayout::ColumnMajor);
        let b = k.encode_b(&Matrix::zeros(8, 8));
        let _ = k.execute_encoded(&a, &b);
    }

    #[test]
    fn device_native_tiling_executes_correctly_and_reports_its_spec() {
        // The A100's native 32x32x32 warp tiles are a genuinely different
        // encoding from the paper's 32x32x16 — and must still reproduce the
        // dense reference.
        let k = BitmapSpGemm::for_device(GpuConfig::a100());
        assert_eq!(*k.tiling(), GpuConfig::a100().native_tiling());
        assert_eq!(k.encoding_spec().b_tile(), (32, 32));
        let a = random(64, 48, 0.7, 31);
        let b = random(48, 96, 0.8, 32);
        let out = k.execute_encoded(&k.encode_a(&a), &k.encode_b(&b));
        assert!(out.approx_eq(&a.matmul(&b), 1e-2));
        // The V100 kernel keeps the paper tiling.
        assert_eq!(
            BitmapSpGemm::for_device(GpuConfig::v100()).encoding_spec(),
            crate::encoding::EncodingSpec::paper()
        );
    }

    #[test]
    #[should_panic(expected = "does not match the kernel's")]
    fn encodings_are_not_interchangeable_across_device_tilings() {
        let v100 = kernel();
        let a100 = BitmapSpGemm::for_device(GpuConfig::a100());
        let b = v100.encode_b(&Matrix::zeros(48, 48));
        let a = a100.encode_a(&Matrix::zeros(48, 48));
        let _ = a100.execute_encoded(&a, &b);
    }

    #[test]
    #[should_panic(expected = "whole number of warp tiles")]
    fn misaligned_block_tiling_panics() {
        let t = GemmTiling { block_m: 100, ..GemmTiling::paper_spgemm() };
        let _ = kernel().with_tiling(t);
    }

    #[test]
    fn word_path_is_bit_identical_to_scalar_reference() {
        // Square, ragged and word-boundary shapes x sparsities including
        // fully dense, fully empty and ~1.0, on both device tilings.
        for (m, kd, n) in [(64, 48, 96), (50, 30, 70), (33, 17, 65)] {
            for (sa, sb) in [(0.0, 0.0), (0.5, 0.5), (0.9, 0.0), (0.99, 0.99), (1.0, 0.5)] {
                let a = random(m, kd, sa, 100);
                let b = random(kd, n, sb, 101);
                for k in [kernel(), BitmapSpGemm::for_device(GpuConfig::a100())] {
                    let (a_enc, b_enc) = (k.encode_a(&a), k.encode_b(&b));
                    let word = k.execute_encoded(&a_enc, &b_enc);
                    let scalar = k.execute_encoded_scalar(&a_enc, &b_enc);
                    assert_eq!(word, scalar, "shape ({m},{kd},{n}) sparsity ({sa},{sb})");
                }
            }
        }
    }

    #[test]
    fn word_path_is_bit_identical_across_thread_counts() {
        // Big enough that the threaded path actually engages (>= 64 output
        // tiles): every thread count must produce the same bits.
        let a = random(1024, 128, 0.8, 102);
        let b = random(128, 128, 0.7, 103);
        let base = kernel();
        let (a_enc, b_enc) = (base.encode_a(&a), base.encode_b(&b));
        let serial = base.execute_encoded(&a_enc, &b_enc);
        assert!(serial.approx_eq(&a.matmul(&b), 1e-2));
        for threads in [0, 2, 3, 7] {
            let k = kernel().with_execute_threads(threads);
            assert_eq!(k.execute_threads(), threads);
            assert_eq!(k.execute_encoded(&a_enc, &b_enc), serial, "threads {threads}");
        }
    }

    #[test]
    fn wide_warp_tiles_fall_back_to_the_scalar_path() {
        // 65-wide warp tiles exceed one u64 word; execute_encoded must still
        // answer correctly via the scalar fallback.
        let t = GemmTiling {
            block_m: 130,
            block_n: 130,
            block_k: 16,
            warp_m: 65,
            warp_n: 65,
            warp_k: 16,
        };
        let k = kernel().with_tiling(t);
        let a = random(70, 32, 0.6, 104);
        let b = random(32, 70, 0.6, 105);
        let out = k.execute_encoded(&k.encode_a(&a), &k.encode_b(&b));
        assert!(out.approx_eq(&a.matmul(&b), 1e-2));
    }

    proptest::proptest! {
        // Differential property: the word-parallel kernel is bit-identical
        // to the retained scalar reference across layouts (three warp
        // tilings, incl. a non-square 16x8x8), sparsities (incl. 0.0 and
        // ~1.0) and edge-tile shapes, with the threaded path enabled.
        #[test]
        fn word_and_scalar_paths_agree_bitwise(
            seed in proptest::any::<u64>(),
            m in 1usize..=80,
            kd in 1usize..=72,
            n in 1usize..=80,
            sa_idx in 0usize..6,
            sb_idx in 0usize..6,
            tiling_idx in 0usize..3,
        ) {
            const SPARSITIES: [f64; 6] = [0.0, 0.3, 0.75, 0.95, 0.999, 1.0];
            let tiling = match tiling_idx {
                0 => GemmTiling::paper_spgemm(),
                1 => GpuConfig::a100().native_tiling(),
                _ => GemmTiling {
                    block_m: 32,
                    block_n: 16,
                    block_k: 8,
                    warp_m: 16,
                    warp_n: 8,
                    warp_k: 8,
                },
            };
            let k = BitmapSpGemm::new(GpuConfig::v100())
                .with_tiling(tiling)
                .with_execute_threads(3);
            let a = random(m, kd, SPARSITIES[sa_idx], seed);
            let b = random(kd, n, SPARSITIES[sb_idx], seed ^ 0x9e37_79b9);
            let (a_enc, b_enc) = (k.encode_a(&a), k.encode_b(&b));
            let word = k.execute_encoded(&a_enc, &b_enc);
            let scalar = k.execute_encoded_scalar(&a_enc, &b_enc);
            proptest::prop_assert_eq!(word, scalar);
        }
    }

    #[test]
    fn sample_binomial_edge_cases_and_mean() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 32, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 32, 1.0), 32);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        let n = 32;
        let p = 0.5;
        let mut total = 0u64;
        let trials = 2000;
        for _ in 0..trials {
            let v = sample_binomial(&mut rng, n, p);
            assert!(v <= n as u16);
            total += v as u64;
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 16.0).abs() < 0.5, "mean {mean}");
    }
}
