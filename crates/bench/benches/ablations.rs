//! Ablation benches for the design choices DESIGN.md calls out:
//! one-level vs two-level bitmap encoding, and operand collector on/off.
//! Each bench reports the modelled kernel time (in nanoseconds of *model
//! evaluation*; the printed summary of modelled microseconds is what the
//! ablation is about and is emitted once at start-up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc_kernels::bitmap_spgemm::{BitmapSpGemm, BitmapSpGemmOptions, SyntheticGemmSpec};
use dsstc_sim::{GpuConfig, GpuTimingModel};
use dsstc_tensor::GemmShape;
use std::hint::black_box;

fn options(collector: bool, two_level: bool) -> BitmapSpGemmOptions {
    BitmapSpGemmOptions { operand_collector: collector, two_level }
}

fn print_ablation_summary() {
    let model = GpuTimingModel::v100();
    let shape = GemmShape::new(2048, 2048, 2048);
    let spec = SyntheticGemmSpec::new(shape, 0.9, 0.9, 11);
    println!("Ablation (modelled time, 2048^3, 90%/90% sparsity):");
    for (name, opts) in [
        ("full design", options(true, true)),
        ("no operand collector", options(false, true)),
        ("one-level bitmap", options(true, false)),
    ] {
        let kernel = BitmapSpGemm::new(GpuConfig::v100()).with_options(opts);
        let (profile, _) = kernel.profile_synthetic(&spec);
        println!("  {:<22} {:>10.1} us", name, model.estimate(&profile).time_us());
    }
}

fn bench_ablations(c: &mut Criterion) {
    print_ablation_summary();
    let shape = GemmShape::new(1024, 1024, 1024);
    let spec = SyntheticGemmSpec::new(shape, 0.9, 0.9, 11);
    let mut group = c.benchmark_group("spgemm_ablations");
    group.sample_size(10);
    for (name, opts) in [
        ("full_design", options(true, true)),
        ("no_operand_collector", options(false, true)),
        ("one_level_bitmap", options(true, false)),
    ] {
        let kernel = BitmapSpGemm::new(GpuConfig::v100()).with_options(opts);
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(kernel.profile_synthetic(spec)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
