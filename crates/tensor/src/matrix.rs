//! Row-major dense matrices and reference linear algebra.
//!
//! [`Matrix`] is the lingua franca of the workspace: sparse encodings are
//! built from it, kernels verify their functional results against
//! [`Matrix::matmul`], and the synthetic workload generators produce it.

use crate::half::f16;
use crate::random::{RandomMatrixBuilder, SparsityPattern};

/// A dense row-major `rows x cols` matrix of `f32` values.
///
/// # Example
/// ```
/// use dsstc_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let show_cols = self.cols.min(8);
            let row: Vec<String> = (0..show_cols).map(|c| format!("{:.3}", self[(r, c)])).collect();
            let ellipsis = if self.cols > show_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row is required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Convenience wrapper around [`RandomMatrixBuilder`] producing a matrix
    /// with the given target `sparsity` (fraction of zeros, in `[0, 1]`).
    pub fn random_sparse(
        rows: usize,
        cols: usize,
        sparsity: f64,
        pattern: SparsityPattern,
        seed: u64,
    ) -> Self {
        RandomMatrixBuilder::new(rows, cols).sparsity(sparsity).pattern(pattern).seed(seed).build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns a view of one row.
    ///
    /// # Panics
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns one column as an owned vector.
    ///
    /// # Panics
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<f32> {
        assert!(col < self.cols, "column {col} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, col)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Reference (inner-product, f32) matrix multiplication `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix multiplication with operands rounded through FP16 storage and
    /// accumulated in FP32, matching the Tensor Core datapath.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_f16(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = f16::round_f32(self[(i, k)]);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * f16::round_f32(rhs[(k, j)]);
                }
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies ReLU (`max(x, 0)`) element-wise, the source of activation
    /// sparsity in the paper's CNN workloads.
    pub fn relu(&self) -> Matrix {
        let data = self.data.iter().map(|&x| x.max(0.0)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of elements that are exactly zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Fraction of elements that are non-zero, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Extracts the `tile_rows x tile_cols` sub-matrix whose top-left corner
    /// is `(row0, col0)`, padding with zeros when it overhangs the edge.
    pub fn tile(&self, row0: usize, col0: usize, tile_rows: usize, tile_cols: usize) -> Matrix {
        let mut out = Matrix::zeros(tile_rows, tile_cols);
        let copy_rows = tile_rows.min(self.rows.saturating_sub(row0));
        let copy_cols = tile_cols.min(self.cols.saturating_sub(col0));
        for r in 0..copy_rows {
            let src = &self.data[(row0 + r) * self.cols + col0..][..copy_cols];
            out.data[r * tile_cols..r * tile_cols + copy_cols].copy_from_slice(src);
        }
        out
    }

    /// Writes `tile` into this matrix at `(row0, col0)`, ignoring any part
    /// that would fall outside the bounds.
    pub fn set_tile(&mut self, row0: usize, col0: usize, tile: &Matrix) {
        let copy_rows = tile.rows.min(self.rows.saturating_sub(row0));
        let copy_cols = tile.cols.min(self.cols.saturating_sub(col0));
        for r in 0..copy_rows {
            let src = &tile.data[r * tile.cols..][..copy_cols];
            self.data[(row0 + r) * self.cols + col0..][..copy_cols].copy_from_slice(src);
        }
    }

    /// Returns the maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Whether every element matches `other` within `tol` (see
    /// [`crate::approx_eq`]).
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.iter().zip(&other.data).all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }

    /// Rounds every element through FP16 storage (see
    /// [`round_f32`](crate::f16::round_f32)).
    pub fn to_f16_precision(&self) -> Matrix {
        let data = self.data.iter().map(|&x| f16::round_f32(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (row, col): (usize, usize)) -> &f32 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f32 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 0);
        m[(2, 3)] = 5.0;
        assert_eq!(m[(2, 3)], 5.0);
        assert_eq!(m.get(2, 3), Some(5.0));
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 4), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_mismatched_lengths_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let d = a.matmul(&b);
        assert_eq!(d, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[5.0, 5.0], &[2.0, 3.0]]);
        let d = a.matmul(&b);
        assert_eq!(d, Matrix::from_rows(&[&[5.0, 7.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn relu_produces_activation_sparsity() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[0.5, -3.0]]);
        let r = a.relu();
        assert_eq!(r, Matrix::from_rows(&[&[0.0, 2.0], &[0.5, 0.0]]));
        assert_eq!(r.nnz(), 2);
        assert!((r.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tile_extraction_with_padding() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = a.tile(1, 1, 2, 2);
        assert_eq!(t, Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 0.0]]));
    }

    #[test]
    fn set_tile_clips_to_bounds() {
        let mut a = Matrix::zeros(2, 2);
        let t = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.set_tile(1, 1, &t);
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]));
    }

    #[test]
    fn tiles_roundtrip_full_matrix() {
        let a = Matrix::random_sparse(10, 14, 0.4, SparsityPattern::Uniform, 7);
        let mut rebuilt = Matrix::zeros(10, 14);
        let tile = 4;
        for r0 in (0..10).step_by(tile) {
            for c0 in (0..14).step_by(tile) {
                let t = a.tile(r0, c0, tile, tile);
                rebuilt.set_tile(r0, c0, &t);
            }
        }
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn add_and_max_abs_diff() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -2.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[1.5, 0.0]]));
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }

    #[test]
    fn f16_matmul_is_close_to_f32() {
        let a = Matrix::random_sparse(16, 16, 0.5, SparsityPattern::Uniform, 1);
        let b = Matrix::random_sparse(16, 16, 0.5, SparsityPattern::Uniform, 2);
        let exact = a.matmul(&b);
        let half = a.matmul_f16(&b);
        assert!(exact.approx_eq(&half, 1e-2));
    }

    #[test]
    fn sparsity_and_density_sum_to_one() {
        let a = Matrix::random_sparse(32, 32, 0.75, SparsityPattern::Uniform, 3);
        assert!((a.sparsity() + a.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn debug_output_is_truncated_but_nonempty() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 100x100"));
        assert!(s.contains("..."));
    }
}
