//! The worker pool: a dispatcher thread routing released batches to the
//! device minimising modelled completion time, plus one pinned OS worker
//! thread per device that executes its batches through the pre-encoded
//! model on the dual-side SpGEMM kernel and fans responses back out per
//! request.
//!
//! Completion routing is per-request, not per-ingress: every request
//! carries its own response `Sender` (captured at submit time), so one
//! batch can fan its responses out to any mix of in-process callers and
//! wire reactors — each wire reactor submits with a clone of *its own*
//! completion channel, and its pump sees only its own connections'
//! responses back ([`crate::net::server`]).
//!
//! Device queues are **bounded to one in-flight batch** (`sync_channel(1)`)
//! so the dispatcher barely runs ahead of the pool: requests wait in the
//! priority-aware scheduler — where SLO flushes and priority extraction
//! still apply to them — rather than in a FIFO channel that would freeze
//! their order the moment they were released. A full queue redirects the
//! batch to the next-best device; the dispatcher blocks only when every
//! device is backed up.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_tensor::Matrix;

use crate::batcher::{Batch, BatchScheduler};
use crate::dispatch::DeviceDispatcher;
use crate::repository::ModelRepository;
use crate::request::InferResponse;
use crate::stats::StatsCollector;
use crate::telemetry::{Stage, Telemetry};

/// Everything the dispatcher and worker threads need, shared by `Arc`.
#[derive(Debug)]
pub(crate) struct WorkerContext {
    pub scheduler: Arc<BatchScheduler>,
    pub repository: Arc<ModelRepository>,
    pub dispatcher: Arc<DeviceDispatcher>,
    pub stats: Arc<StatsCollector>,
    pub telemetry: Arc<Telemetry>,
    /// One SpGEMM kernel per pooled device, running that device's native
    /// tiling — worker `i` executes its batches on `kernels[i]` against
    /// encodings fetched for `dispatcher.spec(i)`.
    pub kernels: Vec<BitmapSpGemm>,
}

impl WorkerContext {
    /// Builds the per-device kernels from the dispatcher's encoding specs,
    /// each allowed to fan a single large-M GEMM across `execute_threads`
    /// threads (`0` = size to the host; see
    /// [`BitmapSpGemm::with_execute_threads`]).
    pub(crate) fn kernels_for(
        repository: &ModelRepository,
        dispatcher: &DeviceDispatcher,
        execute_threads: usize,
    ) -> Vec<BitmapSpGemm> {
        dispatcher
            .specs()
            .iter()
            .map(|&spec| repository.kernel_for(spec).with_execute_threads(execute_threads))
            .collect()
    }
}

/// One batch routed to one device, priced by the dispatcher. The worker
/// fetches the encoded model itself, so a cold model's prune+encode stalls
/// only its own device, never the dispatcher.
#[derive(Debug)]
struct DeviceJob {
    batch: Batch,
    modelled_batch_us: f64,
}

/// A pool of per-device worker threads fed by a dispatcher thread draining
/// the batch scheduler.
#[derive(Debug)]
pub struct WorkerPool {
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one pinned worker per pooled device plus the dispatcher
    /// thread; all run until the scheduler shuts down and drains.
    pub(crate) fn spawn(context: Arc<WorkerContext>) -> Self {
        let devices = context.dispatcher.len();
        let mut senders: Vec<SyncSender<DeviceJob>> = Vec::with_capacity(devices);
        let workers = (0..devices)
            .map(|device| {
                // Capacity 1: each device holds one executing batch plus one
                // queued batch; everything else stays schedulable.
                let (tx, rx) = std::sync::mpsc::sync_channel::<DeviceJob>(1);
                senders.push(tx);
                let context = Arc::clone(&context);
                std::thread::Builder::new()
                    .name(format!("dsstc-serve-worker-{device}"))
                    .spawn(move || worker_loop(device, &context, rx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        let dispatcher = {
            let context = Arc::clone(&context);
            std::thread::Builder::new()
                .name("dsstc-serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&context, senders))
                .expect("failed to spawn dispatcher thread")
        };
        WorkerPool { dispatcher: Some(dispatcher), workers }
    }

    /// Number of worker threads (one per device; the dispatcher is extra).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers (never true for a spawned pool).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Waits for the dispatcher and every worker to exit (call after the
    /// scheduler's `shutdown`).
    pub fn join(mut self) {
        // The dispatcher exits once the scheduler drains; dropping its
        // senders then closes every device queue and the workers follow.
        for handle in self.dispatcher.take().into_iter().chain(self.workers) {
            // A panicking thread already poisoned the shared state; surface
            // it instead of hanging the caller.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Pulls released batches and hands each to the device that would complete
/// it first (or round-robin, per the configured policy). The hand-off is
/// non-blocking with fallback: if the planned device's bounded queue is
/// full, the next-best device is planned instead, so a backed-up device
/// never idles the rest of the pool; only when **every** device is backed
/// up does the dispatcher block (genuine pool-wide backpressure).
fn dispatch_loop(context: &WorkerContext, senders: Vec<SyncSender<DeviceJob>>) {
    // Dead-worker handling, shared by both send paths: fail fast instead
    // of letting callers block forever on responses nobody will produce —
    // reject new submissions and drop everything still queued, so every
    // in-flight wait() resolves to ShuttingDown. join() surfaces the
    // worker's panic.
    let fail_fast = || {
        context.scheduler.shutdown();
        while context.scheduler.next_batch().is_some() {}
    };
    // Stamping right before each hand-off attempt means a batch bounced
    // off a full queue keeps the timestamp of its *successful* dispatch.
    let stamp_dispatched = |job: &mut DeviceJob| {
        for request in &mut job.batch.requests {
            request.trace.record(Stage::Dispatched);
        }
    };
    'batches: while let Some(batch) = context.scheduler.next_batch() {
        let (key, size) = (batch.key, batch.len());
        let mut job = DeviceJob { batch, modelled_batch_us: 0.0 };
        let mut eligible = vec![true; senders.len()];
        loop {
            let Some(plan) = context.dispatcher.plan(key, size, &eligible) else {
                // Every device's queue is full: block on the overall best.
                let plan = context
                    .dispatcher
                    .plan(key, size, &vec![true; senders.len()])
                    .expect("non-empty device pool");
                let assignment = context.dispatcher.commit(plan);
                job.modelled_batch_us = assignment.modelled_batch_us;
                stamp_dispatched(&mut job);
                if senders[assignment.device].send(job).is_err() {
                    fail_fast();
                    return;
                }
                continue 'batches;
            };
            job.modelled_batch_us = plan.modelled_batch_us;
            stamp_dispatched(&mut job);
            match senders[plan.device].try_send(job) {
                Ok(()) => {
                    context.dispatcher.commit(plan);
                    continue 'batches;
                }
                Err(std::sync::mpsc::TrySendError::Full(returned)) => {
                    job = returned;
                    eligible[plan.device] = false;
                }
                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {
                    fail_fast();
                    return;
                }
            }
        }
    }
    // Scheduler drained: dropping the senders closes the device queues.
}

fn worker_loop(device: usize, context: &WorkerContext, jobs: Receiver<DeviceJob>) {
    while let Ok(job) = jobs.recv() {
        execute_batch(device, context, job.batch, job.modelled_batch_us);
    }
}

/// Runs one batch end-to-end: fetch the model encoded for **this device's**
/// tiling (hitting the encode cache after the first request), stack member
/// features into one larger-M GEMM chain, execute on the device's own
/// kernel, split the rows back out, and answer every request.
fn execute_batch(device: usize, context: &WorkerContext, mut batch: Batch, modelled_batch_us: f64) {
    let started = Instant::now();
    let spec = context.dispatcher.spec(device);
    let (model, cache_outcome) = context.repository.get_for_traced(batch.key, spec);
    for request in &mut batch.requests {
        request.trace.record(Stage::CacheResolved);
        request.trace.cache = Some(cache_outcome);
        request.trace.device = Some(device);
    }
    let batch_size = batch.len();

    // Stack member features row-wise: the batch runs as ONE GEMM chain with
    // M = sum of member rows.
    let cols = model.input_dim;
    let mut stacked = Matrix::zeros(batch.total_rows(), cols);
    let mut row = 0;
    for request in &batch.requests {
        stacked.set_tile(row, 0, &request.features);
        row += request.features.rows();
    }

    for request in &mut batch.requests {
        request.trace.record(Stage::ExecuteStart);
    }
    let output = model.forward(&context.kernels[device], &stacked);
    let modelled_request_us = modelled_batch_us / batch_size as f64;
    let execute_us = started.elapsed().as_secs_f64() * 1e6;
    for request in &mut batch.requests {
        request.trace.record(Stage::ExecuteEnd);
    }

    let queue_us: Vec<_> = batch
        .requests
        .iter()
        .map(|r| (r.priority, started.duration_since(r.enqueued).as_secs_f64() * 1e6))
        .collect();
    context.stats.record_batch(
        device,
        &queue_us,
        execute_us,
        modelled_batch_us,
        modelled_request_us,
    );

    let mut row = 0;
    for (mut request, (priority, wait_us)) in batch.requests.into_iter().zip(queue_us) {
        let rows = request.features.rows();
        request.trace.record(Stage::Responded);
        let trace = request.trace;
        let response = InferResponse {
            id: request.id,
            model: batch.key.model,
            output: output.tile(row, 0, rows, output.cols()),
            queue_us: wait_us,
            execute_us,
            modelled_batch_us,
            modelled_request_us,
            batch_size,
            device,
            encoding: spec,
            priority,
            trace: trace.clone(),
        };
        row += rows;
        // A dropped receiver (caller gave up) is not an error for the
        // server; the work is still recorded in the stats.
        let _ = request.response_tx.send(response);
        // Wire traces are finalised (and recorded) by the front-end once
        // the response frame's bytes are flushed to the socket.
        if !trace.is_wire() {
            context.telemetry.record_completed(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchPolicy, PendingRequest};
    use crate::config::DevicePool;
    use crate::dispatch::DispatchPolicy;
    use crate::request::{ModelId, ModelKey, Priority};
    use dsstc_sim::GpuConfig;
    use std::sync::mpsc;
    use std::time::Duration;

    fn context(max_batch: usize, pool: DevicePool) -> Arc<WorkerContext> {
        let repository = Arc::new(ModelRepository::new(pool.primary().clone(), 32));
        let dispatcher = Arc::new(DeviceDispatcher::new(&pool, DispatchPolicy::MinCompletionTime));
        let kernels = WorkerContext::kernels_for(&repository, &dispatcher, 1);
        Arc::new(WorkerContext {
            scheduler: Arc::new(BatchScheduler::new(BatchPolicy {
                max_batch,
                max_queue_wait: Duration::from_millis(1),
            })),
            repository,
            dispatcher,
            stats: Arc::new(StatsCollector::new()),
            telemetry: Arc::new(Telemetry::new()),
            kernels,
        })
    }

    fn single_v100() -> DevicePool {
        DevicePool::homogeneous(GpuConfig::v100(), 1)
    }

    #[test]
    fn batch_outputs_split_back_to_the_right_requests() {
        let ctx = context(4, single_v100());
        let key = ModelKey::new(ModelId::BertBase, None);
        let mut rxs = Vec::new();
        let mut requests = Vec::new();
        for id in 0..3u64 {
            let (tx, rx) = mpsc::channel();
            let features =
                Matrix::random_sparse(2, 32, 0.3, dsstc_tensor::SparsityPattern::Uniform, id + 1);
            requests.push(PendingRequest {
                id,
                key,
                priority: Priority::Normal,
                slo: None,
                features,
                response_tx: tx,
                enqueued: Instant::now(),
                trace: crate::telemetry::RequestTrace::new(),
            });
            rxs.push(rx);
        }
        // Reference: run each request alone through the same encoded model.
        let model = ctx.repository.get(key);
        let singles: Vec<Matrix> =
            requests.iter().map(|r| model.forward(ctx.repository.kernel(), &r.features)).collect();
        let modelled = ctx.dispatcher.timing(0).batched_us(&model, 3);

        execute_batch(0, &ctx, Batch { key, requests }, modelled);
        for (id, (rx, single)) in rxs.into_iter().zip(singles).enumerate() {
            let response = rx.recv_timeout(Duration::from_secs(5)).expect("response arrives");
            assert_eq!(response.id, id as u64);
            assert_eq!(response.batch_size, 3);
            assert_eq!(response.device, 0);
            assert_eq!(response.priority, Priority::Normal);
            assert!(response.output.approx_eq(&single, 1e-4), "request {id}");
            assert!(response.modelled_batch_us > 0.0);
            assert!((response.modelled_request_us - response.modelled_batch_us / 3.0).abs() < 1e-9);
        }
        let stats = ctx.stats.snapshot(ctx.repository.counters(), 0.0, &["Tesla V100".to_string()]);
        assert_eq!(stats.completed_requests, 3);
        assert_eq!(stats.executed_batches, 1);
        assert_eq!(stats.per_device[0].batches, 1);
    }

    #[test]
    fn pool_drains_scheduler_and_exits_on_shutdown() {
        let ctx = context(2, DevicePool::homogeneous(GpuConfig::v100(), 2));
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let mut rxs = Vec::new();
        for id in 0..5u64 {
            let (tx, rx) = mpsc::channel();
            assert!(ctx.scheduler.enqueue(PendingRequest {
                id,
                key,
                priority: Priority::Normal,
                slo: None,
                features: Matrix::zeros(1, 32),
                response_tx: tx,
                enqueued: Instant::now(),
                trace: crate::telemetry::RequestTrace::new(),
            }));
            rxs.push(rx);
        }
        let pool = WorkerPool::spawn(Arc::clone(&ctx));
        assert_eq!(pool.len(), 2);
        for rx in &rxs {
            let _ = rx.recv_timeout(Duration::from_secs(30)).expect("response arrives");
        }
        ctx.scheduler.shutdown();
        pool.join();
        let stats = ctx.stats.snapshot(
            ctx.repository.counters(),
            0.0,
            &["gpu0".to_string(), "gpu1".to_string()],
        );
        assert_eq!(stats.completed_requests, 5);
        assert!(stats.batch_histogram.len() <= 2, "batches of at most max_batch");
    }

    #[test]
    fn heterogeneous_pool_reports_device_for_each_response() {
        let pool = DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]);
        let ctx = context(1, pool);
        let key = ModelKey::new(ModelId::RnnLm, None);
        let mut rxs = Vec::new();
        for id in 0..6u64 {
            let (tx, rx) = mpsc::channel();
            assert!(ctx.scheduler.enqueue(PendingRequest {
                id,
                key,
                priority: Priority::Normal,
                slo: None,
                features: Matrix::zeros(1, 32),
                response_tx: tx,
                enqueued: Instant::now(),
                trace: crate::telemetry::RequestTrace::new(),
            }));
            rxs.push(rx);
        }
        let workers = WorkerPool::spawn(Arc::clone(&ctx));
        let mut devices_seen = std::collections::HashSet::new();
        for rx in &rxs {
            let r = rx.recv_timeout(Duration::from_secs(30)).expect("response arrives");
            assert!(r.device < 2);
            devices_seen.insert(r.device);
        }
        ctx.scheduler.shutdown();
        workers.join();
        assert!(!devices_seen.is_empty());
    }
}
