//! GEMM / SpGEMM / im2col / convolution kernels for the dual-side sparse
//! Tensor Core reproduction.
//!
//! Every kernel comes in two flavours that are kept consistent by tests:
//!
//! * **functional execution** (`execute*`) computes the actual numerical
//!   result so correctness can be checked against dense references, and
//! * **profiling** (`profile*`) counts the architectural events — tensor
//!   core instructions after sparsity skipping, scalar/POPC work, DRAM
//!   traffic under the tiling/L2-reuse model, merge and bank-conflict
//!   cycles — that [`dsstc_sim::GpuTimingModel`] turns into time.
//!
//! The kernels implemented are exactly the schemes the paper evaluates:
//!
//! | module | paper scheme |
//! |---|---|
//! | [`dense_gemm`] | CUTLASS dense GEMM (baseline of Fig. 21/22) |
//! | [`vector_sparse`] | Sparse Tensor Core \[72\] (single-side, fixed-ratio) |
//! | [`csr_spgemm`] | cuSparse CSR SpGEMM |
//! | [`bitmap_spgemm`] | **this paper**: bitmap outer-product dual-side SpGEMM |
//! | [`im2col`] | dense / CSR / bitmap im2col (Table III) |
//! | [`conv`] | the five convolution schemes of Fig. 22 |

#![deny(missing_docs)]

pub mod bitmap_spgemm;
pub mod conv;
pub mod csr_spgemm;
pub mod dense_gemm;
pub mod encoding;
pub mod im2col;
pub mod tiling;
pub mod vector_sparse;

pub use crate::bitmap_spgemm::BitmapSpGemm;
pub use crate::conv::{ConvScheme, ConvWorkload};
pub use crate::csr_spgemm::CsrSpGemm;
pub use crate::dense_gemm::DenseGemm;
pub use crate::encoding::EncodingSpec;
pub use crate::tiling::GemmTiling;
pub use crate::vector_sparse::VectorSparseGemm;
