//! End-to-end network estimation tests: the Fig. 22 reports for all five
//! evaluated networks are internally consistent and reproduce the paper's
//! qualitative findings.

use dsstc::InferenceEstimator;
use dsstc_models::networks;

#[test]
fn cnn_reports_have_five_schemes_and_dual_side_wins_overall() {
    let estimator = InferenceEstimator::v100();
    for network in [networks::vgg16(), networks::resnet18(), networks::mask_rcnn()] {
        let report = estimator.estimate_network(&network);
        assert_eq!(report.layers.len(), network.layers().len(), "{}", network.name());
        for layer in &report.layers {
            assert!(layer.is_conv);
            assert_eq!(layer.schemes.len(), 5);
            // Times are positive and the Dense Implicit baseline has
            // speedup exactly 1.
            assert!(layer.schemes.iter().all(|s| s.time_us > 0.0));
            assert!((layer.schemes[1].speedup - 1.0).abs() < 1e-9);
        }
        assert!(
            report.full_model_dual_speedup > 1.0,
            "{}: {}",
            network.name(),
            report.full_model_dual_speedup
        );
        assert!(
            report.full_model_dual_speedup > report.full_model_single_speedup,
            "{}",
            network.name()
        );
    }
}

#[test]
fn nlp_reports_have_three_schemes_and_exceed_the_fixed_ratio_cap() {
    let estimator = InferenceEstimator::v100();
    for network in [networks::bert_base(), networks::rnn_lm()] {
        let report = estimator.estimate_network(&network);
        for layer in &report.layers {
            assert!(!layer.is_conv);
            assert_eq!(layer.schemes.len(), 3);
        }
        // The single-side baseline is architecturally capped near 2x; the
        // dual-side design is not.
        assert!(report.full_model_single_speedup < 2.5, "{}", network.name());
        assert!(
            report.full_model_dual_speedup > report.full_model_single_speedup,
            "{}",
            network.name()
        );
    }
}

#[test]
fn dual_side_speedups_respect_the_theoretical_bound() {
    let estimator = InferenceEstimator::v100();
    for network in networks::all_networks() {
        let report = estimator.estimate_network(&network);
        for layer in &report.layers {
            assert!(
                layer.dual_side_speedup() <= layer.theoretical_speedup * 1.05,
                "{} / {}: {} > {}",
                network.name(),
                layer.name,
                layer.dual_side_speedup(),
                layer.theoretical_speedup
            );
        }
    }
}

#[test]
fn deeper_cnn_layers_with_more_sparsity_speed_up_more() {
    // Within VGG-16 the later layers are sparser on both sides, so their
    // dual-side speedup should generally exceed the first conv layer's.
    let estimator = InferenceEstimator::v100();
    let report = estimator.estimate_network(&networks::vgg16());
    let first = report.layers.first().unwrap().dual_side_speedup();
    let late = report.layers[report.layers.len() - 3].dual_side_speedup();
    assert!(late > first, "late {late} vs first {first}");
}

#[test]
fn rendered_tables_mention_every_layer_and_scheme() {
    let estimator = InferenceEstimator::v100();
    let report = estimator.estimate_network(&networks::resnet18());
    let table = report.render_table();
    assert!(table.contains("Dense Implicit"));
    assert!(table.contains("Dual Sparse Implicit"));
    for layer in networks::resnet18().layers() {
        assert!(table.contains(&layer.name), "missing layer {}", layer.name);
    }
}

#[test]
fn estimates_are_reproducible_across_runs() {
    let estimator = InferenceEstimator::v100();
    let a = estimator.estimate_network(&networks::bert_base());
    let b = estimator.estimate_network(&networks::bert_base());
    assert_eq!(a, b);
}
