//! The pre-encoded model repository.
//!
//! The paper encodes pruned weights into the bitmap format **offline**
//! (Section III-A): weight sparsity is static, so re-encoding per request is
//! pure waste. [`ModelRepository`] reproduces that at the serving layer — the
//! first request for a `(model, sparsity)` pair prunes and encodes the
//! model's weights into the two-level bitmap format once, and every later
//! batch replays the cached [`EncodedModel`].
//!
//! Each served model carries two representations:
//!
//! * a **functional proxy** — one `proxy_dim x proxy_dim` GEMM per network
//!   layer whose weights are deterministically generated, magnitude-pruned
//!   to the layer's weight sparsity and pre-encoded. Request features flow
//!   through it on the actual dual-side SpGEMM kernel, so responses carry
//!   real outputs; and
//! * the **real layer table** — used by [`crate::BatchTimingModel`] to
//!   charge the modelled GPU time of the full-size network at the batch's
//!   size.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dsstc_formats::TwoLevelBitmapMatrix;
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_models::{prune_magnitude, Layer, Network};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, RandomMatrixBuilder};

use crate::request::ModelKey;

/// One layer of a served model: the pre-encoded proxy weights plus the real
/// layer descriptor the timing model charges.
#[derive(Clone, Debug)]
pub struct EncodedLayer {
    /// Layer name (from the network table).
    pub name: String,
    /// Proxy weights in the kernel's two-level bitmap B-operand layout,
    /// encoded once at load time.
    pub weights: TwoLevelBitmapMatrix,
    /// Whether ReLU follows this layer in the functional proxy.
    pub relu: bool,
    /// The real layer (shape + sparsities, with any uniform override
    /// applied) used for modelled timing.
    pub layer: Layer,
}

/// A fully loaded model: pruned, encoded, ready to serve.
#[derive(Clone, Debug)]
pub struct EncodedModel {
    /// The cache key this model was loaded under.
    pub key: ModelKey,
    /// The real network table (with any sparsity override applied).
    pub network: Network,
    /// Feature width requests must supply.
    pub input_dim: usize,
    /// Pre-encoded layers in execution order.
    pub layers: Vec<EncodedLayer>,
    /// Wall-clock milliseconds spent pruning + encoding at load time (the
    /// cost the cache amortises away).
    pub encode_ms: f64,
}

impl EncodedModel {
    /// Runs `input` (rows = samples, `input_dim` columns) through every
    /// pre-encoded proxy layer on the dual-side SpGEMM kernel and returns
    /// the final features.
    ///
    /// # Panics
    /// Panics if `input` does not have `input_dim` columns.
    pub fn forward(&self, kernel: &BitmapSpGemm, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim, "feature width mismatch");
        let mut x = input.clone();
        for layer in &self.layers {
            let a_enc = kernel.encode_a(&x);
            x = kernel.execute_encoded(&a_enc, &layer.weights);
            if layer.relu {
                x = x.relu();
            }
        }
        x
    }

    /// Total non-zeros stored across the encoded proxy weights.
    pub fn encoded_nnz(&self) -> usize {
        self.layers.iter().map(|l| l.weights.nnz()).sum()
    }
}

/// Loads, prunes and pre-encodes models, caching the result per
/// `(model, sparsity)` key.
///
/// `get` is cheap after the first call for a key; the hit/miss counters feed
/// the server's encode-cache hit-rate metric.
#[derive(Debug)]
pub struct ModelRepository {
    proxy_dim: usize,
    kernel: BitmapSpGemm,
    cache: Mutex<CacheState>,
    loaded: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cache map plus the set of keys currently being encoded, so the mutex is
/// never held across a (slow) load: concurrent `get`s for *other* keys
/// proceed, and only same-key callers wait.
#[derive(Debug, Default)]
struct CacheState {
    models: HashMap<ModelKey, Arc<EncodedModel>>,
    in_flight: std::collections::HashSet<ModelKey>,
}

impl ModelRepository {
    /// Creates an empty repository whose encodings match `gpu`'s kernel
    /// tiling and whose proxies are `proxy_dim` wide.
    ///
    /// # Panics
    /// Panics if `proxy_dim` is zero.
    pub fn new(gpu: GpuConfig, proxy_dim: usize) -> Self {
        assert!(proxy_dim > 0, "proxy dimension must be non-zero");
        ModelRepository {
            proxy_dim,
            kernel: BitmapSpGemm::new(gpu),
            cache: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Feature width requests must supply.
    pub fn input_dim(&self) -> usize {
        self.proxy_dim
    }

    /// The SpGEMM kernel whose tiling the cached encodings target.
    pub fn kernel(&self) -> &BitmapSpGemm {
        &self.kernel
    }

    /// Returns the encoded model for `key`, loading and encoding it on the
    /// first request (a cache **miss**) and reusing the cached artifact on
    /// every later one (a **hit**).
    ///
    /// The cache lock is **not** held while encoding: a miss marks the key
    /// in-flight, drops the lock, loads, then publishes. Concurrent callers
    /// for the same key block until the single load finishes (counted as
    /// hits — they are served from the cache); callers for other keys are
    /// unaffected.
    pub fn get(&self, key: ModelKey) -> Arc<EncodedModel> {
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        loop {
            if let Some(model) = cache.models.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(model);
            }
            if cache.in_flight.insert(key) {
                break; // this caller owns the load
            }
            // Someone else is encoding this key; wait for them to publish.
            cache = self.loaded.wait(cache).expect("repository mutex poisoned");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(cache);
        let model = Arc::new(self.load(key));
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        cache.models.insert(key, Arc::clone(&model));
        cache.in_flight.remove(&key);
        self.loaded.notify_all();
        model
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= encode operations) so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of `get` calls served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hit_count();
        let total = hits + self.miss_count();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Number of distinct models currently encoded.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("repository mutex poisoned").models.len()
    }

    /// Whether no model has been loaded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prunes + encodes one model (the slow path behind a cache miss).
    fn load(&self, key: ModelKey) -> EncodedModel {
        let started = Instant::now();
        // The real layer table with the uniform sparsity override applied,
        // so both the proxy weights and the timing model see it.
        let network = key.network();
        let layers_effective: Vec<Layer> = network.layers().to_vec();
        let relu = key.model.uses_relu();
        let layers = layers_effective
            .into_iter()
            .enumerate()
            .map(|(i, layer)| {
                let dense = RandomMatrixBuilder::new(self.proxy_dim, self.proxy_dim)
                    .seed(proxy_seed(key, i))
                    .value_range(-0.5, 0.5)
                    .build();
                let pruned = prune_magnitude(&dense, layer.weight_sparsity);
                EncodedLayer {
                    name: layer.name.clone(),
                    weights: self.kernel.encode_b(&pruned),
                    relu,
                    layer,
                }
            })
            .collect();
        EncodedModel {
            key,
            network,
            input_dim: self.proxy_dim,
            layers,
            encode_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Deterministic per-layer weight seed so repeated loads (and separate
/// server instances) produce identical proxies.
fn proxy_seed(key: ModelKey, layer_index: usize) -> u64 {
    let mut seed: u64 = 0x5EED_0F00;
    for b in key.model.name().bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
    }
    seed ^ (u64::from(key.sparsity_permille.map_or(0xFFFF, |p| p)) << 40)
        ^ ((layer_index as u64) << 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;

    fn repo() -> ModelRepository {
        ModelRepository::new(GpuConfig::v100(), 64)
    }

    #[test]
    fn first_get_misses_then_hits() {
        let r = repo();
        assert!(r.is_empty());
        let key = ModelKey::new(ModelId::BertBase, None);
        let m1 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (0, 1));
        let m2 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (1, 1));
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(r.len(), 1);
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_sparsities_are_distinct_cache_entries() {
        let r = repo();
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.8)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.95)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, None));
        assert_eq!(r.len(), 3);
        assert_eq!(r.miss_count(), 3);
    }

    #[test]
    fn encoded_layers_match_table_and_override() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, Some(0.9)));
        assert_eq!(m.layers.len(), ModelId::BertBase.network().layers().len());
        for layer in &m.layers {
            assert!((layer.weights.sparsity() - 0.9).abs() < 0.02, "{}", layer.name);
            assert_eq!(layer.layer.weight_sparsity, 0.9);
            assert!(!layer.relu);
        }
        assert!(m.encoded_nnz() > 0);
        assert!(m.encode_ms >= 0.0);
    }

    #[test]
    fn forward_matches_decoded_dense_reference() {
        let r = ModelRepository::new(GpuConfig::v100(), 32);
        let m = r.get(ModelKey::new(ModelId::ResNet18, Some(0.85)));
        let input = Matrix::random_sparse(8, 32, 0.5, dsstc_tensor::SparsityPattern::Uniform, 3);
        let out = m.forward(r.kernel(), &input);
        // Dense reference: decode each encoded layer and replay the chain.
        let mut reference = input.clone();
        for layer in &m.layers {
            reference = reference.matmul(&layer.weights.decode());
            reference = reference.relu();
        }
        assert_eq!(out.rows(), 8);
        assert_eq!(out.cols(), 32);
        assert!(out.approx_eq(&reference, 5e-2));
    }

    #[test]
    fn concurrent_gets_for_one_key_encode_exactly_once() {
        let r = std::sync::Arc::new(repo());
        let key = ModelKey::new(ModelId::ResNet50, None);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || r.get(key))
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(r.miss_count(), 1, "one caller loads, the rest wait and hit");
        assert_eq!(r.hit_count(), 3);
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m), "all callers share one artifact");
        }
    }

    #[test]
    fn a_slow_load_does_not_block_gets_for_other_keys() {
        // Thread A encodes VGG-16 (the most layers); thread B's BERT get
        // must complete while A may still be loading — i.e. without ever
        // waiting on A. We can't control interleaving exactly, but both
        // finishing with two misses and no deadlock exercises the
        // in-flight path under concurrency.
        let r = std::sync::Arc::new(repo());
        let a = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::Vgg16, None)))
        };
        let b = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::BertBase, None)))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(r.miss_count(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn proxies_are_deterministic_across_repositories() {
        let key = ModelKey::new(ModelId::ResNet50, None);
        let a = repo().get(key);
        let b = repo().get(key);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.weights.decode(), lb.weights.decode(), "{}", la.name);
        }
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn forward_rejects_wrong_width() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        let _ = m.forward(r.kernel(), &Matrix::zeros(2, 63));
    }
}
