//! Serving-runtime configuration: batching knobs, the device pool and the
//! encode-cache tiers.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use dsstc_sim::GpuConfig;

use crate::dispatch::DispatchPolicy;
use crate::repository::CacheBudget;
use crate::request::Priority;

/// SLO-aware admission control / load shedding.
///
/// The server keeps a per-class latency SLO; at submit time it projects the
/// queue delay a new request would see from the **modelled** completion
/// time of the work already queued at or above its priority (queued
/// requests × the key's modelled unit cost ÷ pool size — the same
/// [`crate::BatchTimingModel`] pricing the dispatcher plans with, so the
/// decision is deterministic and testable). When the projection exceeds the
/// class SLO scaled by `headroom`, the request is **shed** — rejected at
/// submit with [`crate::ServeError::ShedLoad`] (a `ShedLoad` error frame on
/// the wire) — so overload degrades low-priority traffic instead of
/// growing queues without bound. High-priority requests are never shed on
/// projection, only by the hard `max_queue` depth bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionControl {
    /// Per-class latency SLO, indexed by [`Priority::index`] (Low = 0).
    pub slo: [Duration; 3],
    /// Fraction of the SLO the projected queue delay may consume before
    /// new requests of that class are shed, in `(0, 1]`. Lower sheds
    /// earlier, reserving more of the SLO for execution itself.
    pub headroom: f64,
    /// Hard bound on total queued requests; at or beyond it every class
    /// (including high priority) is shed. The backstop that keeps queue
    /// depth bounded under adversarial arrivals.
    pub max_queue: usize,
}

impl AdmissionControl {
    /// Builds a policy from per-class SLOs (Low, Normal, High order), a
    /// headroom fraction and a hard queue-depth bound.
    ///
    /// # Panics
    /// Panics if `headroom` is outside `(0, 1]`, `max_queue` is zero, or
    /// any SLO is zero.
    pub fn new(slo: [Duration; 3], headroom: f64, max_queue: usize) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be a fraction of the SLO in (0, 1]"
        );
        assert!(max_queue > 0, "the queue bound must admit at least one request");
        assert!(slo.iter().all(|s| !s.is_zero()), "every class SLO must be non-zero");
        AdmissionControl { slo, headroom, max_queue }
    }

    /// The latency SLO of `priority`'s class.
    pub fn slo_for(&self, priority: Priority) -> Duration {
        self.slo[priority.index()]
    }

    /// Microseconds of projected queue delay `priority` may absorb before
    /// shedding (its SLO × headroom).
    pub fn budget_us(&self, priority: Priority) -> f64 {
        self.slo[priority.index()].as_secs_f64() * 1e6 * self.headroom
    }

    /// The admission decision, as a pure function of the class, the
    /// modelled queue-delay projection and the current total queue depth
    /// (property-tested in this module): shed when the queue is at its
    /// hard bound, otherwise shed non-high classes whose projection
    /// exhausts their SLO headroom. High priority is never shed on
    /// projection alone.
    pub fn should_shed(&self, priority: Priority, projected_us: f64, queued: usize) -> bool {
        if queued >= self.max_queue {
            return true;
        }
        if priority == Priority::High {
            return false;
        }
        projected_us > self.budget_us(priority)
    }
}

impl Default for AdmissionControl {
    /// 50 ms / 200 ms / 1 s SLOs for High / Normal / Low with 80% headroom
    /// and a 10 000-request queue bound: tight enough that a saturated
    /// server sheds background work within tens of milliseconds, loose
    /// enough that bursty but sustainable traffic is never touched.
    fn default() -> Self {
        AdmissionControl::new(
            [Duration::from_secs(1), Duration::from_millis(200), Duration::from_millis(50)],
            0.8,
            10_000,
        )
    }
}

/// Cluster membership of one serving node (see `docs/CLUSTER.md`).
///
/// Every node in a cluster runs with the same `seed`, `vnodes` and
/// `replication`, its own `node_id`/`advertise`, and the full peer list;
/// from these each node builds the identical consistent-hash ring (see
/// [`crate::cluster::HashRing`]) and the initial versioned
/// [`crate::cluster::ShardMap`] it hands to clients at `HELO` time. There
/// is no coordinator: liveness is peer-observed through periodic `HELO`
/// pings, and a peer that misses `ping_failures` consecutive probes is
/// marked dead locally, bumping the local map version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// This node's stable id — the ring hashes ids, not addresses, so an
    /// address change does not reshard the catalogue.
    pub node_id: u16,
    /// The address published to clients in shard maps. Empty means "use
    /// the wire listener's actual bound address", which only works when
    /// clients share the node's network namespace (tests, loopback).
    pub advertise: String,
    /// The other members as `(node_id, address)` pairs.
    pub peers: Vec<(u16, String)>,
    /// Replica-group size per shard: how many distinct nodes serve each
    /// model key. `1` is plain sharding; `2`+ keeps hot models servable
    /// through a single node failure.
    pub replication: usize,
    /// Virtual nodes per member on the ring. More vnodes = better balance
    /// at slightly larger ring-build cost; 64–128 is the useful range.
    pub vnodes: usize,
    /// Ring seed; all members must agree.
    pub seed: u64,
    /// How often this node pings each peer for liveness.
    pub ping_interval: Duration,
    /// Consecutive failed pings before a peer is marked dead.
    pub ping_failures: u32,
}

impl ClusterConfig {
    /// A cluster member with the given identity and peers, defaulting to
    /// replication 2, 64 virtual nodes, seed 0, 500 ms pings and death
    /// after 3 consecutive failures.
    pub fn new(node_id: u16, advertise: impl Into<String>, peers: Vec<(u16, String)>) -> Self {
        ClusterConfig {
            node_id,
            advertise: advertise.into(),
            peers,
            replication: 2,
            vnodes: 64,
            seed: 0,
            ping_interval: Duration::from_millis(500),
            ping_failures: 3,
        }
    }

    /// Overrides the replica-group size.
    ///
    /// # Panics
    /// Panics if `replication` is zero.
    pub fn with_replication(mut self, replication: usize) -> Self {
        assert!(replication > 0, "each shard needs at least one replica");
        self.replication = replication;
        self
    }

    /// Overrides the virtual-node count per member.
    ///
    /// # Panics
    /// Panics if `vnodes` is zero.
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        assert!(vnodes > 0, "the ring needs at least one virtual node per member");
        self.vnodes = vnodes;
        self
    }

    /// Overrides the ring seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the peer-ping cadence and the consecutive-failure death
    /// threshold.
    ///
    /// # Panics
    /// Panics if `interval` is zero or `failures` is zero.
    pub fn with_ping(mut self, interval: Duration, failures: u32) -> Self {
        assert!(!interval.is_zero(), "the ping interval must be non-zero");
        assert!(failures > 0, "at least one failed ping must precede death");
        self.ping_interval = interval;
        self.ping_failures = failures;
        self
    }
}

/// A pool of modelled GPUs batches are dispatched onto.
///
/// Each device gets one pinned worker thread and its own
/// [`crate::BatchTimingModel`]; the dispatcher routes every released batch
/// to the device minimising modelled completion time (see
/// [`crate::DeviceDispatcher`]). Pools may be heterogeneous — e.g. a mix of
/// [`GpuConfig::v100`] and [`GpuConfig::a100`] — in which case the faster
/// devices naturally absorb a larger share of the traffic.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<GpuConfig>,
}

impl DevicePool {
    /// A pool over an explicit device list.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<GpuConfig>) -> Self {
        assert!(!devices.is_empty(), "a device pool needs at least one device");
        DevicePool { devices }
    }

    /// `count` identical devices.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn homogeneous(gpu: GpuConfig, count: usize) -> Self {
        assert!(count > 0, "a device pool needs at least one device");
        DevicePool { devices: vec![gpu; count] }
    }

    /// The member devices, in worker-pinning order.
    pub fn devices(&self) -> &[GpuConfig] {
        &self.devices
    }

    /// The device whose kernel tiling the shared model encodings target
    /// (the first in the pool).
    pub fn primary(&self) -> &GpuConfig {
        &self.devices[0]
    }

    /// Number of devices (= number of pinned workers).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always `false`: pools are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device names, in pool order.
    pub fn names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.name.clone()).collect()
    }
}

impl Default for DevicePool {
    fn default() -> Self {
        DevicePool::homogeneous(GpuConfig::v100(), 2)
    }
}

/// Configuration of an [`crate::InferenceServer`].
///
/// The defaults (two pooled V100s, batches of up to eight requests flushed
/// after two milliseconds, a 64-wide proxy feature dimension,
/// completion-time-aware dispatch) are sized so the serving smoke tests and
/// the demo run in seconds; a throughput deployment grows the pool and
/// `max_batch`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The modelled devices; one pinned worker thread each.
    pub devices: DevicePool,
    /// Largest number of requests merged into one batch.
    pub max_batch: usize,
    /// How long any queued request may wait before its batch is flushed
    /// even if it is not full (also the cap on per-request SLO deadlines).
    pub max_queue_wait: Duration,
    /// Feature dimension of the functional proxy GEMMs each request flows
    /// through (the modelled latency always uses the network's *real*
    /// shapes; see [`crate::ModelRepository`]).
    pub proxy_dim: usize,
    /// How released batches are assigned to devices.
    pub dispatch: DispatchPolicy,
    /// Directory of the persistent encoded-weight store (`--encode-cache-dir`
    /// in the demo and sweep binaries). `None` keeps the encode cache
    /// memory-only; set, a restarted server restores encoded artifacts from
    /// disk and skips the prune+encode warm-up entirely.
    pub encode_cache_dir: Option<PathBuf>,
    /// Entry/byte bound on the in-memory encode-cache tier.
    pub encode_cache_budget: CacheBudget,
    /// Entry/**file**-byte bound on the on-disk store tier. The store is
    /// GC'd back under this budget (LRU by last restore) at boot and on
    /// every store touch; see `docs/ENCODING_CACHE.md`.
    pub encode_store_budget: CacheBudget,
    /// Worker threads [`crate::ModelRepository::warm_boot`] restores
    /// persisted artifacts with at server start (`0` = the host's
    /// available parallelism). Only meaningful with `encode_cache_dir`
    /// set.
    pub warm_boot_threads: usize,
    /// SLO-aware admission control. `None` (the default) admits every
    /// well-formed request, exactly as before this knob existed; `Some`
    /// sheds load at submit time once projected queue delay exhausts a
    /// class's SLO headroom.
    pub admission: Option<AdmissionControl>,
    /// Listen address of the TCP front-end ([`crate::net::WireServer`]).
    /// `None` (the default) binds loopback with an OS-assigned port when a
    /// wire server is started, and is ignored entirely by the in-process
    /// [`crate::InferenceServer`].
    pub listen: Option<SocketAddr>,
    /// Most client connections the wire front-end holds open at once;
    /// accepts beyond the limit are closed immediately (counted in
    /// [`crate::stats::WireStats::connections_rejected`]).
    pub max_connections: usize,
    /// Number of wire front-end reactors: epoll event loops that each own a
    /// disjoint subset of the connections, with one completion pump per
    /// reactor. The first reactor owns the listener and hands accepted
    /// connections to the least-loaded reactor. `1` (the default) is the
    /// single-loop front-end; `0` sizes to the host's available parallelism
    /// when the [`crate::net::WireServer`] starts.
    pub reactors: usize,
    /// Largest **request** frame body accepted, in bytes. A request
    /// declaring more is rejected from its ten-byte envelope, before any
    /// allocation. Responses to legal requests may exceed this by the
    /// fixed [`crate::net::frame::RESPONSE_HEADROOM`], which
    /// response-stream decoders (the [`crate::net::WireClient`]) allow
    /// for.
    pub max_frame_len: usize,
    /// How long a graceful wire shutdown keeps draining in-flight requests
    /// and unflushed response bytes before force-closing the remaining
    /// connections.
    pub drain_timeout: Duration,
    /// Listen address of the Prometheus-style metrics endpoint
    /// (`--metrics-addr` in the demo binary). `None` (the default) serves
    /// no endpoint; set, the wire front-end boots a
    /// [`crate::telemetry::MetricsServer`] on a dedicated listener.
    pub metrics_addr: Option<SocketAddr>,
    /// File that receives completed request traces as chrome-trace JSONL
    /// (`--trace-out` in the demo binary). `None` keeps traces in the
    /// bounded in-memory ring only.
    pub trace_out: Option<PathBuf>,
    /// Threads each device worker may fan a single large-M GEMM across
    /// (see [`dsstc_kernels::BitmapSpGemm::with_execute_threads`]). `0`
    /// (the default) sizes to the host's available parallelism; small
    /// GEMMs always run serially regardless.
    pub execute_threads: usize,
    /// Largest number of unflushed response bytes the wire front-end
    /// buffers for one connection. A client that stops reading while
    /// responses keep completing breaches the cap; the server then drops
    /// the backlog and poisons the connection with a final error frame
    /// (counted in [`crate::stats::WireStats::outbound_overflows`])
    /// instead of growing without bound.
    pub max_outbound_bytes: usize,
    /// Cluster membership of this node. `None` (the default) serves
    /// standalone: the wire front-end still answers `HELO` with a
    /// single-node shard map so cluster-aware clients work unchanged.
    pub cluster: Option<ClusterConfig>,
    /// Shared secret required in every client `HELO` (`--auth-token` in
    /// the demo and sweep binaries). `None` (the default) accepts
    /// tokenless hellos; set, a hello with a wrong or missing token is
    /// answered with an `Unauthorized` error frame and the connection
    /// closes. Compared in constant time.
    pub auth_token: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: DevicePool::default(),
            max_batch: 8,
            max_queue_wait: Duration::from_millis(2),
            proxy_dim: 64,
            dispatch: DispatchPolicy::MinCompletionTime,
            encode_cache_dir: None,
            encode_cache_budget: CacheBudget::default(),
            encode_store_budget: CacheBudget::store_default(),
            warm_boot_threads: 4,
            admission: None,
            listen: None,
            max_connections: 256,
            reactors: 1,
            max_frame_len: 1 << 24,
            drain_timeout: Duration::from_secs(30),
            metrics_addr: None,
            trace_out: None,
            execute_threads: 0,
            // Four max-size response frames of headroom before a
            // non-reading client is declared stuck.
            max_outbound_bytes: 1 << 26,
            cluster: None,
            auth_token: None,
        }
    }
}

impl ServeConfig {
    /// Number of worker threads (one per pooled device).
    pub fn workers(&self) -> usize {
        self.devices.len()
    }

    /// Resizes the pool to `workers` copies of its primary device.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.devices = DevicePool::homogeneous(self.devices.primary().clone(), workers);
        self
    }

    /// Overrides the maximum batch size.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batches need at least one request");
        self.max_batch = max_batch;
        self
    }

    /// Overrides the queue-flush deadline.
    pub fn with_max_queue_wait(mut self, wait: Duration) -> Self {
        self.max_queue_wait = wait;
        self
    }

    /// Overrides the proxy feature dimension.
    ///
    /// # Panics
    /// Panics if `proxy_dim` is zero.
    pub fn with_proxy_dim(mut self, proxy_dim: usize) -> Self {
        assert!(proxy_dim > 0, "proxy dimension must be non-zero");
        self.proxy_dim = proxy_dim;
        self
    }

    /// Replaces every pooled device with copies of `gpu`, keeping the pool
    /// size (single-GPU convenience mirroring the pre-pool API).
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.devices = DevicePool::homogeneous(gpu, self.devices.len());
        self
    }

    /// Overrides the device pool.
    pub fn with_devices(mut self, devices: DevicePool) -> Self {
        self.devices = devices;
        self
    }

    /// Overrides the batch-to-device dispatch policy.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Enables the persistent encoded-weight store under `dir`.
    pub fn with_encode_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.encode_cache_dir = Some(dir.into());
        self
    }

    /// Overrides the in-memory encode-cache budget.
    pub fn with_encode_cache_budget(mut self, budget: CacheBudget) -> Self {
        self.encode_cache_budget = budget;
        self
    }

    /// Overrides the on-disk store budget.
    pub fn with_encode_store_budget(mut self, budget: CacheBudget) -> Self {
        self.encode_store_budget = budget;
        self
    }

    /// Overrides the warm-boot worker-thread count (`0` = size to the
    /// host's available parallelism).
    pub fn with_warm_boot_threads(mut self, threads: usize) -> Self {
        self.warm_boot_threads = threads;
        self
    }

    /// Enables SLO-aware admission control with `policy`.
    pub fn with_admission_control(mut self, policy: AdmissionControl) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Sets the TCP front-end's listen address (e.g. `"127.0.0.1:7411"`).
    pub fn with_listen(mut self, listen: SocketAddr) -> Self {
        self.listen = Some(listen);
        self
    }

    /// Overrides the open-connection limit of the TCP front-end.
    ///
    /// # Panics
    /// Panics if `max_connections` is zero.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        assert!(max_connections > 0, "the front-end needs at least one connection");
        self.max_connections = max_connections;
        self
    }

    /// Overrides the wire front-end's reactor count (`0` = size to the
    /// host's available parallelism at start time).
    pub fn with_reactors(mut self, reactors: usize) -> Self {
        self.reactors = reactors;
        self
    }

    /// Overrides the wire frame-body size bound.
    ///
    /// # Panics
    /// Panics if `max_frame_len` cannot hold even an empty feature matrix.
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        assert!(max_frame_len >= 64, "frame bodies need room for the fixed request fields");
        self.max_frame_len = max_frame_len;
        self
    }

    /// Overrides the graceful wire-shutdown drain bound.
    pub fn with_drain_timeout(mut self, drain_timeout: Duration) -> Self {
        self.drain_timeout = drain_timeout;
        self
    }

    /// Enables the Prometheus-style metrics endpoint on `addr` (e.g.
    /// `"127.0.0.1:9114"`).
    pub fn with_metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }

    /// Streams completed request traces to `path` as chrome-trace JSONL.
    pub fn with_trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Overrides the per-GEMM execute-thread fan-out (`0` = size to the
    /// host's available parallelism).
    pub fn with_execute_threads(mut self, execute_threads: usize) -> Self {
        self.execute_threads = execute_threads;
        self
    }

    /// Overrides the per-connection outbound buffer cap.
    ///
    /// # Panics
    /// Panics if `max_outbound_bytes` cannot hold even one error frame.
    pub fn with_max_outbound_bytes(mut self, max_outbound_bytes: usize) -> Self {
        assert!(max_outbound_bytes >= 64, "the outbound cap must admit an error frame");
        self.max_outbound_bytes = max_outbound_bytes;
        self
    }

    /// Joins this node to a cluster.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Requires `token` in every client `HELO`.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers() >= 2);
        assert!(c.max_batch > 1);
        assert!(c.proxy_dim % 32 == 0);
        assert_eq!(c.dispatch, DispatchPolicy::MinCompletionTime);
        assert_eq!(c.devices.primary().name, "Tesla V100");
        assert_eq!(c.reactors, 1, "the default front-end is single-reactor");
    }

    #[test]
    fn reactor_count_builds_on_and_zero_means_host_sized() {
        let c = ServeConfig::default().with_reactors(4);
        assert_eq!(c.reactors, 4);
        // 0 is a valid setting: the wire server resolves it at start time.
        assert_eq!(ServeConfig::default().with_reactors(0).reactors, 0);
    }

    #[test]
    fn builders_override_fields() {
        let c = ServeConfig::default()
            .with_workers(5)
            .with_max_batch(3)
            .with_max_queue_wait(Duration::from_millis(7))
            .with_proxy_dim(96)
            .with_dispatch(DispatchPolicy::RoundRobin)
            .with_encode_cache_dir("/tmp/dsstc-test-cache")
            .with_encode_cache_budget(CacheBudget { max_entries: 4, max_bytes: 1 << 20 });
        assert_eq!(c.workers(), 5);
        assert_eq!(c.max_batch, 3);
        assert_eq!(c.max_queue_wait, Duration::from_millis(7));
        assert_eq!(c.proxy_dim, 96);
        assert_eq!(c.dispatch, DispatchPolicy::RoundRobin);
        assert_eq!(c.encode_cache_dir, Some(PathBuf::from("/tmp/dsstc-test-cache")));
        assert_eq!(c.encode_cache_budget, CacheBudget { max_entries: 4, max_bytes: 1 << 20 });
    }

    #[test]
    fn telemetry_knobs_default_off_and_build_on() {
        let c = ServeConfig::default();
        assert_eq!(c.metrics_addr, None);
        assert_eq!(c.trace_out, None);
        let c = c
            .with_metrics_addr("127.0.0.1:9114".parse().unwrap())
            .with_trace_out("/tmp/dsstc-trace.jsonl");
        assert_eq!(c.metrics_addr, Some("127.0.0.1:9114".parse().unwrap()));
        assert_eq!(c.trace_out, Some(PathBuf::from("/tmp/dsstc-trace.jsonl")));
    }

    #[test]
    fn execute_threads_and_outbound_cap_have_safe_defaults_and_builders() {
        let c = ServeConfig::default();
        assert_eq!(c.execute_threads, 0, "default sizes to the host");
        assert!(c.max_outbound_bytes >= c.max_frame_len, "cap must admit a full response");
        let c = c.with_execute_threads(3).with_max_outbound_bytes(1 << 20);
        assert_eq!(c.execute_threads, 3);
        assert_eq!(c.max_outbound_bytes, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "outbound cap")]
    fn outbound_cap_rejects_degenerate_values() {
        let _ = ServeConfig::default().with_max_outbound_bytes(8);
    }

    #[test]
    fn encode_cache_defaults_to_memory_only_with_a_bounded_budget() {
        let c = ServeConfig::default();
        assert_eq!(c.encode_cache_dir, None);
        assert!(c.encode_cache_budget.max_entries < usize::MAX);
        assert!(c.encode_cache_budget.max_bytes < u64::MAX);
    }

    #[test]
    fn with_gpu_keeps_pool_size_and_with_devices_replaces_it() {
        let c = ServeConfig::default().with_workers(3).with_gpu(GpuConfig::a100());
        assert_eq!(c.workers(), 3);
        assert!(c.devices.devices().iter().all(|d| d.name == "A100"));
        let mixed = DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]);
        let c = c.with_devices(mixed);
        assert_eq!(c.workers(), 2);
        assert_eq!(c.devices.names(), vec!["Tesla V100".to_string(), "A100".to_string()]);
        assert!(!c.devices.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ServeConfig::default().with_workers(0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_panics() {
        let _ = DevicePool::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_panics() {
        let _ = ServeConfig::default().with_max_batch(0);
    }

    #[test]
    fn store_lifecycle_knobs_default_sanely_and_build_on() {
        let c = ServeConfig::default();
        assert_eq!(c.encode_store_budget, CacheBudget::store_default());
        assert!(c.encode_store_budget.max_bytes > c.encode_cache_budget.max_bytes);
        assert!(c.warm_boot_threads > 0);
        let c = c
            .with_encode_store_budget(CacheBudget { max_entries: 8, max_bytes: 1 << 16 })
            .with_warm_boot_threads(2);
        assert_eq!(c.encode_store_budget, CacheBudget { max_entries: 8, max_bytes: 1 << 16 });
        assert_eq!(c.warm_boot_threads, 2);
    }

    #[test]
    fn cluster_and_auth_default_off_and_build_on() {
        let c = ServeConfig::default();
        assert_eq!(c.cluster, None, "standalone by default");
        assert_eq!(c.auth_token, None, "tokenless by default");
        let member = ClusterConfig::new(1, "127.0.0.1:7401", vec![(0, "127.0.0.1:7400".into())])
            .with_replication(3)
            .with_vnodes(128)
            .with_seed(42)
            .with_ping(Duration::from_millis(100), 2);
        let c = c.with_cluster(member.clone()).with_auth_token("sesame");
        let cluster = c.cluster.expect("joined");
        assert_eq!(cluster, member);
        assert_eq!(cluster.node_id, 1);
        assert_eq!(cluster.replication, 3);
        assert_eq!(cluster.vnodes, 128);
        assert_eq!(cluster.seed, 42);
        assert_eq!(cluster.ping_interval, Duration::from_millis(100));
        assert_eq!(cluster.ping_failures, 2);
        assert_eq!(c.auth_token.as_deref(), Some("sesame"));
    }

    #[test]
    fn cluster_defaults_survive_a_single_node_failure() {
        let member = ClusterConfig::new(0, "", Vec::new());
        assert!(member.replication >= 2, "hot models must outlive one node");
        assert!(member.vnodes >= 64, "enough vnodes for balance");
        assert!(member.ping_failures >= 2, "one dropped ping must not kill a peer");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replication_panics() {
        let _ = ClusterConfig::new(0, "", Vec::new()).with_replication(0);
    }

    #[test]
    #[should_panic(expected = "virtual node")]
    fn zero_vnodes_panics() {
        let _ = ClusterConfig::new(0, "", Vec::new()).with_vnodes(0);
    }

    #[test]
    fn admission_control_defaults_off_and_builds_on() {
        let c = ServeConfig::default();
        assert_eq!(c.admission, None, "admission control must be opt-in");
        let c = c.with_admission_control(AdmissionControl::default());
        let policy = c.admission.expect("enabled");
        assert!(policy.slo_for(Priority::High) < policy.slo_for(Priority::Normal));
        assert!(policy.slo_for(Priority::Normal) < policy.slo_for(Priority::Low));
        assert!(policy.headroom > 0.0 && policy.headroom <= 1.0);
        assert!(policy.max_queue > 0);
    }

    #[test]
    fn should_shed_compares_projection_to_slo_headroom() {
        let policy = AdmissionControl::new(
            [Duration::from_millis(100), Duration::from_millis(100), Duration::from_millis(100)],
            0.5,
            1000,
        );
        // Budget is 100 ms × 0.5 = 50 000 µs; at or under it admits.
        assert_eq!(policy.budget_us(Priority::Low), 50_000.0);
        assert!(!policy.should_shed(Priority::Low, 50_000.0, 0), "boundary admits");
        assert!(policy.should_shed(Priority::Low, 50_000.1, 0), "over the boundary sheds");
        assert!(!policy.should_shed(Priority::Normal, 0.0, 0));
    }

    #[test]
    fn the_queue_bound_sheds_every_class_including_high() {
        let policy = AdmissionControl::new([Duration::from_secs(1); 3], 1.0, 4);
        assert!(
            !policy.should_shed(Priority::High, f64::INFINITY, 3),
            "projection never sheds high"
        );
        assert!(policy.should_shed(Priority::High, 0.0, 4), "the hard bound does");
        assert!(policy.should_shed(Priority::Low, 0.0, 4));
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn zero_headroom_panics() {
        let _ = AdmissionControl::new([Duration::from_secs(1); 3], 0.0, 10);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn over_unity_headroom_panics() {
        let _ = AdmissionControl::new([Duration::from_secs(1); 3], 1.1, 10);
    }

    #[test]
    #[should_panic(expected = "queue bound")]
    fn zero_queue_bound_panics() {
        let _ = AdmissionControl::new([Duration::from_secs(1); 3], 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "SLO must be non-zero")]
    fn zero_slo_panics() {
        let _ = AdmissionControl::new(
            [Duration::from_secs(1), Duration::ZERO, Duration::from_secs(1)],
            0.5,
            10,
        );
    }

    mod admission_props {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        fn arb_policy() -> impl Strategy<Value = AdmissionControl> {
            (1u64..=2_000_000, 1u64..=2_000_000, 1u64..=2_000_000, 1u32..=100, 1usize..=64)
                .prop_map(|(low, normal, high, headroom_pct, max_queue)| {
                    AdmissionControl::new(
                        [
                            Duration::from_micros(low),
                            Duration::from_micros(normal),
                            Duration::from_micros(high),
                        ],
                        f64::from(headroom_pct) / 100.0,
                        max_queue,
                    )
                })
        }

        proptest! {
            /// Shedding never rejects a request whose class still has SLO
            /// headroom (while the hard queue bound holds).
            #[test]
            fn never_sheds_within_slo_headroom(
                policy in arb_policy(),
                class in 0usize..3,
                fraction_permille in 0u32..=1000,
            ) {
                let priority = Priority::ALL[class];
                let projected = policy.budget_us(priority) * f64::from(fraction_permille) / 1e3;
                prop_assert!(
                    !policy.should_shed(priority, projected, policy.max_queue - 1),
                    "shed at {fraction_permille} permille of the SLO headroom"
                );
            }

            /// High priority is never shed by projection, however extreme.
            #[test]
            fn high_priority_is_never_shed_by_projection(
                policy in arb_policy(),
                projected_us in 0u64..1_000_000_000_000,
            ) {
                let projected = projected_us as f64;
                prop_assert!(!policy.should_shed(Priority::High, projected, policy.max_queue - 1));
            }

            /// Shedding is monotone in the projection: once a class sheds
            /// at some projected delay, every larger delay sheds too.
            #[test]
            fn shedding_is_monotone_in_projection(
                policy in arb_policy(),
                class in 0usize..3,
                projected_us in 0u64..1_000_000_000,
                extra_us in 0u64..1_000_000_000,
                queued in 0usize..64,
            ) {
                let (projected, extra) = (projected_us as f64, extra_us as f64);
                let priority = Priority::ALL[class];
                if policy.should_shed(priority, projected, queued) {
                    prop_assert!(policy.should_shed(priority, projected + extra, queued));
                }
            }

            /// Under an adversarial arrival sequence the admitted queue
            /// depth never exceeds the configured bound.
            #[test]
            fn queue_depth_stays_within_the_bound_under_adversarial_arrivals(
                policy in arb_policy(),
                seed in any::<u64>(),
                arrivals in 1usize..=512,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut queued = 0usize;
                for _ in 0..arrivals {
                    // The adversary picks the class, an arbitrary modelled
                    // projection, and occasionally drains a request.
                    if queued > 0 && rng.random_bool(0.3) {
                        queued -= 1;
                        continue;
                    }
                    let priority = Priority::ALL[rng.random_range(0usize..3)];
                    let projected = rng.random_range(0.0f64..3e6);
                    if !policy.should_shed(priority, projected, queued) {
                        queued += 1;
                    }
                    prop_assert!(
                        queued <= policy.max_queue,
                        "queue depth {queued} exceeded the bound {}",
                        policy.max_queue
                    );
                }
            }
        }
    }
}
