//! Thread-block / warp tiling and the DRAM-traffic model.
//!
//! All GEMM-shaped kernels in `dsstc-kernels` share a CUTLASS-style hierarchy:
//! thread blocks own a `block_m x block_n` output tile and iterate over `K`
//! in `block_k` slices; inside a block, warps own `warp_m x warp_n x warp_k`
//! tiles (32x32x16 here — the size the 4 KB accumulation buffer supports,
//! paper Section III-B3). The traffic model estimates DRAM bytes after L2
//! reuse with a wave-based approximation: the set of thread blocks resident
//! at once (one "wave") shares its A row panels and B column panels through
//! L2, and an operand whose entire encoded form fits in half the L2 is only
//! ever read once.

use dsstc_tensor::GemmShape;

/// Tiling parameters of a GEMM-shaped kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmTiling {
    /// Thread-block tile rows (M dimension).
    pub block_m: usize,
    /// Thread-block tile columns (N dimension).
    pub block_n: usize,
    /// K slice processed per main-loop iteration.
    pub block_k: usize,
    /// Warp tile rows.
    pub warp_m: usize,
    /// Warp tile columns.
    pub warp_n: usize,
    /// Warp tile depth.
    pub warp_k: usize,
}

impl GemmTiling {
    /// The tiling used by the paper's SpGEMM: 32x32x16 warp tiles inside
    /// 128x128 thread-block tiles.
    pub fn paper_spgemm() -> Self {
        GemmTiling { block_m: 128, block_n: 128, block_k: 16, warp_m: 32, warp_n: 32, warp_k: 16 }
    }

    /// A CUTLASS-like dense tiling (128x128 block, 64x64 warps, K slice 32).
    pub fn cutlass_dense() -> Self {
        GemmTiling { block_m: 128, block_n: 128, block_k: 32, warp_m: 64, warp_n: 64, warp_k: 32 }
    }

    /// Number of thread blocks for a GEMM of this shape.
    pub fn grid_blocks(&self, shape: &GemmShape) -> u64 {
        (shape.m.div_ceil(self.block_m) * shape.n.div_ceil(self.block_n)) as u64
    }

    /// Number of warp tiles inside one thread block.
    pub fn warps_per_block(&self) -> u64 {
        ((self.block_m / self.warp_m) * (self.block_n / self.warp_n)) as u64
    }

    /// Total warp-tile × k-slice steps for a GEMM of this shape: the unit at
    /// which the sparse kernels count skip opportunities.
    pub fn warp_tile_steps(&self, shape: &GemmShape) -> u64 {
        let grid_m = shape.m.div_ceil(self.warp_m) as u64;
        let grid_n = shape.n.div_ceil(self.warp_n) as u64;
        let grid_k = shape.k.div_ceil(self.warp_k) as u64;
        grid_m * grid_n * grid_k
    }

    /// Warp-tile shape of the column-condensed A operand of an outer-product
    /// SpGEMM under this tiling: `warp_m x warp_k`.
    pub fn a_tile(&self) -> (usize, usize) {
        (self.warp_m, self.warp_k)
    }

    /// Warp-tile shape of the row-condensed B operand: `warp_k x warp_n`.
    pub fn b_tile(&self) -> (usize, usize) {
        (self.warp_k, self.warp_n)
    }

    /// Compact, filesystem-safe identifier of this tiling, used to name
    /// persisted encoded-weight artifacts: `b<block>-w<warp>` with
    /// `MxNxK` dimensions.
    pub fn id(&self) -> String {
        format!(
            "b{}x{}x{}-w{}x{}x{}",
            self.block_m, self.block_n, self.block_k, self.warp_m, self.warp_n, self.warp_k
        )
    }
}

impl Default for GemmTiling {
    fn default() -> Self {
        Self::paper_spgemm()
    }
}

/// Inputs to the DRAM-traffic estimate for one GEMM-shaped kernel.
#[derive(Clone, Copy, Debug)]
pub struct TrafficInputs {
    /// Encoded size of the A operand in bytes (values + metadata).
    pub a_bytes: u64,
    /// Encoded size of the B operand in bytes.
    pub b_bytes: u64,
    /// Size of the output written to DRAM in bytes.
    pub d_bytes: u64,
    /// GEMM shape.
    pub shape: GemmShape,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Number of thread blocks resident on the device at once.
    pub concurrent_blocks: u64,
}

/// Estimated DRAM traffic split into reads and writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficEstimate {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
}

impl GemmTiling {
    /// Estimates DRAM traffic for a GEMM whose operands have the given
    /// encoded sizes.
    ///
    /// * If either operand fits in half the L2, both operands are read once
    ///   (the resident operand is reused from L2 across all blocks).
    /// * Otherwise a wave of `concurrent_blocks` thread blocks shares its A
    ///   row panels and B column panels; each wave re-reads those panels.
    pub fn dram_traffic(&self, inputs: &TrafficInputs) -> TrafficEstimate {
        let TrafficInputs { a_bytes, b_bytes, d_bytes, shape, l2_bytes, concurrent_blocks } =
            *inputs;
        let half_l2 = l2_bytes / 2;
        let read_bytes = if a_bytes <= half_l2 || b_bytes <= half_l2 {
            a_bytes + b_bytes
        } else {
            let grid_m = shape.m.div_ceil(self.block_m) as u64;
            let grid_n = shape.n.div_ceil(self.block_n) as u64;
            let total_blocks = grid_m * grid_n;
            let concurrent = concurrent_blocks.max(1).min(total_blocks);
            // Shape the wave as close to square as the grid allows.
            let wave_n = ((concurrent as f64).sqrt().ceil() as u64).clamp(1, grid_n);
            let wave_m = concurrent.div_ceil(wave_n).clamp(1, grid_m);
            let waves = total_blocks.div_ceil(wave_m * wave_n);
            // Per wave: the unique A row panels and B column panels it touches.
            let a_per_wave = (a_bytes * wave_m) / grid_m.max(1);
            let b_per_wave = (b_bytes * wave_n) / grid_n.max(1);
            let streamed = waves * (a_per_wave + b_per_wave);
            // Never less than reading each operand once, never more than the
            // no-reuse upper bound.
            streamed.clamp(a_bytes + b_bytes, a_bytes * grid_n + b_bytes * grid_m)
        };
        TrafficEstimate { read_bytes, write_bytes: d_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_4k() -> GemmShape {
        GemmShape::new(4096, 4096, 4096)
    }

    #[test]
    fn paper_tiling_dimensions() {
        let t = GemmTiling::paper_spgemm();
        assert_eq!(t.warps_per_block(), 16);
        assert_eq!(t.grid_blocks(&shape_4k()), 32 * 32);
        // 128 x 128 x 256 warp-tile steps for 4096^3.
        assert_eq!(t.warp_tile_steps(&shape_4k()), 128 * 128 * 256);
    }

    #[test]
    fn grid_blocks_rounds_up() {
        let t = GemmTiling::paper_spgemm();
        let s = GemmShape::new(130, 1, 16);
        assert_eq!(t.grid_blocks(&s), 2);
        assert_eq!(t.warp_tile_steps(&GemmShape::new(33, 33, 17)), 2 * 2 * 2);
    }

    #[test]
    fn traffic_small_operand_resident_in_l2() {
        let t = GemmTiling::paper_spgemm();
        // B is tiny (fits L2): both operands read exactly once.
        let inputs = TrafficInputs {
            a_bytes: 32 << 20,
            b_bytes: 1 << 20,
            d_bytes: 64 << 20,
            shape: shape_4k(),
            l2_bytes: 6 << 20,
            concurrent_blocks: 160,
        };
        let est = t.dram_traffic(&inputs);
        assert_eq!(est.read_bytes, (32 << 20) + (1 << 20));
        assert_eq!(est.write_bytes, 64 << 20);
    }

    #[test]
    fn traffic_large_dense_operands_use_wave_reuse() {
        let t = GemmTiling::cutlass_dense();
        let a_bytes = (4096u64 * 4096) * 2;
        let inputs = TrafficInputs {
            a_bytes,
            b_bytes: a_bytes,
            d_bytes: (4096u64 * 4096) * 4,
            shape: shape_4k(),
            l2_bytes: 6 << 20,
            concurrent_blocks: 160,
        };
        let est = t.dram_traffic(&inputs);
        // More than reading once, far less than the no-reuse bound (32x).
        assert!(est.read_bytes > 2 * a_bytes);
        assert!(est.read_bytes < 16 * a_bytes, "got {}", est.read_bytes);
    }

    #[test]
    fn traffic_never_below_compulsory_reads() {
        let t = GemmTiling::paper_spgemm();
        let inputs = TrafficInputs {
            a_bytes: 100 << 20,
            b_bytes: 100 << 20,
            d_bytes: 10 << 20,
            shape: GemmShape::new(256, 256, 65536),
            l2_bytes: 6 << 20,
            concurrent_blocks: 10_000,
        };
        let est = t.dram_traffic(&inputs);
        assert!(est.read_bytes >= 200 << 20);
    }

    #[test]
    fn sparser_operands_reduce_traffic() {
        let t = GemmTiling::paper_spgemm();
        let mk = |a: u64, b: u64| TrafficInputs {
            a_bytes: a,
            b_bytes: b,
            d_bytes: 64 << 20,
            shape: shape_4k(),
            l2_bytes: 6 << 20,
            concurrent_blocks: 160,
        };
        let dense = t.dram_traffic(&mk(32 << 20, 32 << 20));
        let sparse = t.dram_traffic(&mk(8 << 20, 8 << 20));
        assert!(sparse.read_bytes < dense.read_bytes);
    }

    #[test]
    fn default_tiling_is_paper_spgemm() {
        assert_eq!(GemmTiling::default(), GemmTiling::paper_spgemm());
    }

    #[test]
    fn operand_tiles_follow_the_warp_tiling() {
        let t = GemmTiling::paper_spgemm();
        assert_eq!(t.a_tile(), (32, 16));
        assert_eq!(t.b_tile(), (16, 32));
    }

    #[test]
    fn tiling_id_is_filesystem_safe_and_unique_per_tiling() {
        let paper = GemmTiling::paper_spgemm();
        let dense = GemmTiling::cutlass_dense();
        assert_eq!(paper.id(), "b128x128x16-w32x32x16");
        assert_ne!(paper.id(), dense.id());
        assert!(paper.id().chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }
}
