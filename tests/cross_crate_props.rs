//! Property-based tests (proptest) on the core invariants that hold across
//! crates: encodings are lossless, the outer-product SpGEMM computes the
//! same product as the dense reference, im2col variants agree, and the OTC
//! skip model is consistent with the ISA predicate masks.

use dsstc_formats::{BitmapMatrix, CsrMatrix, TwoLevelBitmapMatrix, VectorLayout};
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::im2col::{BitmapIm2col, CsrIm2col, DenseIm2col};
use dsstc_sim::{predicate_mask, GpuConfig, OtcConfig, OtcStepCost};
use dsstc_tensor::{f16, ConvShape, FeatureMap, Matrix, RandomMatrixBuilder, SparsityPattern};
use proptest::prelude::*;

/// Strategy: a random sparse matrix with bounded dimensions.
fn sparse_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, 0u8..=10, any::<u64>()).prop_map(|(rows, cols, tenths, seed)| {
        RandomMatrixBuilder::new(rows, cols)
            .sparsity(f64::from(tenths) / 10.0)
            .pattern(SparsityPattern::Uniform)
            .seed(seed)
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_encoding_roundtrips(m in sparse_matrix(48), col_major in any::<bool>()) {
        let layout = if col_major { VectorLayout::ColumnMajor } else { VectorLayout::RowMajor };
        let enc = BitmapMatrix::encode(&m, layout);
        prop_assert_eq!(enc.nnz(), m.nnz());
        prop_assert_eq!(enc.decode(), m);
    }

    #[test]
    fn csr_encoding_roundtrips(m in sparse_matrix(48)) {
        let enc = CsrMatrix::encode(&m);
        prop_assert_eq!(enc.nnz(), m.nnz());
        prop_assert_eq!(enc.decode(), m);
    }

    #[test]
    fn two_level_encoding_roundtrips_for_any_tile_size(
        m in sparse_matrix(40),
        tile_rows in 1usize..=33,
        tile_cols in 1usize..=33,
    ) {
        let enc = TwoLevelBitmapMatrix::encode(&m, tile_rows, tile_cols, VectorLayout::ColumnMajor);
        prop_assert_eq!(enc.nnz(), m.nnz());
        prop_assert_eq!(enc.decode(), m);
        // The warp bitmap never under-reports: empty tiles + non-empty tiles
        // cover the whole grid.
        prop_assert_eq!(enc.warp_bitmap().count_ones() + enc.empty_tiles(), enc.tile_count());
    }

    #[test]
    fn bitmap_spgemm_matches_dense_reference(
        m in 1usize..=40,
        n in 1usize..=40,
        k in 1usize..=40,
        sa in 0u8..=10,
        sb in 0u8..=10,
        seed in any::<u64>(),
    ) {
        let a = RandomMatrixBuilder::new(m, k).sparsity(f64::from(sa) / 10.0).seed(seed).build();
        let b = RandomMatrixBuilder::new(k, n).sparsity(f64::from(sb) / 10.0).seed(seed ^ 0xABCD).build();
        let (out, profile) = BitmapSpGemm::new(GpuConfig::v100()).execute(&a, &b);
        prop_assert!(out.approx_eq(&a.matmul(&b), 1e-2));
        // Never more OHMMAs than the dense outer-product execution needs.
        let otc = OtcConfig::paper();
        let dense_steps = m.div_ceil(32) as u64 * n.div_ceil(32) as u64 * k as u64;
        prop_assert!(profile.ohmma_instructions <= dense_steps * OtcStepCost::dense_ohmma_count(32, &otc));
    }

    #[test]
    fn im2col_variants_agree(
        hw in 3usize..=12,
        c in 1usize..=4,
        n in 1usize..=3,
        k in 1usize..=3,
        stride in 1usize..=2,
        sparsity in 0u8..=10,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw >= k);
        let padding = k / 2;
        let shape = ConvShape::square(hw, c, n, k, stride, padding);
        let mut fm = FeatureMap::random_sparse(&shape, f64::from(sparsity) / 10.0, seed);
        // Ensure at least the shape exercises zero and non-zero paths.
        fm.set(0, 0, 0, 1.5);
        let dense = DenseIm2col::new().lower(&fm, &shape);
        let csr = CsrIm2col::new();
        let bitmap = BitmapIm2col::new();
        prop_assert_eq!(csr.lower(&csr.encode(&fm), &shape), dense.clone());
        prop_assert_eq!(bitmap.lower(&bitmap.encode(&fm), &shape), dense);
    }

    #[test]
    fn predicate_mask_enables_exactly_the_issued_ohmmas(a_nnz in 0usize..=32, b_nnz in 0usize..=32) {
        let otc = OtcConfig::paper();
        let step = OtcStepCost::for_vectors(a_nnz, b_nnz, 32, &otc);
        let mask = predicate_mask(a_nnz, b_nnz, 32, &otc);
        let enabled = mask.iter().filter(|&&p| p).count() as u64;
        prop_assert_eq!(enabled, step.ohmma_issued);
        prop_assert_eq!(mask.len() as u64, step.ohmma_issued + step.ohmma_skipped);
    }

    #[test]
    fn otc_step_cost_is_monotone_in_nnz(a1 in 0usize..=32, a2 in 0usize..=32, b in 0usize..=32) {
        let otc = OtcConfig::paper();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let c_lo = OtcStepCost::for_vectors(lo, b, 32, &otc);
        let c_hi = OtcStepCost::for_vectors(hi, b, 32, &otc);
        prop_assert!(c_lo.ohmma_issued <= c_hi.ohmma_issued);
        prop_assert!(c_lo.partial_nnz <= c_hi.partial_nnz);
    }

    #[test]
    fn f16_roundtrip_preserves_order_and_zero(x in -60000.0f32..60000.0, y in -60000.0f32..60000.0) {
        let rx = f16::round_f32(x);
        let ry = f16::round_f32(y);
        // Rounding is monotone.
        if x <= y {
            prop_assert!(rx <= ry);
        }
        // Relative error of a single rounding stays within half precision.
        if x.abs() > 1e-3 {
            prop_assert!(((rx - x) / x).abs() < 1e-3);
        }
        prop_assert_eq!(f16::round_f32(0.0), 0.0);
    }

    #[test]
    fn matrix_sparsity_survives_every_encoding(m in sparse_matrix(40)) {
        let nnz = m.nnz();
        prop_assert_eq!(CsrMatrix::encode(&m).nnz(), nnz);
        prop_assert_eq!(BitmapMatrix::encode(&m, VectorLayout::ColumnMajor).nnz(), nnz);
        prop_assert_eq!(TwoLevelBitmapMatrix::encode(&m, 32, 16, VectorLayout::RowMajor).nnz(), nnz);
    }

    #[test]
    fn two_level_serialisation_roundtrips_across_tilings_and_layouts(
        m in sparse_matrix(40),
        tile_rows in 1usize..=33,
        tile_cols in 1usize..=33,
        row_major in any::<bool>(),
    ) {
        // encode -> serialise -> deserialise -> decode == dense, for any
        // warp-tile shape and both condensed-vector layouts.
        let layout = if row_major { VectorLayout::RowMajor } else { VectorLayout::ColumnMajor };
        let enc = TwoLevelBitmapMatrix::encode(&m, tile_rows, tile_cols, layout);
        let back = TwoLevelBitmapMatrix::from_bytes(&enc.to_bytes()).expect("roundtrip decodes");
        prop_assert_eq!(&back, &enc, "deserialised encoding differs structurally");
        prop_assert_eq!(back.decode(), m);
    }

    #[test]
    fn bitmap_serialisation_roundtrips(m in sparse_matrix(48), col_major in any::<bool>()) {
        let layout = if col_major { VectorLayout::ColumnMajor } else { VectorLayout::RowMajor };
        let enc = BitmapMatrix::encode(&m, layout);
        let back = BitmapMatrix::from_bytes(&enc.to_bytes()).expect("roundtrip decodes");
        prop_assert_eq!(&back, &enc);
        prop_assert_eq!(back.decode(), m);
    }

    #[test]
    fn serialised_corruption_never_panics_and_never_false_decodes(
        m in sparse_matrix(24),
        cut_tenths in 0u8..=9,
        flip_tenths in 0u8..=9,
    ) {
        // Truncation at an arbitrary point and a bit flip at an arbitrary
        // point must both surface as clean errors (or, for the flip, a
        // decode that still structurally validates) — never a panic.
        let enc = TwoLevelBitmapMatrix::encode(&m, 16, 16, VectorLayout::RowMajor);
        let bytes = enc.to_bytes();
        let cut = bytes.len() * usize::from(cut_tenths) / 10;
        prop_assert!(TwoLevelBitmapMatrix::from_bytes(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        let at = bytes.len() * usize::from(flip_tenths) / 10;
        let at = at.min(bytes.len() - 1);
        flipped[at] ^= 0x10;
        // Any outcome but a panic is acceptable only if it is an error —
        // the checksum (or a structural check) must catch the flip.
        prop_assert!(TwoLevelBitmapMatrix::from_bytes(&flipped).is_err(),
            "a corrupted artifact decoded successfully (flip at byte {})", at);
    }
}
