//! Minimal IEEE-754 binary16 (half precision) emulation.
//!
//! The Tensor Core multiplies FP16 operands and accumulates in FP32. The
//! timing model never needs real half-precision arithmetic, but the
//! functional model rounds operand values through FP16 storage so that the
//! numerical behaviour (and the tolerance needed when checking outer-product
//! vs inner-product results) matches what the hardware would produce.

use std::fmt;

/// A 16-bit IEEE-754 binary16 value stored as its bit pattern.
///
/// Only the conversions to/from `f32` needed by the functional GEMM model are
/// provided; arithmetic is always carried out in `f32` after widening, which
/// is exactly what the FP16-multiply / FP32-accumulate datapath does.
///
/// # Example
/// ```
/// use dsstc_tensor::f16;
/// let x = f16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[allow(non_camel_case_types)]
pub struct f16(u16);

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Largest finite value (65504.0).
    pub const MAX: f16 = f16(0x7BFF);

    /// Creates a half from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable half (round to nearest
    /// even), saturating to infinity on overflow.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            let payload = if mantissa != 0 { 0x0200 } else { 0 };
            return f16(sign | 0x7C00 | payload);
        }

        // Re-bias exponent: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return f16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normalised half.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shifted = mantissa >> 13;
            let round_bit = (mantissa >> 12) & 1;
            let sticky = (mantissa & 0x0FFF) != 0;
            let mut half = sign | half_exp | shifted as u16;
            if round_bit == 1 && (sticky || (shifted & 1) == 1) {
                half = half.wrapping_add(1);
            }
            return f16(half);
        }
        if unbiased >= -24 {
            // Subnormal half.
            let full_mantissa = mantissa | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let shifted = full_mantissa >> shift;
            let round_mask = 1u32 << (shift - 1);
            let mut half = sign | shifted as u16;
            let remainder = full_mantissa & ((1u32 << shift) - 1);
            if remainder > round_mask || (remainder == round_mask && (shifted & 1) == 1) {
                half = half.wrapping_add(1);
            }
            return f16(half);
        }
        // Underflow to signed zero.
        f16(sign)
    }

    /// Widens the half to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let mantissa = u32::from(self.0 & 0x03FF);

        let bits = if exp == 0 {
            if mantissa == 0 {
                sign
            } else {
                // Subnormal: normalise.
                let mut e = 0i32;
                let mut m = mantissa;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                let exp32 = (127 - 15 + e + 1) as u32;
                sign | (exp32 << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mantissa << 13)
        } else {
            let exp32 = exp + 127 - 15;
            sign | (exp32 << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` through half precision and back, emulating storage of
    /// an FP16 operand.
    pub fn round_f32(value: f32) -> f32 {
        Self::from_f32(value).to_f32()
    }

    /// Whether the value is exactly zero (either sign).
    pub fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f16({})", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for f16 {
    fn from(value: f32) -> Self {
        f16::from_f32(value)
    }
}

impl From<f16> for f32 {
    fn from(value: f16) -> Self {
        value.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_roundtrip() {
        assert_eq!(f16::from_f32(0.0).to_bits(), 0);
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        assert!(f16::from_f32(0.0).is_zero());
        assert!(f16::from_f32(-0.0).is_zero());
    }

    #[test]
    fn one_and_small_integers_are_exact() {
        for v in [1.0f32, 2.0, 3.0, 4.0, 0.5, 0.25, -1.0, -17.0, 2048.0] {
            assert_eq!(f16::round_f32(v), v, "value {v} should be exact in f16");
        }
    }

    #[test]
    fn max_value() {
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::from_f32(65504.0).to_bits(), f16::MAX.to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(f16::from_f32(1e9).to_f32().is_infinite());
        assert!(f16::from_f32(-1e9).to_f32().is_infinite());
    }

    #[test]
    fn nan_propagates() {
        assert!(f16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormal_roundtrip() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny).to_f32(), tiny);
        // Values below half the smallest subnormal flush to zero.
        assert_eq!(f16::from_f32(2.0f32.powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1.0 + 2^-11 is exactly between 1.0 and the next representable half
        // (1.0 + 2^-10); round-to-nearest-even keeps 1.0.
        let v = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::round_f32(v), 1.0);
        // Slightly above the midpoint rounds up.
        let v = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-16);
        assert_eq!(f16::round_f32(v), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn ordering_of_magnitudes_is_preserved() {
        let mut prev = 0.0;
        for i in 1..100 {
            let v = i as f32 * 0.37;
            let r = f16::round_f32(v);
            assert!(r >= prev, "rounded sequence must be monotone");
            prev = r;
        }
    }

    #[test]
    fn display_and_debug() {
        let x = f16::from_f32(1.5);
        assert_eq!(format!("{x}"), "1.5");
        assert_eq!(format!("{x:?}"), "f16(1.5)");
    }
}
