//! CACTI-style SRAM macro model.
//!
//! Small, heavily banked scratchpads (like the 4 KB accumulation buffer) are
//! periphery-dominated, so the model charges an effective area per bit that
//! includes the local decoders/sense amplifiers plus a fixed overhead per
//! bank, and a power made of per-bit leakage plus per-byte access energy.
//! The 22 nm constants are calibrated so that the paper's CACTI 7 numbers
//! for the shared accumulation buffer are reproduced after scaling to 12 nm.

use crate::tech::TechnologyNode;

/// Effective area of one SRAM bit (cell + local periphery) at 22 nm, in µm².
const BIT_AREA_UM2_22NM: f64 = 2.0;
/// Fixed periphery overhead per bank at 22 nm, in µm².
const BANK_OVERHEAD_UM2_22NM: f64 = 2000.0;
/// Leakage per bit at 22 nm, in watts.
const LEAKAGE_PER_BIT_W_22NM: f64 = 15e-9;
/// Dynamic access energy per byte at 22 nm, in joules.
const ACCESS_ENERGY_PER_BYTE_J_22NM: f64 = 0.07e-12;

/// One SRAM macro (e.g. a single accumulation buffer instance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramMacro {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of independently addressed banks.
    pub banks: u32,
}

impl SramMacro {
    /// Creates a macro description.
    ///
    /// # Panics
    /// Panics if the capacity or bank count is zero.
    pub fn new(capacity_bytes: u64, banks: u32) -> Self {
        assert!(capacity_bytes > 0 && banks > 0, "capacity and banks must be non-zero");
        SramMacro { capacity_bytes, banks }
    }

    /// Area of one macro instance at the given node, in mm².
    pub fn area_mm2(&self, node: TechnologyNode) -> f64 {
        let bits = self.capacity_bytes as f64 * 8.0;
        let area_um2_22 = bits * BIT_AREA_UM2_22NM + self.banks as f64 * BANK_OVERHEAD_UM2_22NM;
        node.scale_area_from_22nm(area_um2_22 / 1e6)
    }

    /// Power of one macro instance at the given node, in watts, assuming
    /// `bytes_per_second` of sustained access bandwidth.
    pub fn power_w(&self, node: TechnologyNode, bytes_per_second: f64) -> f64 {
        let bits = self.capacity_bytes as f64 * 8.0;
        let leakage = bits * LEAKAGE_PER_BIT_W_22NM;
        let dynamic = bytes_per_second * ACCESS_ENERGY_PER_BYTE_J_22NM;
        node.scale_power_from_22nm(leakage + dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accum_buffer() -> SramMacro {
        SramMacro::new(4 * 1024, 16)
    }

    #[test]
    fn area_scales_with_capacity() {
        let small = SramMacro::new(1024, 4).area_mm2(TechnologyNode::Nm22);
        let large = SramMacro::new(8 * 1024, 4).area_mm2(TechnologyNode::Nm22);
        assert!(large > 4.0 * small);
    }

    #[test]
    fn area_includes_per_bank_overhead() {
        let few = SramMacro::new(4096, 1).area_mm2(TechnologyNode::Nm22);
        let many = SramMacro::new(4096, 32).area_mm2(TechnologyNode::Nm22);
        assert!(many > few);
    }

    #[test]
    fn accumulation_buffer_instance_is_about_0_035_mm2_at_12nm() {
        // 320 instances must land near the paper's 11.2 mm² total.
        let per_instance = accum_buffer().area_mm2(TechnologyNode::Nm12);
        let total = per_instance * 320.0;
        assert!((total - 11.2).abs() < 1.5, "total {total} mm2");
    }

    #[test]
    fn power_has_leakage_floor_and_grows_with_bandwidth() {
        let idle = accum_buffer().power_w(TechnologyNode::Nm12, 0.0);
        assert!(idle > 0.0);
        let busy = accum_buffer().power_w(TechnologyNode::Nm12, 64.0 * 1.53e9);
        assert!(busy > idle);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = SramMacro::new(0, 4);
    }
}
