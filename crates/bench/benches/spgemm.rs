//! Criterion bench behind Figure 21: modelled SpGEMM cost-evaluation across
//! schemes, plus the functional warp-level SpGEMM kernel itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc::DualSideSparseTensorCore;
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::dense_gemm::DenseGemm;
use dsstc_sim::GpuConfig;
use dsstc_tensor::{GemmShape, Matrix, SparsityPattern};
use std::hint::black_box;

fn bench_scheme_estimation(c: &mut Criterion) {
    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(2048, 2048, 2048);
    let mut group = c.benchmark_group("fig21_estimation");
    group.sample_size(10);
    for &(a, b) in &[(0.0, 0.0), (0.5, 0.5), (0.9, 0.99)] {
        group.bench_with_input(
            BenchmarkId::new("dual_side_estimate", format!("a{a}_b{b}")),
            &(a, b),
            |bench, &(a, b)| bench.iter(|| black_box(engine.estimate_spgemm(shape, a, b))),
        );
    }
    group.finish();
}

fn bench_functional_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_spgemm_256");
    group.sample_size(10);
    let dense_kernel = DenseGemm::new(GpuConfig::v100());
    let bitmap_kernel = BitmapSpGemm::new(GpuConfig::v100());
    for &sparsity in &[0.5, 0.9, 0.99] {
        let a = Matrix::random_sparse(256, 256, sparsity, SparsityPattern::Uniform, 1);
        let b = Matrix::random_sparse(256, 256, sparsity, SparsityPattern::Uniform, 2);
        group.bench_with_input(
            BenchmarkId::new("dense_reference", sparsity),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(dense_kernel.execute(a, b))),
        );
        group.bench_with_input(
            BenchmarkId::new("bitmap_outer_product", sparsity),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(bitmap_kernel.execute(a, b))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheme_estimation, bench_functional_spgemm);
criterion_main!(benches);
