//! Thread-block / warp tiling and the DRAM-traffic model.
//!
//! The tiling types live in [`dsstc_sim::tiling`] so the device
//! configuration ([`dsstc_sim::GpuConfig`]) can expose its **native**
//! tiling — the shape encodings must target to run on that device — without
//! a circular dependency. This module re-exports them under their
//! historical path; every kernel in this crate still consumes
//! [`GemmTiling`] exactly as before.

pub use dsstc_sim::tiling::{GemmTiling, TrafficEstimate, TrafficInputs};
