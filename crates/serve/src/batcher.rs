//! Dynamic request batching.
//!
//! Requests accumulate in a FIFO queue; a worker asking for work receives a
//! **batch**: up to `max_batch` queued requests sharing one
//! `(model, sparsity)` key. A batch is released as soon as any key reaches
//! `max_batch` compatible requests, when the oldest queued request has
//! waited `max_queue_wait` (that request's key flushes even unfull), or
//! when the scheduler is draining for shutdown — so latency is bounded even
//! under trickle traffic, full batches of one model never wait behind an
//! unfull head of another, and unrelated models queued behind the head
//! cannot starve it.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dsstc_tensor::Matrix;

use crate::request::{InferResponse, ModelKey};

/// Batching policy knobs (a subset of [`crate::ServeConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Largest number of requests merged into one batch.
    pub max_batch: usize,
    /// How long the oldest queued request may wait before its batch is
    /// flushed even if it is not full.
    pub max_queue_wait: Duration,
}

/// One queued request with its response channel.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Server-assigned request id.
    pub id: u64,
    /// Encode-cache key (batch compatibility class).
    pub key: ModelKey,
    /// Input features.
    pub features: Matrix,
    /// Where the response goes.
    pub response_tx: Sender<InferResponse>,
    /// When the request entered the queue.
    pub enqueued: Instant,
}

/// A group of compatible requests released to one worker.
#[derive(Debug)]
pub(crate) struct Batch {
    /// The shared `(model, sparsity)` key.
    pub key: ModelKey,
    /// The member requests, oldest first.
    pub requests: Vec<PendingRequest>,
}

impl Batch {
    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Total feature rows across member requests.
    pub fn total_rows(&self) -> usize {
        self.requests.iter().map(|r| r.features.rows()).sum()
    }
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<PendingRequest>,
    open: bool,
}

/// The dynamic batching queue shared by the server front-end and the worker
/// pool.
#[derive(Debug)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl BatchScheduler {
    /// Creates an open scheduler.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "batches need at least one request");
        BatchScheduler {
            policy,
            state: Mutex::new(QueueState { queue: VecDeque::new(), open: true }),
            cv: Condvar::new(),
        }
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.state.lock().expect("scheduler mutex poisoned").queue.len()
    }

    /// Whether the scheduler still accepts requests.
    pub fn is_open(&self) -> bool {
        self.state.lock().expect("scheduler mutex poisoned").open
    }

    /// Enqueues one request. Returns `false` (dropping the request) if the
    /// scheduler has been shut down.
    pub(crate) fn enqueue(&self, request: PendingRequest) -> bool {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        if !state.open {
            return false;
        }
        state.queue.push_back(request);
        // Wake every waiting worker: the head batch may just have become
        // full, and a worker watching a deadline needs to re-evaluate.
        self.cv.notify_all();
        true
    }

    /// Blocks until a batch is ready (or the scheduler is shut down **and**
    /// drained, in which case `None` tells the worker to exit).
    ///
    /// A batch is released as soon as **any** key has `max_batch` compatible
    /// requests queued (earliest such key first), so a full batch behind an
    /// unfull head never waits on the head's deadline; otherwise the head's
    /// deadline bounds everyone's queue latency, because extraction always
    /// favours the head once its deadline expires.
    pub(crate) fn next_batch(&self) -> Option<Batch> {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        loop {
            if let Some(head) = state.queue.front() {
                let deadline = head.enqueued + self.policy.max_queue_wait;
                let now = Instant::now();
                let key = if now >= deadline || !state.open {
                    // Head flush: deadline expired (or draining), the head
                    // goes out regardless of batch fill.
                    Some(head.key)
                } else {
                    self.first_full_key(&state.queue)
                };
                if let Some(key) = key {
                    return Some(Self::extract(&mut state.queue, key, self.policy.max_batch));
                }
                // Nothing full yet: sleep until the head's deadline or the
                // next enqueue, whichever comes first.
                let wait = deadline.saturating_duration_since(now);
                let (next, _timed_out) =
                    self.cv.wait_timeout(state, wait).expect("scheduler mutex poisoned");
                state = next;
            } else if !state.open {
                return None;
            } else {
                state = self.cv.wait(state).expect("scheduler mutex poisoned");
            }
        }
    }

    /// The key of the earliest-queued request whose compatibility class has
    /// reached a full batch, if any.
    fn first_full_key(&self, queue: &VecDeque<PendingRequest>) -> Option<ModelKey> {
        // Count per key in arrival order of each key's first member; queues
        // hold at most a few distinct (model, sparsity) classes, so the
        // linear scan with a small Vec beats hashing.
        let mut counts: Vec<(ModelKey, usize)> = Vec::new();
        for request in queue {
            match counts.iter_mut().find(|(k, _)| *k == request.key) {
                Some((_, n)) => *n += 1,
                None => counts.push((request.key, 1)),
            }
        }
        counts.into_iter().find(|&(_, n)| n >= self.policy.max_batch).map(|(k, _)| k)
    }

    /// Stops accepting requests; queued work is still drained by
    /// [`Self::next_batch`].
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        state.open = false;
        self.cv.notify_all();
    }

    /// Removes up to `limit` requests with `key` from the queue, preserving
    /// arrival order.
    fn extract(queue: &mut VecDeque<PendingRequest>, key: ModelKey, limit: usize) -> Batch {
        let mut requests = Vec::new();
        let mut i = 0;
        while i < queue.len() && requests.len() < limit {
            if queue[i].key == key {
                // `remove` preserves the relative order of the rest.
                requests.push(queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        debug_assert!(!requests.is_empty(), "extract called with a matching head");
        Batch { key, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn policy(max_batch: usize, wait_ms: u64) -> BatchPolicy {
        BatchPolicy { max_batch, max_queue_wait: Duration::from_millis(wait_ms) }
    }

    fn request(model: ModelId) -> PendingRequest {
        let (tx, _rx) = mpsc::channel();
        // Tests keep the receiver alive only when they assert on responses.
        std::mem::forget(_rx);
        PendingRequest {
            id: 0,
            key: ModelKey::new(model, None),
            features: Matrix::zeros(2, 8),
            response_tx: tx,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn full_batches_never_exceed_max_batch() {
        let s = BatchScheduler::new(policy(4, 60_000));
        for _ in 0..10 {
            assert!(s.enqueue(request(ModelId::BertBase)));
        }
        let sizes: Vec<usize> = (0..2).map(|_| s.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(s.queue_len(), 2);
        // The remaining two are not a full batch; they flush on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 2);
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let s = BatchScheduler::new(policy(64, 30));
        let t0 = Instant::now();
        assert!(s.enqueue(request(ModelId::ResNet50)));
        let batch = s.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_secs(5), "flushed after {waited:?}");
    }

    #[test]
    fn batches_group_by_key_without_starving_the_head() {
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        // Head is BERT: its three compatible requests batch together.
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.key.model, ModelId::BertBase);
        assert_eq!(b1.len(), 3);
        // ResNet-50 moved to the head; drain it via shutdown flush.
        s.shutdown();
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.key.model, ModelId::ResNet50);
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn a_full_batch_behind_an_unfull_head_releases_immediately() {
        // Head is a lone ResNet-50 request with a long deadline; a FULL
        // BERT batch arrives behind it and must not wait for that deadline.
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::ResNet50));
        for _ in 0..3 {
            s.enqueue(request(ModelId::BertBase));
        }
        let t0 = Instant::now();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.key.model, ModelId::BertBase);
        assert_eq!(batch.len(), 3);
        assert!(t0.elapsed() < Duration::from_secs(5), "released without waiting on the head");
        // The head is still queued and flushes on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().key.model, ModelId::ResNet50);
    }

    #[test]
    fn different_sparsity_overrides_do_not_batch_together() {
        let s = BatchScheduler::new(policy(8, 60_000));
        let mut sparse = request(ModelId::RnnLm);
        sparse.key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        s.enqueue(request(ModelId::RnnLm));
        s.enqueue(sparse);
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 1);
        assert_eq!(s.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn enqueue_after_shutdown_is_rejected() {
        let s = BatchScheduler::new(policy(4, 10));
        s.shutdown();
        assert!(!s.enqueue(request(ModelId::Vgg16)));
        assert!(!s.is_open());
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn total_rows_sums_member_features() {
        let s = BatchScheduler::new(policy(4, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::BertBase));
        s.shutdown();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.total_rows(), 4); // two requests x two rows
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_request() {
        let s = Arc::new(BatchScheduler::new(policy(5, 5)));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        assert!(s.enqueue(request(ModelId::BertBase)));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while let Some(batch) = s.next_batch() {
                        assert!(batch.len() <= 5);
                        seen += batch.len();
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Give consumers a moment to drain, then close.
        while s.queue_len() > 0 {
            std::thread::yield_now();
        }
        s.shutdown();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
