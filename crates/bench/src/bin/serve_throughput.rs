//! Serving-throughput sweep for the `dsstc-serve` runtime.
//!
//! Three modes:
//!
//! * **closed-loop** (default): one burst of mixed ResNet-50 / BERT traffic
//!   per (workers x max_batch) cell, measuring requests/second and latency
//!   percentiles at whatever rate the server sustains. Shows dynamic
//!   batching amortising per-layer work into larger-M GEMMs and the worker
//!   pool spreading batches across cores.
//! * **open-loop** (`--open-loop`): seeded Poisson arrivals drive each
//!   (max_batch x device-mix) cell at a grid of offered loads, producing a
//!   latency-vs-offered-load curve — the behaviour a closed-loop driver
//!   cannot see, because open-loop arrivals keep coming no matter how far
//!   behind the server falls. The arrival process is **split across
//!   multiple submitter threads** (superposed Poisson sub-processes) and
//!   each submitter paces with hybrid sleep + busy-spin
//!   ([`dsstc_serve::pace_until`]), so offered rates past 10k rps stay
//!   faithful to the arrival clock instead of collapsing to the
//!   scheduler's sleep granularity.
//! * **open-loop over the wire** (`--open-loop --wire`): every cell runs
//!   **twice** against the same trace — once through the in-process
//!   `submit` path and once through the TCP front-end over loopback, each
//!   submitter thread a pipelined [`dsstc_serve::net::WireClient`]
//!   connection with a concurrent reader. The sweep prints in-process vs
//!   over-the-wire latency side by side and asserts the two paths produce
//!   **bit-identical** outputs for every request.
//!
//! Run with `cargo run --release -p dsstc-bench --bin serve_throughput`
//! (append `--help` for the flag reference).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use dsstc_serve::net::{RequestFrame, WireClient, WireServer};
use dsstc_serve::{
    pace_until, percentile, DevicePool, InferRequest, InferenceServer, ModelId, PoissonArrivals,
    Priority, ServeConfig, ServerStats, Stage,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

const REQUESTS: u64 = 96;

/// Seed of the open-loop arrival process (fixed: cells are reproducible).
const ARRIVAL_SEED: u64 = 0x0A_11_2E_ED;

const USAGE: &str = "usage: serve_throughput [FLAGS]

  (no flags)                closed-loop sweep over a (workers x max_batch) grid
  --open-loop               open-loop sweep: seeded Poisson arrivals over a
                            grid of offered loads per (batch, device-mix) cell
  --wire                    [with --open-loop] run every cell both in-process
                            and over the TCP front-end on loopback, print the
                            latencies side by side and assert bit-identical
                            outputs
  --reactors N              [with --wire] shard the server front-end across N
                            epoll reactors (default 1; 0 = host parallelism)
  --connections N           [with --wire] fan-in mode: replace the open-loop
                            grid with a burst of pipelined traffic over N
                            concurrent connections, served once with a single
                            reactor and once with --reactors, asserting
                            bit-identical outputs vs in-process and reporting
                            the client-observed throughput ratio
  --cluster N               cluster mode: boot an N-node loopback cluster
                            (consistent-hash sharding, replication
                            min(N, 2)), serve a deterministic sweep through
                            the cluster-aware client, assert the outputs
                            bit-identical to a single-node server, then
                            kill one node and re-serve the sweep to measure
                            failover (no acknowledged request may be lost)
  --smoke                   CI-sized grid
  --submitters N            pin the open-loop submitter thread count
  --encode-cache-dir DIR    persist encoded weights across runs
  --bench-json PATH         write the sweep as machine-readable JSON
                            (schema dsstc.bench.serve/1, or
                            dsstc.bench.cluster/1 with --cluster; see
                            docs/OBSERVABILITY.md)
  --help                    this text

--wire, --submitters and --encode-cache-dir require --open-loop;
--reactors and --connections require --wire; --cluster is its own mode
and combines only with --bench-json.";

fn usage_error(message: &str) -> ! {
    eprintln!("serve_throughput: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Submitter threads for an offered load, when not pinned by
/// `--submitters`: one per 4k rps, capped at 8 — measured headroom for a
/// sleep+spin pacer to stay on its arrival clock.
fn auto_submitters(offered_rps: f64) -> usize {
    ((offered_rps / 4000.0).ceil() as usize).clamp(1, 8)
}

/// The deterministic open-loop request stream (shared by the in-process
/// and wire drivers so outputs can be compared bit for bit): `seed` fully
/// determines model, priority (1 in 4 high) and features.
fn request_for(seed: u64) -> InferRequest {
    let model = if seed.is_multiple_of(2) { ModelId::ResNet50 } else { ModelId::BertBase };
    let priority = if seed.is_multiple_of(4) { Priority::High } else { Priority::Normal };
    let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, seed);
    InferRequest::new(model, features).with_priority(priority)
}

/// The closed-loop stream: same models and features, but all-Normal
/// priority — the mix the closed-loop sweep has always measured, kept so
/// its numbers stay comparable across revisions.
fn closed_loop_request_for(seed: u64) -> InferRequest {
    InferRequest::new(
        if seed.is_multiple_of(2) { ModelId::ResNet50 } else { ModelId::BertBase },
        Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, seed),
    )
}

/// The per-submitter share of `requests`, spreading the remainder so the
/// total is exact.
fn share_of(t: usize, submitters: usize, requests: u64) -> u64 {
    requests / submitters as u64 + u64::from((t as u64) < requests % submitters as u64)
}

/// Globally unique request seed for submitter `t`'s `i`-th request.
fn seed_of(t: usize, i: u64) -> u64 {
    t as u64 * 1_000_003 + i
}

/// Drives one burst of mixed traffic and returns the cell's measurements.
fn run_cell(workers: usize, max_batch: usize) -> CellResult {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_queue_wait(Duration::from_millis(2))
            .with_proxy_dim(64),
    );
    // Warm both models so every cell measures steady-state serving: the
    // one-time encode and bucket-pricing costs are exactly what the
    // repository and timing caches amortise away in a long-running server.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let started = Instant::now();
    let pending: Vec<_> =
        (0..REQUESTS).map(|i| server.submit(closed_loop_request_for(i)).expect("queued")).collect();
    let mut e2e_us = Vec::with_capacity(pending.len());
    for p in pending {
        let response = p.wait().expect("response");
        push_trace_e2e(&mut e2e_us, &response);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    CellResult {
        achieved_rps: REQUESTS as f64 / elapsed,
        stats,
        outputs: HashMap::new(),
        e2e_us,
        wire_path: false,
    }
}

fn closed_loop(smoke: bool) -> Vec<BenchCell> {
    let (worker_grid, batch_grid): (&[usize], &[usize]) =
        if smoke { (&[2], &[1, 8]) } else { (&[1, 2, 4], &[1, 4, 8, 16]) };
    println!("dsstc-serve throughput sweep: {REQUESTS} mixed ResNet-50/BERT requests per cell\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "workers", "max_batch", "req/s", "mean batch", "queue p99 ms", "exec p99 ms"
    );
    let mut cells = Vec::new();
    for &workers in worker_grid {
        for &max_batch in batch_grid {
            let result = run_cell(workers, max_batch);
            println!(
                "{workers:>8} {max_batch:>10} {:>12.1} {:>12.2} {:>14.2} {:>14.2}",
                result.achieved_rps,
                result.stats.mean_batch_size,
                result.stats.queue_p99_us / 1e3,
                result.stats.execute_p99_us / 1e3,
            );
            cells.push(BenchCell {
                pool: "default".to_string(),
                max_batch,
                offered_rps: None,
                connections: None,
                reactors: None,
                result,
            });
        }
    }
    println!(
        "\n(modelled GPU latency per request is reported by the server itself; see\n examples/serve_demo.rs for the metrics surface)"
    );
    cells
}

/// The measurements one cell produces, for either submit path.
struct CellResult {
    achieved_rps: f64,
    stats: ServerStats,
    /// Request seed → output features, for the bit-identical check.
    outputs: HashMap<u64, Matrix>,
    /// Client-observed end-to-end latency samples, µs, tagged with each
    /// request's priority: the admitted→responded span of the response's
    /// [`dsstc_serve::RequestTrace`] for in-process cells, send-to-response
    /// wall time (framing and loopback included) for wire cells.
    e2e_us: Vec<(Priority, f64)>,
    /// Whether the samples came through the TCP front-end.
    wire_path: bool,
}

/// Folds one response's trace-derived end-to-end latency into `samples`.
fn push_trace_e2e(samples: &mut Vec<(Priority, f64)>, response: &dsstc_serve::InferResponse) {
    if let Some(us) = response.trace.span_us(Stage::Admitted, Stage::Responded) {
        let priority = response.trace.priority.unwrap_or(Priority::Normal);
        samples.push((priority, us as f64));
    }
}

/// One row of the machine-readable `--bench-json` output.
struct BenchCell {
    pool: String,
    max_batch: usize,
    /// `None` for closed-loop cells (the driver has no arrival clock).
    offered_rps: Option<f64>,
    /// Concurrent client connections driving the cell (`None` for
    /// in-process cells, which have no connections at all).
    connections: Option<usize>,
    /// Server-side reactor count (`None` for in-process cells).
    reactors: Option<usize>,
    result: CellResult,
}

fn cell_config(
    pool: DevicePool,
    max_batch: usize,
    encode_cache_dir: Option<&PathBuf>,
) -> ServeConfig {
    let mut config = ServeConfig::default()
        .with_devices(pool)
        .with_max_batch(max_batch)
        .with_max_queue_wait(Duration::from_millis(2))
        .with_proxy_dim(64);
    if let Some(dir) = encode_cache_dir {
        config = config.with_encode_cache_dir(dir.clone());
    }
    config
}

/// One open-loop cell through the in-process submit path: Poisson arrivals
/// at `offered_rps`, mixed-priority mixed-model traffic driven by
/// `submitters` threads (each pacing an independent sub-process with
/// sleep+spin).
fn run_open_loop_cell(
    pool: DevicePool,
    max_batch: usize,
    offered_rps: f64,
    requests: u64,
    submitters: usize,
    encode_cache_dir: Option<&PathBuf>,
) -> CellResult {
    let mut server = InferenceServer::start(cell_config(pool, max_batch, encode_cache_dir));
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let sub_processes = PoissonArrivals::new(offered_rps, ARRIVAL_SEED).split(submitters);
    let started = Instant::now();
    let server_ref = &server;
    // Each submitter drives its own sub-process; the superposition offers
    // the full load. Requests are waited on after every submitter finishes
    // (open loop: arrivals never wait for the server).
    let pending: Vec<(u64, dsstc_serve::server::PendingResponse)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sub_processes
            .into_iter()
            .enumerate()
            .map(|(t, mut arrivals)| {
                let share = share_of(t, submitters, requests);
                scope.spawn(move || {
                    let mut next_arrival = started;
                    (0..share)
                        .map(|i| {
                            next_arrival += arrivals.next_gap();
                            // Open loop: pace to the arrival instant even if
                            // the server is behind; never wait for the
                            // server itself.
                            pace_until(next_arrival);
                            let seed = seed_of(t, i);
                            (seed, server_ref.submit(request_for(seed)).expect("queued"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter thread")).collect()
    });
    let mut outputs = HashMap::with_capacity(pending.len());
    let mut e2e_us = Vec::with_capacity(pending.len());
    for (seed, p) in pending {
        let response = p.wait().expect("response");
        push_trace_e2e(&mut e2e_us, &response);
        outputs.insert(seed, response.output);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    CellResult { achieved_rps: requests as f64 / elapsed, stats, outputs, e2e_us, wire_path: false }
}

/// The same open-loop cell through the TCP front-end on loopback: one
/// pipelined `WireClient` connection per submitter, a concurrent reader
/// clone collecting responses (and their client-observed end-to-end
/// latency) as batches complete.
#[cfg(target_os = "linux")]
fn run_wire_cell(
    pool: DevicePool,
    max_batch: usize,
    offered_rps: f64,
    requests: u64,
    submitters: usize,
    reactors: usize,
    encode_cache_dir: Option<&PathBuf>,
) -> CellResult {
    let mut server =
        WireServer::start(cell_config(pool, max_batch, encode_cache_dir).with_reactors(reactors))
            .expect("bind loopback");
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.server().warm_model(model, None);
    }
    let addr = server.local_addr();
    let sub_processes = PoissonArrivals::new(offered_rps, ARRIVAL_SEED).split(submitters);
    let started = Instant::now();
    let collected: Vec<(u64, Matrix, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sub_processes
            .into_iter()
            .enumerate()
            .map(|(t, mut arrivals)| {
                let share = share_of(t, submitters, requests);
                scope.spawn(move || {
                    let mut sender = WireClient::connect(addr).expect("connect");
                    let mut receiver = sender.try_clone().expect("clone for reading");
                    let send_instants =
                        std::sync::Arc::new(std::sync::Mutex::new(
                            HashMap::<u64, (u64, Instant)>::new(),
                        ));
                    let reader_instants = std::sync::Arc::clone(&send_instants);
                    let reader = scope.spawn(move || {
                        let mut out = Vec::with_capacity(share as usize);
                        for _ in 0..share {
                            let response = receiver.recv().expect("wire response");
                            let arrived = Instant::now();
                            let id = response.id;
                            let body = response.into_body().expect("served");
                            let (seed, sent) = reader_instants
                                .lock()
                                .expect("send-instant map")
                                .remove(&id)
                                .expect("response matches a sent request");
                            out.push((
                                seed,
                                body.output,
                                arrived.duration_since(sent).as_secs_f64() * 1e6,
                            ));
                        }
                        out
                    });
                    let mut next_arrival = started;
                    for i in 0..share {
                        next_arrival += arrivals.next_gap();
                        pace_until(next_arrival);
                        let seed = seed_of(t, i);
                        let frame = RequestFrame::from_request(i, &request_for(seed));
                        // Record the instant before the bytes go out (the
                        // response can arrive concurrently, so the map entry
                        // must exist first; the sample then also includes
                        // serialisation time).
                        send_instants
                            .lock()
                            .expect("send-instant map")
                            .insert(i, (seed, Instant::now()));
                        sender.send_frame(&frame).expect("send");
                    }
                    reader.join().expect("reader thread")
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    let mut outputs = HashMap::with_capacity(collected.len());
    let mut e2e_us = Vec::with_capacity(collected.len());
    for (seed, output, sample_us) in collected {
        // Mirrors `request_for`: every fourth seed is high priority.
        let priority = if seed.is_multiple_of(4) { Priority::High } else { Priority::Normal };
        e2e_us.push((priority, sample_us));
        outputs.insert(seed, output);
    }
    CellResult { achieved_rps: requests as f64 / elapsed, stats, outputs, e2e_us, wire_path: true }
}

/// `--wire` is rejected in `main` off Linux (the epoll front-end is
/// Linux-only); this stub keeps the sweep compiling everywhere.
#[cfg(not(target_os = "linux"))]
fn run_wire_cell(
    _pool: DevicePool,
    _max_batch: usize,
    _offered_rps: f64,
    _requests: u64,
    _submitters: usize,
    _reactors: usize,
    _encode_cache_dir: Option<&PathBuf>,
) -> CellResult {
    unreachable!("--wire is rejected on non-Linux platforms")
}

/// The fan-in benchmark (`--connections N`): a burst of pipelined traffic
/// over N concurrent connections, driven by an epoll client fleet, served
/// once with a single reactor and once with `--reactors`. Outputs are
/// asserted bit-identical against the in-process path, and the
/// client-observed throughput ratio is the headline number.
#[cfg(target_os = "linux")]
mod fanin {
    use super::*;
    use dsstc_serve::net::poll::{Event, Poller, Token, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use dsstc_serve::net::{encode_request_into, Frame, FrameDecoder, WireStatus};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::sync::{Arc, Barrier};

    /// Pipelined requests each connection sends in its burst.
    pub const PER_CONN: u64 = 2;
    /// Distinct request payloads: connection `c`'s `i`-th request reuses
    /// seed `(c * PER_CONN + i) % SEED_UNIVERSE`, so the bit-identical
    /// check only needs this many in-process reference inferences no
    /// matter how many connections fan in.
    const SEED_UNIVERSE: u64 = 32;
    /// Client event-loop threads, each owning a disjoint slice of the
    /// connections. Fixed (not scaled with `--reactors`) so both server
    /// variants face the identical client fleet.
    const CLIENT_THREADS: usize = 8;
    const FANIN_PROXY_DIM: usize = 32;

    fn seed_for(conn: usize, i: u64) -> u64 {
        (conn as u64 * PER_CONN + i) % SEED_UNIVERSE
    }

    fn fanin_request(seed: u64) -> InferRequest {
        let model = if seed.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
        let features =
            Matrix::random_sparse(1, FANIN_PROXY_DIM, 0.4, SparsityPattern::Uniform, seed);
        InferRequest::new(model, features)
    }

    /// The cell is meant to be front-end bound: tiny proxy GEMMs, a large
    /// batch bound and several workers keep the backend out of the way so
    /// the measured throughput is the reactors' decode/submit/encode path.
    fn fanin_config(connections: usize, reactors: usize) -> ServeConfig {
        ServeConfig::default()
            .with_devices(DevicePool::homogeneous(GpuConfig::v100(), 4))
            .with_max_batch(64)
            .with_max_queue_wait(Duration::from_micros(500))
            .with_proxy_dim(FANIN_PROXY_DIM)
            .with_max_connections(connections + 16)
            .with_reactors(reactors)
    }

    /// Raises `RLIMIT_NOFILE` to its hard limit: a 10k-connection fan-in
    /// needs ~20k fds in this process (client and server share it).
    pub fn raise_nofile_limit(connections: usize) {
        #[repr(C)]
        struct RLimit {
            rlim_cur: u64,
            rlim_max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }
        const RLIMIT_NOFILE: i32 = 7;
        let needed = (connections as u64) * 2 + 256;
        unsafe {
            let mut lim = RLimit { rlim_cur: 0, rlim_max: 0 };
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return;
            }
            if lim.rlim_max < needed {
                // Privileged processes (CI containers run as root) may
                // raise the hard limit as well; harmless EPERM otherwise.
                let raised = RLimit { rlim_cur: needed, rlim_max: needed };
                let _ = setrlimit(RLIMIT_NOFILE, &raised);
                let _ = getrlimit(RLIMIT_NOFILE, &mut lim);
            }
            if lim.rlim_cur < needed && lim.rlim_cur < lim.rlim_max {
                lim.rlim_cur = needed.min(lim.rlim_max);
                let _ = setrlimit(RLIMIT_NOFILE, &lim);
                let _ = getrlimit(RLIMIT_NOFILE, &mut lim);
            }
            if lim.rlim_cur < needed {
                eprintln!(
                    "serve_throughput: warning: RLIMIT_NOFILE is {} but ~{needed} fds are \
                     needed for {connections} connections; expect connect failures",
                    lim.rlim_cur
                );
            }
        }
    }

    /// One client-side connection in the fleet.
    struct FanConn {
        stream: TcpStream,
        decoder: FrameDecoder,
        /// The whole pipelined burst, encoded up front (outside the clock).
        outbound: Vec<u8>,
        written: usize,
        /// Responses still expected on this connection.
        remaining: u64,
        /// `seeds[id]` is the seed request `id` carried.
        seeds: [u64; PER_CONN as usize],
        watching_out: bool,
    }

    /// Runs one fan-in cell and returns it with the client-observed
    /// throughput (every response received and verified bit-identical to
    /// `expected`).
    pub fn run_fanin_cell(
        connections: usize,
        reactors: usize,
        expected: &HashMap<u64, Matrix>,
    ) -> CellResult {
        let mut server =
            WireServer::start(fanin_config(connections, reactors)).expect("bind loopback");
        for model in [ModelId::RnnLm, ModelId::BertBase] {
            server.server().warm_model(model, None);
        }
        let addr = server.local_addr();
        let max_frame_len = ServeConfig::default().max_frame_len;
        // Encode each distinct (seed, id) frame once; connections reuse
        // the templates for their outbound bursts.
        let requests: Vec<InferRequest> = (0..SEED_UNIVERSE).map(fanin_request).collect();
        let threads = CLIENT_THREADS.min(connections.max(1));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let requests_total = (connections as u64) * PER_CONN;

        let (clock, responded) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let barrier = Arc::clone(&barrier);
                    let requests = &requests;
                    scope.spawn(move || {
                        // This thread's slice of the connection space.
                        let share: Vec<usize> =
                            (0..connections).filter(|c| c % threads == t).collect();
                        let poller = Poller::new().expect("client epoll");
                        let mut conns: Vec<FanConn> = share
                            .iter()
                            .map(|&c| {
                                // A connect failure (typically EMFILE when the
                                // fd limit could not be raised) must abort the
                                // process: panicking here would leave the main
                                // thread wedged on the start barrier.
                                let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
                                    eprintln!(
                                        "serve_throughput: fan-in connect failed \
                                         ({e}); is RLIMIT_NOFILE high enough?"
                                    );
                                    std::process::exit(1);
                                });
                                stream.set_nonblocking(true).expect("nonblocking");
                                let _ = stream.set_nodelay(true);
                                let mut outbound = Vec::new();
                                let mut seeds = [0u64; PER_CONN as usize];
                                for i in 0..PER_CONN {
                                    let seed = seed_for(c, i);
                                    seeds[i as usize] = seed;
                                    encode_request_into(&mut outbound, i, &requests[seed as usize]);
                                }
                                FanConn {
                                    stream,
                                    decoder: FrameDecoder::new(max_frame_len),
                                    outbound,
                                    written: 0,
                                    remaining: PER_CONN,
                                    seeds,
                                    watching_out: false,
                                }
                            })
                            .collect();
                        // Everyone connected and encoded: start the clock.
                        barrier.wait();
                        for (index, conn) in conns.iter_mut().enumerate() {
                            flush(conn);
                            let interest = if conn.written < conn.outbound.len() {
                                conn.watching_out = true;
                                EPOLLIN | EPOLLOUT | EPOLLRDHUP
                            } else {
                                EPOLLIN | EPOLLRDHUP
                            };
                            poller
                                .register(conn.stream.as_raw_fd(), interest, Token(index as u64))
                                .expect("register fan-in conn");
                        }
                        let mut scratch = vec![0u8; 64 * 1024];
                        let mut events: Vec<Event> = Vec::new();
                        let mut open = conns.len() as u64;
                        let mut responded = 0u64;
                        while open > 0 {
                            events.clear();
                            poller.wait(&mut events, None).expect("client epoll wait");
                            for event in &events {
                                let Token(index) = event.token;
                                let conn = &mut conns[index as usize];
                                if conn.remaining == 0 {
                                    continue;
                                }
                                if event.writable() && conn.written < conn.outbound.len() {
                                    flush(conn);
                                }
                                if conn.watching_out && conn.written == conn.outbound.len() {
                                    conn.watching_out = false;
                                    let _ = poller.reregister(
                                        conn.stream.as_raw_fd(),
                                        EPOLLIN | EPOLLRDHUP,
                                        event.token,
                                    );
                                }
                                if event.readable() {
                                    responded += read_responses(conn, &mut scratch, expected);
                                    if conn.remaining == 0 {
                                        let _ = poller.deregister(conn.stream.as_raw_fd());
                                        open -= 1;
                                    }
                                }
                            }
                        }
                        responded
                    })
                })
                .collect();
            barrier.wait();
            let clock = Instant::now();
            let responded: u64 =
                handles.into_iter().map(|h| h.join().expect("client thread")).sum();
            (clock.elapsed(), responded)
        });
        assert_eq!(responded, requests_total, "every fan-in request must be answered");
        let stats = server.stats();
        server.shutdown();
        CellResult {
            achieved_rps: requests_total as f64 / clock.as_secs_f64(),
            stats,
            outputs: HashMap::new(),
            e2e_us: Vec::new(),
            wire_path: true,
        }
    }

    fn flush(conn: &mut FanConn) {
        while conn.written < conn.outbound.len() {
            match conn.stream.write(&conn.outbound[conn.written..]) {
                Ok(0) => panic!("fan-in connection died mid-send"),
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("fan-in send failed: {e}"),
            }
        }
    }

    /// Reads everything the socket has, verifying each decoded response
    /// against the in-process reference on the spot. Returns how many
    /// responses arrived.
    fn read_responses(
        conn: &mut FanConn,
        scratch: &mut [u8],
        expected: &HashMap<u64, Matrix>,
    ) -> u64 {
        let mut responded = 0;
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => panic!("server closed a fan-in connection early"),
                Ok(n) => {
                    conn.decoder.feed(&scratch[..n]);
                    while let Some(frame) =
                        conn.decoder.next_frame().expect("well-formed response stream")
                    {
                        let Frame::Response(response) = frame else {
                            panic!("server sent a request frame");
                        };
                        assert_eq!(response.status, WireStatus::Ok, "{}", response.message);
                        let seed = conn.seeds[response.id as usize];
                        let body = response.into_body().expect("ok body");
                        assert_eq!(
                            &body.output,
                            expected.get(&seed).expect("reference output"),
                            "fan-in output differs from in-process for seed {seed}"
                        );
                        conn.remaining -= 1;
                        responded += 1;
                    }
                    if conn.remaining == 0 {
                        return responded;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return responded,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("fan-in read failed: {e}"),
            }
        }
    }

    /// The in-process reference outputs for the whole seed universe (the
    /// deterministic request → output mapping is what the fan-in cells are
    /// checked against).
    pub fn reference_outputs(connections: usize, reactors: usize) -> HashMap<u64, Matrix> {
        let mut server = InferenceServer::start(fanin_config(connections, reactors));
        for model in [ModelId::RnnLm, ModelId::BertBase] {
            server.warm_model(model, None);
        }
        let outputs = (0..SEED_UNIVERSE)
            .map(|seed| (seed, server.infer(fanin_request(seed)).expect("reference").output))
            .collect();
        server.shutdown();
        outputs
    }
}

/// The `--connections N` sweep: single-reactor baseline vs `--reactors`,
/// same connection count, same client fleet.
#[cfg(target_os = "linux")]
fn fan_in(connections: usize, reactors: usize) -> (u64, Vec<BenchCell>) {
    fanin::raise_nofile_limit(connections);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < reactors {
        eprintln!(
            "serve_throughput: note: {reactors} reactors on a {cores}-core host — the \
             reactor threads time-share, so expect flat (not multiplied) throughput; \
             the sharding speed-up needs at least {reactors} cores"
        );
    }
    let expected = fanin::reference_outputs(connections, reactors);
    let requests_total = connections as u64 * fanin::PER_CONN;
    println!(
        "dsstc-serve fan-in bench: {connections} pipelined connections x {} requests each, \
         outputs checked bit-for-bit against the in-process path\n",
        fanin::PER_CONN
    );
    println!("{:>10} {:>13} {:>14} {:>14}", "reactors", "connections", "client req/s", "elapsed s");
    let mut variants = vec![1usize];
    if reactors != 1 {
        variants.push(reactors);
    }
    let mut cells = Vec::new();
    let mut rates = Vec::new();
    for &r in &variants {
        let result = fanin::run_fanin_cell(connections, r, &expected);
        println!(
            "{r:>10} {connections:>13} {:>14.1} {:>14.2}",
            result.achieved_rps,
            requests_total as f64 / result.achieved_rps,
        );
        rates.push(result.achieved_rps);
        cells.push(BenchCell {
            pool: "4x V100".to_string(),
            max_batch: 64,
            offered_rps: None,
            connections: Some(connections),
            reactors: Some(r),
            result,
        });
    }
    if let [baseline, sharded] = rates[..] {
        println!(
            "\nclient-observed speed-up at {connections} connections: {:.2}x \
             ({reactors} reactors vs 1)",
            sharded / baseline
        );
    }
    (requests_total, cells)
}

#[cfg(not(target_os = "linux"))]
fn fan_in(_connections: usize, _reactors: usize) -> (u64, Vec<BenchCell>) {
    unreachable!("--connections requires --wire, which is rejected off Linux")
}

/// The `--cluster N` benchmark: an N-node loopback cluster with
/// consistent-hash sharding, served through the cluster-aware client and
/// checked bit-for-bit against a single-node reference, then re-served
/// after killing one node to measure failover.
#[cfg(target_os = "linux")]
mod cluster {
    use super::*;
    use dsstc_serve::net::{ClusterClient, WireServer};
    use dsstc_serve::ClusterConfig;
    use std::net::{SocketAddr, TcpListener};

    /// Requests per phase. Model and weight sparsity both vary with the
    /// seed, so the sweep spreads over 12 distinct shard keys (and
    /// therefore over the whole ring) instead of a couple of shards.
    pub const SWEEP: u64 = 48;
    const CLUSTER_PROXY_DIM: usize = 32;
    /// Fixed ring seed: placement — and the redirect/failover counts the
    /// bench reports — is reproducible run to run.
    const RING_SEED: u64 = 0x5EED;

    /// One measured phase of the cluster bench (`dsstc.bench.cluster/1`).
    pub struct ClusterCell {
        pub phase: &'static str,
        pub nodes: usize,
        pub replication: usize,
        pub requests: u64,
        pub completed: u64,
        /// `NotMine` redirects answered by the servers during the phase.
        pub redirects: u64,
        /// Dead-replica failovers the client performed during the phase.
        pub failovers: u64,
        pub redirect_rate: f64,
        pub bit_identical: bool,
    }

    fn cluster_request(seed: u64) -> InferRequest {
        let model = if seed.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
        let features =
            Matrix::random_sparse(1, CLUSTER_PROXY_DIM, 0.4, SparsityPattern::Uniform, seed);
        InferRequest::new(model, features).with_weight_sparsity(0.50 + (seed % 12) as f64 * 0.04)
    }

    /// Reserves `n` distinct loopback ports by binding them all at once,
    /// then releasing: nodes need each other's addresses before binding.
    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
        listeners.iter().map(|l| l.local_addr().expect("bound addr")).collect()
    }

    fn node_config() -> ServeConfig {
        ServeConfig::default()
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(CLUSTER_PROXY_DIM)
            .with_reactors(1)
    }

    /// The single-node reference outputs the cluster must reproduce bit
    /// for bit (encoding and inference are deterministic).
    fn reference_outputs() -> HashMap<u64, Matrix> {
        let mut server = InferenceServer::start(node_config());
        let outputs = (0..SWEEP)
            .map(|seed| (seed, server.infer(cluster_request(seed)).expect("reference").output))
            .collect();
        server.shutdown();
        outputs
    }

    /// Serves the whole sweep through `client`, returning how many outputs
    /// matched the reference exactly.
    fn serve_sweep(client: &mut ClusterClient, expected: &HashMap<u64, Matrix>) -> u64 {
        (0..SWEEP)
            .filter(|&seed| {
                let body = client.infer(&cluster_request(seed)).expect("cluster serves");
                &body.output == expected.get(&seed).expect("reference output")
            })
            .count() as u64
    }

    /// Sums a per-node cluster counter over the servers still running.
    fn sum_counter(servers: &[WireServer], f: impl Fn(&dsstc_serve::ClusterStats) -> u64) -> u64 {
        servers.iter().map(|s| f(&s.stats().cluster.expect("cluster stats"))).sum()
    }

    pub fn run(nodes: usize) -> (u64, Vec<ClusterCell>) {
        let replication = nodes.min(2);
        let expected = reference_outputs();
        let addrs = free_addrs(nodes);
        let mut servers: Vec<WireServer> = (0..nodes)
            .map(|i| {
                let peers: Vec<(u16, String)> = (0..nodes)
                    .filter(|&j| j != i)
                    .map(|j| (j as u16, addrs[j].to_string()))
                    .collect();
                let cluster = ClusterConfig::new(i as u16, addrs[i].to_string(), peers)
                    .with_replication(replication)
                    .with_seed(RING_SEED)
                    .with_ping(Duration::from_millis(100), 2);
                WireServer::start(node_config().with_listen(addrs[i]).with_cluster(cluster))
                    .expect("bind cluster node")
            })
            .collect();
        let mut client = ClusterClient::connect(&addrs).expect("cluster hello");
        println!(
            "dsstc-serve cluster bench: {nodes} loopback node(s), replication {replication}, \
             {SWEEP} requests per phase, outputs checked bit-for-bit against a single node\n"
        );
        println!(
            "{:>10} {:>8} {:>13} {:>11} {:>11} {:>11} {:>14} {:>10}",
            "phase",
            "nodes",
            "replication",
            "requests",
            "redirects",
            "failovers",
            "redirect rate",
            "outputs"
        );
        let mut cells = Vec::new();
        let mut report = |phase: &'static str,
                          servers: &[WireServer],
                          client: &ClusterClient,
                          identical: u64,
                          redirects_before: u64,
                          failovers_before: u64| {
            let redirects = sum_counter(servers, |c| c.redirects) - redirects_before;
            let failovers = client.failovers() - failovers_before;
            let cell = ClusterCell {
                phase,
                nodes: servers.len(),
                replication,
                requests: SWEEP,
                completed: identical,
                redirects,
                failovers,
                redirect_rate: redirects as f64 / SWEEP as f64,
                bit_identical: identical == SWEEP,
            };
            println!(
                "{phase:>10} {:>8} {replication:>13} {SWEEP:>11} {redirects:>11} {failovers:>11} \
                 {:>14.3} {:>10}",
                cell.nodes,
                cell.redirect_rate,
                if cell.bit_identical { "identical" } else { "DIFFER" },
            );
            assert!(cell.bit_identical, "{phase}: {identical}/{SWEEP} outputs matched");
            cells.push(cell);
        };

        // Steady state: every node up, client and servers share a map.
        let identical = serve_sweep(&mut client, &expected);
        report("steady", &servers, &client, identical, 0, 0);

        if nodes >= 2 {
            // Kill the last node and re-serve the identical sweep: the
            // requests it acknowledged must be reproduced bit-identically
            // by the survivors (deterministic inference makes the client's
            // failover resends idempotent).
            let redirects_before = sum_counter(&servers[..nodes - 1], |c| c.redirects);
            let failovers_before = client.failovers();
            servers.pop().expect("last node").shutdown();
            let identical = serve_sweep(&mut client, &expected);
            report("failover", &servers, &client, identical, redirects_before, failovers_before);
            assert!(
                client.failovers() > 0 || client.redirects_followed() > 0,
                "killing a node must exercise failover or redirects"
            );
        }

        // The per-node serving split plus each node's cluster counters —
        // the same numbers the /metrics endpoint exports per node.
        println!("\nper-node split (survivors):");
        for server in &servers {
            let stats = server.stats();
            let c = stats.cluster.expect("cluster stats");
            println!(
                "  node {}: {} served, map v{}, {}/{} peers alive, {} redirects, \
                 {} failover serves, {} hellos",
                c.node_id,
                stats.completed_requests,
                c.shard_map_version,
                c.peers_alive,
                c.peers_total,
                c.redirects,
                c.failover_serves,
                c.hellos,
            );
        }
        for server in &mut servers {
            server.shutdown();
        }
        (SWEEP, cells)
    }
}

#[cfg(not(target_os = "linux"))]
mod cluster {
    //! `--cluster` is rejected in `main` off Linux; this stub keeps the
    //! sweep compiling everywhere.
    pub struct ClusterCell {
        pub phase: &'static str,
        pub nodes: usize,
        pub replication: usize,
        pub requests: u64,
        pub completed: u64,
        pub redirects: u64,
        pub failovers: u64,
        pub redirect_rate: f64,
        pub bit_identical: bool,
    }

    pub fn run(_nodes: usize) -> (u64, Vec<ClusterCell>) {
        unreachable!("--cluster needs the epoll front-end, which is Linux-only")
    }
}

/// Writes the cluster bench as `dsstc.bench.cluster/1` JSON (schema
/// documented in `docs/CLUSTER.md`; validated by `ci/validate_bench.py`).
fn write_cluster_json(path: &PathBuf, requests_per_cell: u64, cells: &[cluster::ClusterCell]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dsstc.bench.cluster/1\",\n");
    out.push_str(&format!("  \"requests_per_cell\": {requests_per_cell},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"phase\": {}, \"nodes\": {}, \"replication\": {}, \"requests\": {}, \
             \"completed\": {}, \"redirects\": {}, \"failovers\": {}, \"redirect_rate\": {}, \
             \"bit_identical\": {}}}{comma}\n",
            json_str(cell.phase),
            cell.nodes,
            cell.replication,
            cell.requests,
            cell.completed,
            cell.redirects,
            cell.failovers,
            json_f64(cell.redirect_rate),
            cell.bit_identical,
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("serve_throughput: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {} ({} cells)", path.display(), cells.len());
}

/// Asserts the wire path reproduced the in-process outputs bit for bit.
fn assert_bit_identical(in_process: &CellResult, wire: &CellResult) {
    assert_eq!(
        in_process.outputs.len(),
        wire.outputs.len(),
        "both paths must answer every request"
    );
    for (seed, expected) in &in_process.outputs {
        let actual = wire.outputs.get(seed).expect("wire answered this seed");
        assert_eq!(actual, expected, "wire output differs from in-process for seed {seed}");
    }
}

fn open_loop(
    smoke: bool,
    submitters: Option<usize>,
    encode_cache_dir: Option<&PathBuf>,
    wire: bool,
    reactors: usize,
) -> (u64, Vec<BenchCell>) {
    let (loads, requests): (&[f64], u64) =
        if smoke { (&[200.0, 800.0], 32) } else { (&[100.0, 200.0, 400.0, 800.0, 1600.0], 96) };
    let mut cells = Vec::new();
    type PoolMaker = fn() -> DevicePool;
    let pools: &[(&str, PoolMaker)] = &[
        ("2x V100", || DevicePool::homogeneous(GpuConfig::v100(), 2)),
        ("V100+A100", || DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()])),
    ];
    println!(
        "dsstc-serve open-loop sweep{}: seeded Poisson arrivals, {requests} mixed \
         ResNet-50/BERT requests per cell (1 in 4 high priority)\n",
        if wire { " (in-process vs wire)" } else { "" }
    );
    if wire {
        println!(
            "{:>10} {:>10} {:>12} {:>11} {:>12} {:>14} {:>12} {:>14} {:>14} {:>10}",
            "pool",
            "max_batch",
            "offered r/s",
            "submitters",
            "inproc r/s",
            "inproc p99 ms",
            "wire r/s",
            "wire p50 ms",
            "wire p99 ms",
            "outputs"
        );
    } else {
        println!(
            "{:>10} {:>10} {:>12} {:>11} {:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
            "pool",
            "max_batch",
            "offered r/s",
            "submitters",
            "achieved",
            "queue p50 ms",
            "queue p99 ms",
            "hi-pri p99 ms",
            "mean batch",
            "model ms"
        );
    }
    for (name, make_pool) in pools {
        for &max_batch in &[4usize, 8] {
            for &load in loads {
                let threads = submitters.unwrap_or_else(|| auto_submitters(load));
                let in_process = run_open_loop_cell(
                    make_pool(),
                    max_batch,
                    load,
                    requests,
                    threads,
                    encode_cache_dir,
                );
                if wire {
                    let over_wire = run_wire_cell(
                        make_pool(),
                        max_batch,
                        load,
                        requests,
                        threads,
                        reactors,
                        encode_cache_dir,
                    );
                    assert_bit_identical(&in_process, &over_wire);
                    let e2e: Vec<f64> = over_wire.e2e_us.iter().map(|&(_, us)| us).collect();
                    println!(
                        "{name:>10} {max_batch:>10} {load:>12.0} {threads:>11} {:>12.1} {:>14.2} {:>12.1} {:>14.2} {:>14.2} {:>10}",
                        in_process.achieved_rps,
                        in_process.stats.queue_p99_us / 1e3,
                        over_wire.achieved_rps,
                        percentile(&e2e, 0.50) / 1e3,
                        percentile(&e2e, 0.99) / 1e3,
                        "identical",
                    );
                    cells.push(BenchCell {
                        pool: name.to_string(),
                        max_batch,
                        offered_rps: Some(load),
                        // One pipelined connection per submitter thread.
                        connections: Some(threads),
                        reactors: Some(reactors),
                        result: over_wire,
                    });
                } else {
                    let stats = &in_process.stats;
                    println!(
                        "{name:>10} {max_batch:>10} {load:>12.0} {threads:>11} {:>12.1} {:>14.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
                        in_process.achieved_rps,
                        stats.queue_p50_us / 1e3,
                        stats.queue_p99_us / 1e3,
                        stats.for_priority(Priority::High).queue_p99_us / 1e3,
                        stats.mean_batch_size,
                        stats.modelled_makespan_us / 1e3,
                    );
                }
                cells.push(BenchCell {
                    pool: name.to_string(),
                    max_batch,
                    offered_rps: Some(load),
                    connections: None,
                    reactors: None,
                    result: in_process,
                });
            }
            println!();
        }
    }
    if wire {
        println!(
            "(every cell ran the same seeded trace twice: in-process submit and pipelined wire\n \
             connections over loopback. The \"outputs\" column asserts the two paths produced\n \
             bit-identical features for every request; wire p50/p99 are client-observed\n \
             end-to-end latencies including framing and loopback transport)"
        );
    } else {
        println!(
            "(wall-clock queue latency grows with offered load as the open-loop arrivals outpace\n \
             the host-bound proxy execution, which runs at the same real speed on every modelled\n \
             device; the modelled-makespan column is where the device pool shows — completion-time\n \
             dispatch shifts batches toward the A100, so the mixed pool finishes the same trace in\n \
             less modelled time than 2x V100)"
        );
    }
    (requests, cells)
}

/// A finite float for JSON (`NaN`/`inf` have no JSON encoding → `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for the names this sweep emits.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The p-th percentile of the samples matching `priority` (`null` if none).
fn e2e_quantile_json(samples: &[(Priority, f64)], priority: Option<Priority>, p: f64) -> String {
    let matching: Vec<f64> = samples
        .iter()
        .filter(|(sample_priority, _)| priority.is_none_or(|want| *sample_priority == want))
        .map(|&(_, us)| us)
        .collect();
    if matching.is_empty() {
        "null".to_string()
    } else {
        json_f64(percentile(&matching, p))
    }
}

/// Serialises one sweep cell as a `dsstc.bench.serve/1` JSON object.
fn bench_cell_json(cell: &BenchCell) -> String {
    let stats = &cell.result.stats;
    let per_priority: Vec<String> = Priority::ALL
        .iter()
        .map(|&priority| {
            let latency = stats.for_priority(priority);
            format!(
                "{{\"priority\": {}, \"completed\": {}, \"shed\": {}, \"queue_p50_us\": {}, \
                 \"queue_p99_us\": {}, \"e2e_p50_us\": {}, \"e2e_p99_us\": {}}}",
                json_str(&priority.to_string()),
                latency.completed,
                latency.shed,
                json_f64(latency.queue_p50_us),
                json_f64(latency.queue_p99_us),
                e2e_quantile_json(&cell.result.e2e_us, Some(priority), 0.50),
                e2e_quantile_json(&cell.result.e2e_us, Some(priority), 0.99),
            )
        })
        .collect();
    let per_device: Vec<String> = stats
        .per_device
        .iter()
        .map(|d| {
            format!(
                "{{\"device\": {}, \"batches\": {}, \"modelled_busy_us\": {}, \
                 \"utilisation\": {}}}",
                json_str(&d.name),
                d.batches,
                json_f64(d.modelled_busy_us),
                json_f64(d.utilisation),
            )
        })
        .collect();
    let wire = match &stats.wire {
        Some(w) => format!(
            "{{\"connections_accepted\": {}, \"frames_received\": {}, \"frames_sent\": {}, \
             \"error_frames_sent\": {}, \"shed\": {}, \"bytes_received\": {}, \"bytes_sent\": {}}}",
            w.connections_accepted,
            w.frames_received,
            w.frames_sent,
            w.error_frames_sent,
            w.shed_total(),
            w.bytes_received,
            w.bytes_sent,
        ),
        None => "null".to_string(),
    };
    // A cell that completed nothing has no meaningful rate: its elapsed
    // division is 0/0 or inf, which `json_f64` would fold to `null` and a
    // consumer would trip over where the schema promises a number. Pin it
    // to an explicit 0 and let the `completed` field (and the CI schema
    // check) flag the cell as broken.
    let achieved_rps = if stats.completed_requests == 0 { 0.0 } else { cell.result.achieved_rps };
    format!(
        "{{\"pool\": {}, \"workers\": {}, \"max_batch\": {}, \"path\": {}, \
         \"connections\": {}, \"reactors\": {}, \"completed\": {}, \"shed\": {}, \
         \"offered_rps\": {}, \"achieved_rps\": {}, \"queue_p50_us\": {}, \"queue_p99_us\": {}, \
         \"execute_p50_us\": {}, \"execute_p99_us\": {}, \"e2e_p50_us\": {}, \"e2e_p99_us\": {}, \
         \"mean_batch_size\": {}, \"cache_hit_rate\": {}, \"warm_restored\": {}, \
         \"store_entries\": {}, \"store_bytes\": {}, \"per_priority\": [{}], \
         \"per_device\": [{}], \"wire\": {}}}",
        json_str(&cell.pool),
        stats.per_device.len(),
        cell.max_batch,
        json_str(if cell.result.wire_path { "wire" } else { "in_process" }),
        cell.connections.map_or("null".to_string(), |n| n.to_string()),
        cell.reactors.map_or("null".to_string(), |n| n.to_string()),
        stats.completed_requests,
        stats.total_shed(),
        cell.offered_rps.map_or("null".to_string(), json_f64),
        json_f64(achieved_rps),
        json_f64(stats.queue_p50_us),
        json_f64(stats.queue_p99_us),
        json_f64(stats.execute_p50_us),
        json_f64(stats.execute_p99_us),
        e2e_quantile_json(&cell.result.e2e_us, None, 0.50),
        e2e_quantile_json(&cell.result.e2e_us, None, 0.99),
        json_f64(stats.mean_batch_size),
        json_f64(stats.encode_hit_rate),
        stats.encode_warm_restored,
        stats.store_entries,
        stats.store_bytes,
        per_priority.join(", "),
        per_device.join(", "),
        wire,
    )
}

/// Writes the whole sweep as `dsstc.bench.serve/1` JSON (the schema is
/// documented in `docs/OBSERVABILITY.md`).
fn write_bench_json(path: &PathBuf, mode: &str, requests_per_cell: u64, cells: &[BenchCell]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dsstc.bench.serve/1\",\n");
    out.push_str(&format!("  \"mode\": {},\n", json_str(mode)));
    out.push_str(&format!("  \"requests_per_cell\": {requests_per_cell},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", bench_cell_json(cell)));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("serve_throughput: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {} ({} cells)", path.display(), cells.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut open = false;
    let mut smoke = false;
    let mut wire = false;
    let mut reactors: Option<usize> = None;
    let mut connections: Option<usize> = None;
    let mut cluster_nodes: Option<usize> = None;
    let mut submitters: Option<usize> = None;
    let mut encode_cache_dir: Option<PathBuf> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--open-loop" => open = true,
            "--smoke" => smoke = true,
            "--wire" => {
                if !cfg!(target_os = "linux") {
                    usage_error("--wire needs the epoll front-end, which is Linux-only");
                }
                wire = true;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--reactors" => {
                // 0 is meaningful (host parallelism), so only reject
                // a missing or non-numeric value.
                reactors = iter.next().and_then(|v| v.parse().ok());
                if reactors.is_none() {
                    usage_error("--reactors needs a non-negative integer");
                }
            }
            "--connections" => {
                connections = iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0);
                if connections.is_none() {
                    usage_error("--connections needs a positive integer");
                }
            }
            "--cluster" => {
                if !cfg!(target_os = "linux") {
                    usage_error("--cluster needs the epoll front-end, which is Linux-only");
                }
                cluster_nodes = iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0);
                if cluster_nodes.is_none() {
                    usage_error("--cluster needs a positive node count");
                }
            }
            "--submitters" => {
                submitters = iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0);
                if submitters.is_none() {
                    usage_error("--submitters needs a positive integer");
                }
            }
            "--encode-cache-dir" => {
                // A following flag is a missing value, not a directory.
                encode_cache_dir = iter.next().filter(|v| !v.starts_with("--")).map(PathBuf::from);
                if encode_cache_dir.is_none() {
                    usage_error("--encode-cache-dir needs a directory path");
                }
            }
            "--bench-json" => {
                bench_json = iter.next().filter(|v| !v.starts_with("--")).map(PathBuf::from);
                if bench_json.is_none() {
                    usage_error("--bench-json needs a file path");
                }
            }
            unknown => {
                usage_error(&format!("unknown flag {unknown}"));
            }
        }
    }
    if let Some(nodes) = cluster_nodes {
        // Cluster mode replaces the sweeps entirely.
        if open || wire || smoke || reactors.is_some() || connections.is_some() {
            usage_error("--cluster is its own mode and combines only with --bench-json");
        }
        let (requests, cells) = cluster::run(nodes);
        if let Some(path) = &bench_json {
            write_cluster_json(path, requests, &cells);
        }
        return;
    }
    if !open {
        // Fail loudly rather than silently ignoring flags only the
        // open-loop driver consumes.
        if submitters.is_some() || encode_cache_dir.is_some() || wire {
            usage_error("--wire, --submitters and --encode-cache-dir require --open-loop");
        }
        let cells = closed_loop(smoke);
        if let Some(path) = &bench_json {
            write_bench_json(path, "closed_loop", REQUESTS, &cells);
        }
        return;
    }
    if !wire && (reactors.is_some() || connections.is_some()) {
        usage_error("--reactors and --connections require --wire");
    }
    if let Some(connections) = connections {
        // Fan-in mode replaces the open-loop grid: one burst over N
        // concurrent connections, single-reactor baseline vs --reactors.
        let (requests, cells) = fan_in(connections, reactors.unwrap_or(1));
        if let Some(path) = &bench_json {
            write_bench_json(path, "wire_fanin", requests, &cells);
        }
        return;
    }
    let (requests, cells) =
        open_loop(smoke, submitters, encode_cache_dir.as_ref(), wire, reactors.unwrap_or(1));
    if let Some(path) = &bench_json {
        let mode = if wire { "open_loop_wire" } else { "open_loop" };
        write_bench_json(path, mode, requests, &cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sweep cell that completed zero requests (a stalled or crashed
    /// server) must still serialise schema-valid JSON: `achieved_rps`
    /// pinned to a real 0 (never the `null` that NaN/inf would fold to),
    /// sample-less percentiles as explicit `null`, and a `completed: 0`
    /// field for the CI schema check to reject.
    #[test]
    fn zero_request_cells_serialise_finite_json() {
        let mut server = InferenceServer::start(
            ServeConfig::default().with_workers(1).with_max_batch(1).with_proxy_dim(32),
        );
        let stats = server.stats();
        server.shutdown();
        assert_eq!(stats.completed_requests, 0);
        let cell = BenchCell {
            pool: "empty".to_string(),
            max_batch: 1,
            offered_rps: Some(100.0),
            connections: None,
            reactors: None,
            result: CellResult {
                // What an instant 0-request burst divides out to.
                achieved_rps: f64::NAN,
                stats,
                outputs: HashMap::new(),
                e2e_us: Vec::new(),
                wire_path: false,
            },
        };
        let json = bench_cell_json(&cell);
        assert!(json.contains("\"completed\": 0"), "{json}");
        assert!(json.contains("\"achieved_rps\": 0.000"), "{json}");
        assert!(json.contains("\"e2e_p50_us\": null"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // The lifecycle counters are additive schema fields: present (and
        // zero) even on a cell that never shed or touched a store.
        assert!(json.contains("\"shed\": 0"), "{json}");
        assert!(json.contains("\"warm_restored\": 0"), "{json}");
        assert!(json.contains("\"store_entries\": 0"), "{json}");
        assert!(json.contains("\"store_bytes\": 0"), "{json}");
    }

    /// The happy path keeps its measured rate and gains the completed
    /// count.
    #[test]
    fn completed_cells_keep_their_measured_rate() {
        let cell_json = {
            let result = run_cell(1, 2);
            assert!(result.achieved_rps > 0.0);
            bench_cell_json(&BenchCell {
                pool: "default".to_string(),
                max_batch: 2,
                offered_rps: None,
                connections: None,
                reactors: None,
                result,
            })
        };
        assert!(cell_json.contains(&format!("\"completed\": {REQUESTS}")), "{cell_json}");
        assert!(!cell_json.contains("\"achieved_rps\": null"), "{cell_json}");
        assert!(!cell_json.contains("\"achieved_rps\": 0.000"), "{cell_json}");
    }
}
