//! End-to-end network inference estimation (paper Fig. 22).
//!
//! For every layer of a network the estimator models the execution time
//! under each applicable scheme: the five convolution schemes for CNN
//! layers, or the three GEMM schemes for the NLP models (BERT, RNN). Times
//! are normalised exactly the way the paper plots them — to *Dense Implicit*
//! for CNNs and to *Dense GEMM* for the NLP models — and a loose theoretical
//! upper bound (`1 / ((1-w)(1-a))`) is reported for reference.

use dsstc_kernels::bitmap_spgemm::{BitmapSpGemm, SyntheticGemmSpec};
use dsstc_kernels::conv::{ConvKernel, ConvScheme, ConvWorkload};
use dsstc_kernels::dense_gemm::DenseGemm;
use dsstc_kernels::vector_sparse::VectorSparseGemm;
use dsstc_models::{Layer, LayerKind, Network};
use dsstc_sim::{GpuConfig, GpuTimingModel};
use dsstc_tensor::GemmShape;

/// The three schemes compared on GEMM-only (NLP) layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmScheme {
    /// Dense GEMM on CUTLASS.
    Dense,
    /// Single-side Sparse Tensor Core \[72\].
    SingleSparse,
    /// This paper's dual-side SpGEMM.
    DualSparse,
}

impl std::fmt::Display for GemmScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GemmScheme::Dense => "Dense GEMM",
            GemmScheme::SingleSparse => "Single Sparse GEMM",
            GemmScheme::DualSparse => "Dual Sparse GEMM",
        };
        f.write_str(s)
    }
}

/// One scheme's modelled time and speedup for one layer.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeTime {
    /// Scheme name as plotted in Fig. 22.
    pub scheme: String,
    /// Modelled time in µs.
    pub time_us: f64,
    /// Speedup relative to the layer's normalisation baseline.
    pub speedup: f64,
}

/// All scheme results for one layer.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerEstimate {
    /// Layer name.
    pub name: String,
    /// Whether the layer is a convolution (five schemes) or GEMM (three).
    pub is_conv: bool,
    /// Per-scheme results, in the paper's plotting order.
    pub schemes: Vec<SchemeTime>,
    /// Loose theoretical speedup bound from the sparsity ratios alone.
    pub theoretical_speedup: f64,
}

impl LayerEstimate {
    /// The result for one scheme by name.
    pub fn scheme(&self, name: &str) -> Option<&SchemeTime> {
        self.schemes.iter().find(|s| s.scheme == name)
    }

    /// The dual-side scheme's speedup (the paper's headline per-layer bar).
    pub fn dual_side_speedup(&self) -> f64 {
        self.schemes.last().map_or(0.0, |s| s.speedup)
    }
}

/// A whole network's Fig. 22-style report.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Per-layer estimates.
    pub layers: Vec<LayerEstimate>,
    /// Whole-network speedup of the dual-side scheme over the baseline
    /// (total baseline time / total dual-side time).
    pub full_model_dual_speedup: f64,
    /// Whole-network speedup of the single-side sparse scheme.
    pub full_model_single_speedup: f64,
}

impl NetworkReport {
    /// Renders the report as a text table (one row per layer).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.network));
        if let Some(first) = self.layers.first() {
            out.push_str(&format!("{:<14}", "layer"));
            for s in &first.schemes {
                out.push_str(&format!("{:>24}", s.scheme));
            }
            out.push_str(&format!("{:>14}\n", "theoretical"));
        }
        for layer in &self.layers {
            out.push_str(&format!("{:<14}", layer.name));
            for s in &layer.schemes {
                out.push_str(&format!("{:>17.1}us {:>4.2}x", s.time_us, s.speedup));
            }
            out.push_str(&format!("{:>13.1}x\n", layer.theoretical_speedup));
        }
        out.push_str(&format!(
            "full model: single-sparse {:.2}x, dual-sparse {:.2}x\n",
            self.full_model_single_speedup, self.full_model_dual_speedup
        ));
        out
    }
}

/// The Fig. 22 estimator.
#[derive(Clone, Debug)]
pub struct InferenceEstimator {
    config: GpuConfig,
    model: GpuTimingModel,
}

impl Default for InferenceEstimator {
    fn default() -> Self {
        Self::v100()
    }
}

impl InferenceEstimator {
    /// Creates an estimator for the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        let model = GpuTimingModel::new(config.clone());
        InferenceEstimator { config, model }
    }

    /// Creates an estimator for the paper's V100 configuration.
    pub fn v100() -> Self {
        Self::new(GpuConfig::v100())
    }

    /// Estimates one layer under every applicable scheme.
    pub fn estimate_layer(&self, layer: &Layer) -> LayerEstimate {
        match layer.kind {
            LayerKind::Conv(shape) => {
                let workload =
                    ConvWorkload::new(shape, layer.activation_sparsity, layer.weight_sparsity);
                let driver = ConvKernel::new(self.config.clone());
                let times: Vec<(ConvScheme, f64)> = ConvScheme::ALL
                    .iter()
                    .map(|&s| (s, driver.estimate_us(&self.model, &workload, s)))
                    .collect();
                // CNNs are normalised to Dense Implicit (index 1).
                let baseline = times[1].1;
                let schemes = times
                    .iter()
                    .map(|(s, t)| SchemeTime {
                        scheme: s.to_string(),
                        time_us: *t,
                        speedup: baseline / t,
                    })
                    .collect();
                LayerEstimate {
                    name: layer.name.clone(),
                    is_conv: true,
                    schemes,
                    theoretical_speedup: theoretical_bound(layer),
                }
            }
            LayerKind::Gemm(shape) => {
                let times = [
                    (GemmScheme::Dense, self.gemm_dense_us(shape)),
                    (GemmScheme::SingleSparse, self.gemm_single_us(shape, layer.weight_sparsity)),
                    (
                        GemmScheme::DualSparse,
                        self.gemm_dual_us(shape, layer.activation_sparsity, layer.weight_sparsity),
                    ),
                ];
                let baseline = times[0].1;
                let schemes = times
                    .iter()
                    .map(|(s, t)| SchemeTime {
                        scheme: s.to_string(),
                        time_us: *t,
                        speedup: baseline / t,
                    })
                    .collect();
                LayerEstimate {
                    name: layer.name.clone(),
                    is_conv: false,
                    schemes,
                    theoretical_speedup: theoretical_bound(layer),
                }
            }
        }
    }

    /// Estimates every layer of a network and the full-model speedups.
    pub fn estimate_network(&self, network: &Network) -> NetworkReport {
        let layers: Vec<LayerEstimate> =
            network.layers().iter().map(|l| self.estimate_layer(l)).collect();
        let baseline_total: f64 = layers
            .iter()
            .map(|l| if l.is_conv { l.schemes[1].time_us } else { l.schemes[0].time_us })
            .sum();
        let dual_total: f64 = layers.iter().map(|l| l.schemes.last().unwrap().time_us).sum();
        let single_total: f64 = layers
            .iter()
            .map(|l| {
                if l.is_conv {
                    // "Single Sparse Explicit" is the published single-side
                    // baseline for CNNs (index 2).
                    l.schemes[2].time_us
                } else {
                    l.schemes[1].time_us
                }
            })
            .sum();
        NetworkReport {
            network: network.name().to_string(),
            layers,
            full_model_dual_speedup: baseline_total / dual_total,
            full_model_single_speedup: baseline_total / single_total,
        }
    }

    fn gemm_dense_us(&self, shape: GemmShape) -> f64 {
        self.model.estimate(&DenseGemm::new(self.config.clone()).profile(&shape)).time_us()
    }

    fn gemm_single_us(&self, shape: GemmShape, weight_sparsity: f64) -> f64 {
        self.model
            .estimate(&VectorSparseGemm::new(self.config.clone()).profile(&shape, weight_sparsity))
            .time_us()
    }

    fn gemm_dual_us(&self, shape: GemmShape, a_sparsity: f64, b_sparsity: f64) -> f64 {
        let seed = shape.m as u64 ^ (shape.n as u64) << 20 ^ (shape.k as u64) << 40;
        let spec = SyntheticGemmSpec::oriented(shape, a_sparsity, b_sparsity, None, None, seed);
        let (profile, _) = BitmapSpGemm::new(self.config.clone()).profile_synthetic(&spec);
        self.model.estimate(&profile).time_us()
    }
}

/// The loose theoretical speedup bound the paper plots: all zero
/// multiplications removed, nothing else charged.
fn theoretical_bound(layer: &Layer) -> f64 {
    let keep = (1.0 - layer.weight_sparsity) * (1.0 - layer.activation_sparsity);
    if keep <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_models::networks;

    fn estimator() -> InferenceEstimator {
        InferenceEstimator::v100()
    }

    #[test]
    fn conv_layer_reports_five_schemes_normalised_to_dense_implicit() {
        let net = networks::resnet18();
        let layer = &net.layers()[6]; // "3-2"
        let est = estimator().estimate_layer(layer);
        assert!(est.is_conv);
        assert_eq!(est.schemes.len(), 5);
        let dense_implicit = est.scheme("Dense Implicit").unwrap();
        assert!((dense_implicit.speedup - 1.0).abs() < 1e-9);
        assert!(est.dual_side_speedup() >= 1.0);
        assert!(est.theoretical_speedup >= est.dual_side_speedup() * 0.8);
    }

    #[test]
    fn gemm_layer_reports_three_schemes_normalised_to_dense() {
        let net = networks::bert_base();
        let est = estimator().estimate_layer(&net.layers()[2]); // ffn-1
        assert!(!est.is_conv);
        assert_eq!(est.schemes.len(), 3);
        assert!((est.scheme("Dense GEMM").unwrap().speedup - 1.0).abs() < 1e-9);
        let single = est.scheme("Single Sparse GEMM").unwrap().speedup;
        let dual = est.scheme("Dual Sparse GEMM").unwrap().speedup;
        assert!(single > 1.0, "single-side should beat dense, got {single}x");
        assert!(dual > single, "dual ({dual}x) should beat single ({single}x)");
    }

    #[test]
    fn rnn_dual_side_speedup_exceeds_the_fixed_ratio_baseline_cap() {
        // The paper's argument: >90% weight sparsity cannot be exploited by
        // a fixed 75% design, so the dual-side speedup exceeds the ~2x cap
        // of the single-side baseline. (Uniform synthetic weights make this
        // a conservative bound — see EXPERIMENTS.md.)
        let report = estimator().estimate_network(&networks::rnn_lm());
        assert!(report.full_model_single_speedup < 2.2);
        assert!(report.full_model_dual_speedup > report.full_model_single_speedup * 1.3);
        assert!(report.full_model_dual_speedup > 2.2);
    }

    #[test]
    fn full_model_reports_for_all_networks() {
        let est = estimator();
        for net in networks::all_networks() {
            let report = est.estimate_network(&net);
            assert_eq!(report.layers.len(), net.layers().len());
            assert!(
                report.full_model_dual_speedup > 1.0,
                "{}: dual speedup {}",
                net.name(),
                report.full_model_dual_speedup
            );
            assert!(
                report.full_model_dual_speedup > report.full_model_single_speedup,
                "{}",
                net.name()
            );
            let table = report.render_table();
            assert!(table.contains(net.name()));
        }
    }

    #[test]
    fn theoretical_bound_handles_extremes() {
        let dense_layer = Layer::gemm("d", GemmShape::new(8, 8, 8), 0.0, 0.0);
        assert!((theoretical_bound(&dense_layer) - 1.0).abs() < 1e-12);
        let all_sparse = Layer::gemm("s", GemmShape::new(8, 8, 8), 1.0, 0.0);
        assert!(theoretical_bound(&all_sparse).is_infinite());
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(GemmScheme::DualSparse.to_string(), "Dual Sparse GEMM");
        assert_eq!(GemmScheme::Dense.to_string(), "Dense GEMM");
    }
}
