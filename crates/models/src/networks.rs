//! Per-layer shape and sparsity tables for the five evaluated networks
//! (paper Table II and Fig. 22).
//!
//! Shapes follow the published architectures at the paper's input
//! resolutions (ImageNet 224x224 for the CNNs, 800-pixel COCO images
//! approximated by the FPN levels for Mask R-CNN, sequence length 384 for
//! BERT on SQuAD, a 1500-wide 2+4-layer LSTM for the WikiText-2 language
//! model). Weight sparsities follow the pruning schemes of Table II (AGP for
//! the CNNs/RNN, movement pruning for BERT); activation sparsities follow
//! the ReLU statistics the paper and its citations report (45-80 % for CNNs,
//! near-dense for the GELU/sigmoid-based NLP models). Exact per-layer ratios
//! from the authors' checkpoints are not public, so these are representative
//! values within the reported ranges — the harness exposes them as data so
//! they are easy to adjust.

use dsstc_tensor::{ConvShape, GemmShape};

use crate::layer::{Layer, Network};

/// Convolution batch — the paper evaluates single-image inference.
#[allow(clippy::too_many_arguments)] // mirrors the layer-table column order
fn conv(
    name: &str,
    hw: usize,
    c: usize,
    n: usize,
    k: usize,
    stride: usize,
    pad: usize,
    ws: f64,
    as_: f64,
) -> Layer {
    Layer::conv(name, ConvShape::square(hw, c, n, k, stride, pad), ws, as_)
}

/// VGG-16 convolution layers (224x224 ImageNet input), AGP-pruned.
pub fn vgg16() -> Network {
    let layers = vec![
        conv("conv1-1", 224, 3, 64, 3, 1, 1, 0.42, 0.0),
        conv("conv1-2", 224, 64, 64, 3, 1, 1, 0.68, 0.45),
        conv("conv2-1", 112, 64, 128, 3, 1, 1, 0.70, 0.50),
        conv("conv2-2", 112, 128, 128, 3, 1, 1, 0.72, 0.55),
        conv("conv3-1", 56, 128, 256, 3, 1, 1, 0.74, 0.58),
        conv("conv3-2", 56, 256, 256, 3, 1, 1, 0.76, 0.62),
        conv("conv3-3", 56, 256, 256, 3, 1, 1, 0.78, 0.65),
        conv("conv4-1", 28, 256, 512, 3, 1, 1, 0.80, 0.68),
        conv("conv4-2", 28, 512, 512, 3, 1, 1, 0.82, 0.72),
        conv("conv4-3", 28, 512, 512, 3, 1, 1, 0.84, 0.75),
        conv("conv5-1", 14, 512, 512, 3, 1, 1, 0.86, 0.78),
        conv("conv5-2", 14, 512, 512, 3, 1, 1, 0.88, 0.80),
        conv("conv5-3", 14, 512, 512, 3, 1, 1, 0.88, 0.82),
    ];
    Network::new("VGG-16", layers)
}

/// ResNet-18 convolution layers (224x224 ImageNet input), AGP-pruned.
///
/// Layer names follow the paper's `stage-index` convention (e.g. "5-4" is
/// the small late-stage layer called out in Section VI-D).
pub fn resnet18() -> Network {
    let layers = vec![
        conv("conv1", 224, 3, 64, 7, 2, 3, 0.30, 0.0),
        conv("2-1", 56, 64, 64, 3, 1, 1, 0.60, 0.42),
        conv("2-2", 56, 64, 64, 3, 1, 1, 0.62, 0.48),
        conv("2-3", 56, 64, 64, 3, 1, 1, 0.64, 0.50),
        conv("2-4", 56, 64, 64, 3, 1, 1, 0.66, 0.52),
        conv("3-1", 56, 64, 128, 3, 2, 1, 0.68, 0.55),
        conv("3-2", 28, 128, 128, 3, 1, 1, 0.70, 0.58),
        conv("3-3", 28, 128, 128, 3, 1, 1, 0.72, 0.60),
        conv("3-4", 28, 128, 128, 3, 1, 1, 0.74, 0.62),
        conv("4-1", 28, 128, 256, 3, 2, 1, 0.76, 0.64),
        conv("4-2", 14, 256, 256, 3, 1, 1, 0.78, 0.66),
        conv("4-3", 14, 256, 256, 3, 1, 1, 0.80, 0.68),
        conv("4-4", 14, 256, 256, 3, 1, 1, 0.80, 0.70),
        conv("5-1", 14, 256, 512, 3, 2, 1, 0.82, 0.72),
        conv("5-2", 7, 512, 512, 3, 1, 1, 0.84, 0.74),
        conv("5-3", 7, 512, 512, 3, 1, 1, 0.84, 0.76),
        conv("5-4", 7, 512, 512, 3, 1, 1, 0.86, 0.78),
    ];
    Network::new("ResNet-18", layers)
}

/// ResNet-50 convolution layers (224x224 ImageNet input), AGP-pruned — the
/// CNN workload the serving runtime drives alongside BERT.
///
/// One representative bottleneck block (1x1 reduce, 3x3, 1x1 expand) is
/// listed per stage with the stage's repeat count folded into the layer name
/// (`3-1a` = stage 3, block 1, conv a); sparsities follow the same AGP
/// depth profile as the other CNNs. The paper itself does not evaluate
/// ResNet-50 — this table extends the workload set for the serving layer
/// and is deliberately *not* part of [`all_networks`] (which stays the
/// paper's five-network Fig. 22 set).
pub fn resnet50() -> Network {
    let layers = vec![
        conv("conv1", 224, 3, 64, 7, 2, 3, 0.30, 0.0),
        conv("2-1a", 56, 64, 64, 1, 1, 0, 0.55, 0.40),
        conv("2-1b", 56, 64, 64, 3, 1, 1, 0.62, 0.45),
        conv("2-1c", 56, 64, 256, 1, 1, 0, 0.60, 0.48),
        conv("3-1a", 56, 256, 128, 1, 2, 0, 0.66, 0.52),
        conv("3-1b", 28, 128, 128, 3, 1, 1, 0.70, 0.56),
        conv("3-1c", 28, 128, 512, 1, 1, 0, 0.68, 0.58),
        conv("4-1a", 28, 512, 256, 1, 2, 0, 0.74, 0.62),
        conv("4-1b", 14, 256, 256, 3, 1, 1, 0.78, 0.66),
        conv("4-1c", 14, 256, 1024, 1, 1, 0, 0.76, 0.68),
        conv("5-1a", 14, 1024, 512, 1, 2, 0, 0.80, 0.72),
        conv("5-1b", 7, 512, 512, 3, 1, 1, 0.84, 0.75),
        conv("5-1c", 7, 512, 2048, 1, 1, 0, 0.82, 0.78),
    ];
    Network::new("ResNet-50", layers)
}

/// Representative Mask R-CNN layers: ResNet-50 backbone stages plus FPN and
/// head convolutions at COCO resolution, AGP-pruned.
pub fn mask_rcnn() -> Network {
    let layers = vec![
        conv("backbone-2a", 200, 64, 64, 1, 1, 0, 0.50, 0.40),
        conv("backbone-2b", 200, 64, 64, 3, 1, 1, 0.60, 0.45),
        conv("backbone-3a", 100, 256, 128, 1, 1, 0, 0.65, 0.50),
        conv("backbone-3b", 100, 128, 128, 3, 1, 1, 0.70, 0.55),
        conv("backbone-4a", 50, 512, 256, 1, 1, 0, 0.72, 0.58),
        conv("backbone-4b", 50, 256, 256, 3, 1, 1, 0.75, 0.62),
        conv("backbone-5a", 25, 1024, 512, 1, 1, 0, 0.78, 0.65),
        conv("backbone-5b", 25, 512, 512, 3, 1, 1, 0.80, 0.68),
        conv("fpn-p4", 50, 256, 256, 3, 1, 1, 0.70, 0.55),
        conv("fpn-p5", 25, 256, 256, 3, 1, 1, 0.72, 0.58),
        conv("rpn-head", 50, 256, 256, 3, 1, 1, 0.68, 0.52),
        conv("mask-head", 28, 256, 256, 3, 1, 1, 0.74, 0.60),
    ];
    Network::new("Mask R-CNN", layers)
}

/// BERT-base encoder layers on SQuAD (sequence length 384), movement-pruned.
///
/// One transformer block's four GEMMs are listed (the remaining 11 blocks
/// have identical shapes); weight sparsity is the >90 % the fine-pruned
/// checkpoint reaches, activation sparsity is near zero because GELU does
/// not produce exact zeros.
pub fn bert_base() -> Network {
    const SEQ: usize = 384;
    const HIDDEN: usize = 768;
    const FFN: usize = 3072;
    let layers = vec![
        Layer::gemm("attn-qkv", GemmShape::new(SEQ, 3 * HIDDEN, HIDDEN), 0.92, 0.02),
        Layer::gemm("attn-out", GemmShape::new(SEQ, HIDDEN, HIDDEN), 0.90, 0.05),
        Layer::gemm("ffn-1", GemmShape::new(SEQ, FFN, HIDDEN), 0.94, 0.05),
        Layer::gemm("ffn-2", GemmShape::new(SEQ, HIDDEN, FFN), 0.95, 0.10),
    ];
    Network::new("BERT-base encoder", layers)
}

/// The 2-layer-encoder / 4-layer-decoder LSTM word-level language model used
/// by the Sparse Tensor Core paper, AGP-pruned on WikiText-2.
///
/// Each LSTM layer's gate computation is one `[batch*steps, 4*hidden, hidden]`
/// GEMM (hidden = 1500; a batch of 32 sequences unrolled over 32 time steps
/// gives the 1024-row batched GEMM the throughput evaluation uses).
pub fn rnn_lm() -> Network {
    const HIDDEN: usize = 1500;
    const BATCH_STEPS: usize = 1024;
    let gate = |name: &str, ws: f64| {
        Layer::gemm(name, GemmShape::new(BATCH_STEPS, 4 * HIDDEN, HIDDEN), ws, 0.08)
    };
    let layers = vec![
        gate("encoder-1", 0.88),
        gate("encoder-2", 0.90),
        gate("decoder-1", 0.90),
        gate("decoder-2", 0.91),
        gate("decoder-3", 0.92),
        gate("decoder-4", 0.93),
    ];
    Network::new("RNN", layers)
}

/// All five evaluated networks, in the order Fig. 22 plots them.
pub fn all_networks() -> Vec<Network> {
    vec![vgg16(), resnet18(), mask_rcnn(), bert_base(), rnn_lm()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_networks_exist() {
        let all = all_networks();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(Network::name).collect();
        assert!(names.contains(&"VGG-16"));
        assert!(names.contains(&"BERT-base encoder"));
        assert!(names.contains(&"RNN"));
    }

    #[test]
    fn vgg16_has_thirteen_conv_layers_and_large_mac_count() {
        let v = vgg16();
        assert_eq!(v.layers().len(), 13);
        assert!(v.has_conv_layers());
        // VGG-16 convolutions are ~15.3 GMACs at 224x224.
        let gmacs = v.total_macs() as f64 / 1e9;
        assert!((gmacs - 15.3).abs() < 1.5, "got {gmacs} GMACs");
    }

    #[test]
    fn resnet18_mac_count_is_about_1_8_gmacs() {
        let r = resnet18();
        let gmacs = r.total_macs() as f64 / 1e9;
        assert!((gmacs - 1.8).abs() < 0.5, "got {gmacs} GMACs");
        assert!(r.layers().iter().any(|l| l.name == "5-4"));
    }

    #[test]
    fn resnet50_is_conv_only_and_stays_out_of_the_paper_set() {
        let r = resnet50();
        assert_eq!(r.name(), "ResNet-50");
        assert!(r.has_conv_layers());
        assert_eq!(r.layers().len(), 13);
        // Bottleneck blocks: 1x1 / 3x3 / 1x1 per stage.
        assert!(r.layers().iter().any(|l| l.name == "4-1b"));
        // The Fig. 22 set remains the paper's five networks.
        assert!(all_networks().iter().all(|n| n.name() != "ResNet-50"));
    }

    #[test]
    fn nlp_models_are_gemm_only_with_high_weight_sparsity() {
        for net in [bert_base(), rnn_lm()] {
            assert!(!net.has_conv_layers(), "{}", net.name());
            assert!(net.mean_weight_sparsity() > 0.85, "{}", net.name());
            assert!(net.mean_activation_sparsity() < 0.15, "{}", net.name());
        }
    }

    #[test]
    fn cnn_activation_sparsity_grows_with_depth() {
        let v = vgg16();
        let first = v.layers()[1].activation_sparsity;
        let last = v.layers().last().unwrap().activation_sparsity;
        assert!(last > first);
    }

    #[test]
    fn bert_ffn_shapes_match_architecture() {
        let b = bert_base();
        let ffn1 = b.layers().iter().find(|l| l.name == "ffn-1").unwrap();
        assert_eq!(ffn1.kind.lowered_gemm(), GemmShape::new(384, 3072, 768));
    }

    #[test]
    fn first_conv_layers_have_dense_activations() {
        // The network input (an image) is dense; only post-ReLU activations
        // are sparse.
        assert_eq!(vgg16().layers()[0].activation_sparsity, 0.0);
        assert_eq!(resnet18().layers()[0].activation_sparsity, 0.0);
    }
}
