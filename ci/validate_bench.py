#!/usr/bin/env python3
"""Schema validators for the benchmark JSON artifacts CI uploads.

Usage: validate_bench.py {serve|kernels|cluster} PATH

Exits non-zero when the document violates its schema. ``json.load`` happily
accepts ``NaN``/``Infinity`` tokens — exactly what a division-by-zero bug in
the emitters would produce — so parsing runs with ``parse_constant``
rejecting them outright.
"""

import json
import numbers
import sys


def strict_load(path):
    def reject(token):
        raise ValueError(f"non-finite JSON token {token}")

    with open(path) as fh:
        return json.load(fh, parse_constant=reject)


def require_number(cell, key, minimum=None):
    value = cell[key]
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValueError(f"{key} is not a number: {value!r}")
    if minimum is not None and not value >= minimum:
        raise ValueError(f"{key} = {value} < {minimum}")
    return value


def validate_serve(doc):
    """dsstc.bench.serve/1 — serving sweep cells (any driver mode)."""
    assert doc["schema"] == "dsstc.bench.serve/1", doc["schema"]
    assert doc["mode"] in (
        "closed_loop", "open_loop", "open_loop_wire", "wire_fanin",
    ), doc["mode"]
    assert doc["cells"], "no cells"
    for cell in doc["cells"]:
        for key in (
            "pool", "workers", "max_batch", "path", "connections",
            "reactors", "offered_rps", "completed", "shed", "achieved_rps",
            "queue_p50_us", "queue_p99_us", "execute_p50_us",
            "execute_p99_us", "e2e_p50_us", "e2e_p99_us",
            "mean_batch_size", "cache_hit_rate", "warm_restored",
            "store_entries", "store_bytes", "per_priority",
            "per_device", "wire",
        ):
            assert key in cell, key
        # A cell that completed nothing has no meaningful rate or
        # percentiles; CI sweeps must never produce one.
        require_number(cell, "completed", minimum=1)
        assert require_number(cell, "achieved_rps") > 0, "achieved_rps must be positive"
        # Encoding-store lifecycle counters are plain non-negative
        # integers on every cell (zero when no store or shedding).
        require_number(cell, "shed", minimum=0)
        require_number(cell, "warm_restored", minimum=0)
        require_number(cell, "store_entries", minimum=0)
        require_number(cell, "store_bytes", minimum=0)
        # Per-priority shed counts reconcile with the cell total.
        shed_sum = sum(
            require_number(p, "shed", minimum=0) for p in cell["per_priority"]
        )
        assert shed_sum == cell["shed"], (
            f"per-priority shed {shed_sum} != cell shed {cell['shed']}"
        )
        # Client-side e2e samples exist on every path except the fan-in
        # burst driver, which measures whole-burst wall clock instead.
        if doc["mode"] != "wire_fanin":
            assert require_number(cell, "e2e_p99_us") > 0
        assert len(cell["per_priority"]) == 3
        # connections/reactors describe the TCP front-end: numbers on
        # wire cells, null on in-process cells (which have neither).
        if cell["path"] == "wire":
            require_number(cell, "connections", minimum=1)
            require_number(cell, "reactors", minimum=1)
            assert cell["wire"] is not None, "wire cells carry wire stats"
            require_number(cell["wire"], "connections_accepted", minimum=1)
            require_number(cell["wire"], "shed", minimum=0)
        else:
            assert cell["path"] == "in_process", cell["path"]
            assert cell["connections"] is None, cell["connections"]
            assert cell["reactors"] is None, cell["reactors"]
    return f"{len(doc['cells'])} serve cells"


def validate_kernels(doc):
    """dsstc.bench.kernels/1 — modelled Fig. 21 sweep + measured kernels."""
    assert doc["schema"] == "dsstc.bench.kernels/1", doc["schema"]
    modelled = doc["modelled"]
    for key in ("m", "k", "n"):
        assert modelled["shape"][key] > 0, key
    assert require_number(modelled, "dense_baseline_us") > 0
    assert require_number(modelled, "vector_sparse_us") > 0
    assert modelled["cells"], "no modelled cells"
    for cell in modelled["cells"]:
        require_number(cell, "a_sparsity", minimum=0)
        require_number(cell, "b_sparsity", minimum=0)
        assert require_number(cell, "modelled_us") > 0
        assert require_number(cell, "speedup_vs_dense") > 0
    measured = doc["measured"]
    assert require_number(measured, "runs_per_cell", minimum=1)
    assert measured["cells"], "no measured cells"
    for cell in measured["cells"]:
        for key in (
            "name", "m", "k", "n", "a_sparsity", "b_sparsity",
            "encode_us", "scalar_us", "word_us", "speedup", "bit_identical",
        ):
            assert key in cell, key
        # The word-parallel path must reproduce the scalar reference
        # exactly; a fast-but-wrong kernel must fail CI, not ship a number.
        assert cell["bit_identical"] is True, (
            f"{cell['name']}: word path diverged from the scalar reference"
        )
        require_number(cell, "encode_us", minimum=0)
        assert require_number(cell, "scalar_us") > 0
        assert require_number(cell, "word_us") > 0
        assert require_number(cell, "speedup") > 0
    return f"{len(measured['cells'])} measured kernel cells"


def validate_cluster(doc):
    """dsstc.bench.cluster/1 — N-node loopback cluster phases."""
    assert doc["schema"] == "dsstc.bench.cluster/1", doc["schema"]
    require_number(doc, "requests_per_cell", minimum=1)
    assert doc["cells"], "no cells"
    for cell in doc["cells"]:
        for key in (
            "phase", "nodes", "replication", "requests", "completed",
            "redirects", "failovers", "redirect_rate", "bit_identical",
        ):
            assert key in cell, key
        assert cell["phase"] in ("steady", "failover"), cell["phase"]
        nodes = require_number(cell, "nodes", minimum=1)
        replication = require_number(cell, "replication", minimum=1)
        assert replication <= nodes, (
            f"replication {replication} exceeds {nodes} node(s)"
        )
        requests = require_number(cell, "requests", minimum=1)
        assert require_number(cell, "completed", minimum=1) == requests, (
            "every request in the sweep must complete"
        )
        require_number(cell, "redirects", minimum=0)
        require_number(cell, "failovers", minimum=0)
        rate = require_number(cell, "redirect_rate", minimum=0)
        assert rate <= 1, f"redirect_rate {rate} > 1"
        # The cluster's whole point: outputs must match a single-node
        # server bit for bit, steady state and under failover alike.
        assert cell["bit_identical"] is True, (
            f"{cell['phase']}: cluster outputs diverged from a single node"
        )
    return f"{len(doc['cells'])} cluster cells"


VALIDATORS = {
    "serve": validate_serve,
    "kernels": validate_kernels,
    "cluster": validate_cluster,
}


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in VALIDATORS:
        sys.exit(__doc__)
    summary = VALIDATORS[sys.argv[1]](strict_load(sys.argv[2]))
    print(f"{sys.argv[2]}: {summary} validated")


if __name__ == "__main__":
    main()
