//! BERT-base encoder and LSTM language-model estimation: the GEMM half of
//! the paper's Fig. 22, where only the weights are sparse (movement pruning
//! / AGP) and the single-side baseline's fixed 75 % ratio leaves most of the
//! sparsity on the table.
//!
//! Run with `cargo run --release -p dsstc --example bert_inference`.

use dsstc::{DualSideSparseTensorCore, InferenceEstimator};
use dsstc_models::{networks, prune_magnitude};
use dsstc_tensor::{Matrix, SparsityPattern};

fn main() {
    let estimator = InferenceEstimator::v100();
    for network in [networks::bert_base(), networks::rnn_lm()] {
        let report = estimator.estimate_network(&network);
        println!("{}", report.render_table());
    }

    // Functional check on a reduced attention-projection GEMM: movement
    // pruning is approximated by magnitude pruning to the same sparsity.
    let dsstc = DualSideSparseTensorCore::v100();
    let seq = 128;
    let hidden = 256;
    let activations = Matrix::random_sparse(seq, hidden, 0.02, SparsityPattern::Uniform, 1);
    let dense_weights = Matrix::random_sparse(hidden, hidden, 0.0, SparsityPattern::Uniform, 2);
    let weights = prune_magnitude(&dense_weights, 0.92);
    let result = dsstc.spgemm(&activations, &weights);
    println!("Reduced attention projection ({seq}x{hidden}x{hidden}, 92% weight sparsity):");
    println!(
        "  correct: {}   modelled {:.2} us vs dense {:.2} us  ({:.2}x)",
        result.output.approx_eq(&activations.matmul(&weights), 1e-2),
        result.time_us,
        result.dense_time_us,
        result.speedup_over_dense
    );
}
