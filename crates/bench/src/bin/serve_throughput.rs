//! Serving-throughput sweep for the `dsstc-serve` runtime.
//!
//! Two modes:
//!
//! * **closed-loop** (default): one burst of mixed ResNet-50 / BERT traffic
//!   per (workers x max_batch) cell, measuring requests/second and latency
//!   percentiles at whatever rate the server sustains. Shows dynamic
//!   batching amortising per-layer work into larger-M GEMMs and the worker
//!   pool spreading batches across cores.
//! * **open-loop** (`--open-loop`): seeded Poisson arrivals drive each
//!   (max_batch x device-mix) cell at a grid of offered loads, producing a
//!   latency-vs-offered-load curve — the behaviour a closed-loop driver
//!   cannot see, because open-loop arrivals keep coming no matter how far
//!   behind the server falls. The arrival process is **split across
//!   multiple submitter threads** (superposed Poisson sub-processes) and
//!   each submitter paces with hybrid sleep + busy-spin
//!   ([`dsstc_serve::pace_until`]), so offered rates past 10k rps stay
//!   faithful to the arrival clock instead of collapsing to the
//!   scheduler's sleep granularity.
//!
//! Run with `cargo run --release -p dsstc-bench --bin serve_throughput`
//! (append `-- --open-loop` for the open-loop sweep, `--smoke` for the
//! CI-sized grid, `--submitters N` to pin the open-loop submitter thread
//! count, `--encode-cache-dir DIR` to persist encoded weights across runs).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsstc_serve::{
    pace_until, DevicePool, InferRequest, InferenceServer, ModelId, PoissonArrivals, Priority,
    ServeConfig, ServerStats,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

const REQUESTS: u64 = 96;

/// Seed of the open-loop arrival process (fixed: cells are reproducible).
const ARRIVAL_SEED: u64 = 0x0A_11_2E_ED;

/// Submitter threads for an offered load, when not pinned by
/// `--submitters`: one per 4k rps, capped at 8 — measured headroom for a
/// sleep+spin pacer to stay on its arrival clock.
fn auto_submitters(offered_rps: f64) -> usize {
    ((offered_rps / 4000.0).ceil() as usize).clamp(1, 8)
}

/// Drives one burst of mixed traffic and returns wall time + final stats.
fn run_cell(workers: usize, max_batch: usize) -> (f64, ServerStats) {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_queue_wait(Duration::from_millis(2))
            .with_proxy_dim(64),
    );
    // Warm both models so every cell measures steady-state serving: the
    // one-time encode and bucket-pricing costs are exactly what the
    // repository and timing caches amortise away in a long-running server.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let started = Instant::now();
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server.submit(InferRequest::new(model, features)).expect("queued")
        })
        .collect();
    for p in pending {
        p.wait().expect("response");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (elapsed, stats)
}

fn closed_loop(smoke: bool) {
    let (worker_grid, batch_grid): (&[usize], &[usize]) =
        if smoke { (&[2], &[1, 8]) } else { (&[1, 2, 4], &[1, 4, 8, 16]) };
    println!("dsstc-serve throughput sweep: {REQUESTS} mixed ResNet-50/BERT requests per cell\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "workers", "max_batch", "req/s", "mean batch", "queue p99 ms", "exec p99 ms"
    );
    for &workers in worker_grid {
        for &max_batch in batch_grid {
            let (elapsed, stats) = run_cell(workers, max_batch);
            println!(
                "{workers:>8} {max_batch:>10} {:>12.1} {:>12.2} {:>14.2} {:>14.2}",
                REQUESTS as f64 / elapsed,
                stats.mean_batch_size,
                stats.queue_p99_us / 1e3,
                stats.execute_p99_us / 1e3,
            );
        }
    }
    println!(
        "\n(modelled GPU latency per request is reported by the server itself; see\n examples/serve_demo.rs for the metrics surface)"
    );
}

/// One open-loop cell: Poisson arrivals at `offered_rps` against a pool,
/// mixed-priority mixed-model traffic driven by `submitters` threads (each
/// pacing an independent sub-process with sleep+spin). Returns final stats
/// + achieved rate.
fn run_open_loop_cell(
    pool: DevicePool,
    max_batch: usize,
    offered_rps: f64,
    requests: u64,
    submitters: usize,
    encode_cache_dir: Option<&PathBuf>,
) -> (f64, ServerStats) {
    let mut config = ServeConfig::default()
        .with_devices(pool)
        .with_max_batch(max_batch)
        .with_max_queue_wait(Duration::from_millis(2))
        .with_proxy_dim(64);
    if let Some(dir) = encode_cache_dir {
        config = config.with_encode_cache_dir(dir.clone());
    }
    let mut server = InferenceServer::start(config);
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let sub_processes = PoissonArrivals::new(offered_rps, ARRIVAL_SEED).split(submitters);
    let started = Instant::now();
    let server_ref = &server;
    // Each submitter drives its own sub-process; the superposition offers
    // the full load. Requests are waited on after every submitter finishes
    // (open loop: arrivals never wait for the server).
    let pending: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = sub_processes
            .into_iter()
            .enumerate()
            .map(|(t, mut arrivals)| {
                // Spread the remainder so exactly `requests` are submitted.
                let share = requests / submitters as u64
                    + u64::from((t as u64) < requests % submitters as u64);
                scope.spawn(move || {
                    let mut next_arrival = started;
                    (0..share)
                        .map(|i| {
                            next_arrival += arrivals.next_gap();
                            // Open loop: pace to the arrival instant even if
                            // the server is behind; never wait for the
                            // server itself.
                            pace_until(next_arrival);
                            let id = t as u64 * 1_000_003 + i;
                            let model = if id.is_multiple_of(2) {
                                ModelId::ResNet50
                            } else {
                                ModelId::BertBase
                            };
                            let priority = if id.is_multiple_of(4) {
                                Priority::High
                            } else {
                                Priority::Normal
                            };
                            let features =
                                Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, id);
                            server_ref
                                .submit(InferRequest::new(model, features).with_priority(priority))
                                .expect("queued")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter thread")).collect()
    });
    for p in pending {
        p.wait().expect("response");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (requests as f64 / elapsed, stats)
}

fn open_loop(smoke: bool, submitters: Option<usize>, encode_cache_dir: Option<&PathBuf>) {
    let (loads, requests): (&[f64], u64) =
        if smoke { (&[200.0, 800.0], 32) } else { (&[100.0, 200.0, 400.0, 800.0, 1600.0], 96) };
    type PoolMaker = fn() -> DevicePool;
    let pools: &[(&str, PoolMaker)] = &[
        ("2x V100", || DevicePool::homogeneous(GpuConfig::v100(), 2)),
        ("V100+A100", || DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()])),
    ];
    println!(
        "dsstc-serve open-loop sweep: seeded Poisson arrivals, {requests} mixed \
         ResNet-50/BERT requests per cell (1 in 4 high priority)\n"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>11} {:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "pool",
        "max_batch",
        "offered r/s",
        "submitters",
        "achieved",
        "queue p50 ms",
        "queue p99 ms",
        "hi-pri p99 ms",
        "mean batch",
        "model ms"
    );
    for (name, make_pool) in pools {
        for &max_batch in &[4usize, 8] {
            for &load in loads {
                let threads = submitters.unwrap_or_else(|| auto_submitters(load));
                let (achieved, stats) = run_open_loop_cell(
                    make_pool(),
                    max_batch,
                    load,
                    requests,
                    threads,
                    encode_cache_dir,
                );
                println!(
                    "{name:>10} {max_batch:>10} {load:>12.0} {threads:>11} {achieved:>12.1} {:>14.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
                    stats.queue_p50_us / 1e3,
                    stats.queue_p99_us / 1e3,
                    stats.for_priority(Priority::High).queue_p99_us / 1e3,
                    stats.mean_batch_size,
                    stats.modelled_makespan_us / 1e3,
                );
            }
            println!();
        }
    }
    println!(
        "(wall-clock queue latency grows with offered load as the open-loop arrivals outpace\n \
         the host-bound proxy execution, which runs at the same real speed on every modelled\n \
         device; the modelled-makespan column is where the device pool shows — completion-time\n \
         dispatch shifts batches toward the A100, so the mixed pool finishes the same trace in\n \
         less modelled time than 2x V100)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut open = false;
    let mut smoke = false;
    let mut submitters: Option<usize> = None;
    let mut encode_cache_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--open-loop" => open = true,
            "--smoke" => smoke = true,
            "--submitters" => {
                submitters = iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0);
                if submitters.is_none() {
                    eprintln!("--submitters needs a positive integer");
                    std::process::exit(2);
                }
            }
            "--encode-cache-dir" => {
                encode_cache_dir = iter.next().map(PathBuf::from);
                if encode_cache_dir.is_none() {
                    eprintln!("--encode-cache-dir needs a directory path");
                    std::process::exit(2);
                }
            }
            unknown => {
                eprintln!(
                    "unknown flag {unknown}; supported: [--open-loop] [--smoke] \
                     [--submitters N] [--encode-cache-dir DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    if open {
        open_loop(smoke, submitters, encode_cache_dir.as_ref());
    } else {
        // Fail loudly rather than silently ignoring flags only the
        // open-loop driver consumes.
        if submitters.is_some() || encode_cache_dir.is_some() {
            eprintln!("--submitters and --encode-cache-dir require --open-loop");
            std::process::exit(2);
        }
        closed_loop(smoke);
    }
}
