//! Request-stage tracing: a [`RequestTrace`] of monotonic stage
//! timestamps carried with every request from admission (or wire decode)
//! to response (or wire flush), surfaced on
//! [`InferResponse`](crate::InferResponse) and dumpable as JSONL
//! chrome-trace events via `--trace-out` (load the file in
//! `chrome://tracing` / Perfetto). See `docs/OBSERVABILITY.md` for the
//! event schema.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::request::{ModelId, Priority};

/// The lifecycle stages a request passes through, in pipeline order.
///
/// The two wire stages only apply to requests arriving via
/// [`net`](crate::net); in-process requests leave them unset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// A complete request frame was decoded off the socket (wire only).
    WireDecoded = 0,
    /// The server accepted the request and assigned its id.
    Admitted = 1,
    /// The request entered its model's batch queue.
    Enqueued = 2,
    /// The scheduler released the batch holding the request.
    Released = 3,
    /// The dispatcher handed the batch to a device worker queue.
    Dispatched = 4,
    /// The worker resolved the encoded weights (hit, restore or encode).
    CacheResolved = 5,
    /// Kernel execution of the batch began.
    ExecuteStart = 6,
    /// Kernel execution of the batch finished.
    ExecuteEnd = 7,
    /// The response was handed to the requester's channel.
    Responded = 8,
    /// The response frame's last byte was flushed to the socket (wire
    /// only).
    WireFlushed = 9,
}

/// Number of [`Stage`] variants.
pub const STAGES: usize = 10;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::WireDecoded,
        Stage::Admitted,
        Stage::Enqueued,
        Stage::Released,
        Stage::Dispatched,
        Stage::CacheResolved,
        Stage::ExecuteStart,
        Stage::ExecuteEnd,
        Stage::Responded,
        Stage::WireFlushed,
    ];

    /// The stage's snake_case name as used in trace events and docs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::WireDecoded => "wire_decoded",
            Stage::Admitted => "admitted",
            Stage::Enqueued => "enqueued",
            Stage::Released => "released",
            Stage::Dispatched => "dispatched",
            Stage::CacheResolved => "cache_resolved",
            Stage::ExecuteStart => "execute_start",
            Stage::ExecuteEnd => "execute_end",
            Stage::Responded => "responded",
            Stage::WireFlushed => "wire_flushed",
        }
    }
}

/// How the encoding cache satisfied a request's weight lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The encoded weights were already resident in memory.
    Hit,
    /// A miss paid for a fresh prune+encode.
    MissFresh,
    /// A miss restored a previously persisted artifact from disk.
    MissRestored,
}

impl CacheOutcome {
    /// The outcome's name as used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::MissFresh => "miss_fresh",
            CacheOutcome::MissRestored => "miss_restored",
        }
    }
}

/// The process-wide epoch all trace timestamps are offsets from.
fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-request staged timeline: µs offsets from a process-wide epoch,
/// stamped as the request flows admitted → enqueued → released →
/// dispatched → cache resolved → execute start/end → responded (plus
/// wire decode/flush for `net/` requests).
#[derive(Clone, Debug, Default)]
pub struct RequestTrace {
    /// The server-assigned request id (0 until admission).
    pub id: u64,
    /// The requested model.
    pub model: Option<ModelId>,
    /// The request's priority class.
    pub priority: Option<Priority>,
    /// How the encoding cache resolved the request's weights.
    pub cache: Option<CacheOutcome>,
    /// The device index that executed the request's batch.
    pub device: Option<usize>,
    stamps: [Option<u64>; STAGES],
}

impl RequestTrace {
    /// An empty trace; stages are stamped as the request progresses.
    pub fn new() -> Self {
        // Materialise the epoch early so all stamps share it.
        let _ = trace_epoch();
        RequestTrace::default()
    }

    /// Stamps `stage` with the current time. Re-stamping a stage moves it
    /// forward (e.g. a batch re-dispatched after a full worker queue keeps
    /// the *successful* dispatch time).
    pub fn record(&mut self, stage: Stage) {
        self.stamps[stage as usize] = Some(now_us());
    }

    /// Stamps `stage` with an explicit µs offset (tests and replay).
    pub fn record_at(&mut self, stage: Stage, offset_us: u64) {
        self.stamps[stage as usize] = Some(offset_us);
    }

    /// The µs offset recorded for `stage`, if stamped.
    pub fn stage_us(&self, stage: Stage) -> Option<u64> {
        self.stamps[stage as usize]
    }

    /// µs elapsed between two recorded stages (`None` when either is
    /// unset; saturates at zero if stamped out of order).
    pub fn span_us(&self, from: Stage, to: Stage) -> Option<u64> {
        Some(self.stage_us(to)?.saturating_sub(self.stage_us(from)?))
    }

    /// True when every recorded stage timestamp is non-decreasing in
    /// pipeline order (unset stages are skipped).
    pub fn is_monotonic(&self) -> bool {
        let mut last = 0u64;
        for stage in Stage::ALL {
            if let Some(t) = self.stage_us(stage) {
                if t < last {
                    return false;
                }
                last = t;
            }
        }
        true
    }

    /// True when the in-process pipeline stages (admitted through
    /// responded) are all stamped.
    pub fn is_complete(&self) -> bool {
        Stage::ALL
            .iter()
            .filter(|s| !matches!(s, Stage::WireDecoded | Stage::WireFlushed))
            .all(|&s| self.stage_us(s).is_some())
    }

    /// True when the trace entered through the wire front-end.
    pub fn is_wire(&self) -> bool {
        self.stage_us(Stage::WireDecoded).is_some()
    }

    /// Renders the trace as chrome-trace complete ("X") events, one JSON
    /// object per line, one event per adjacent recorded stage pair. The
    /// `tid` is the executing device (or 0) so per-device lanes line up in
    /// the viewer.
    pub fn to_chrome_events(&self) -> Vec<String> {
        const SPANS: [(&str, Stage, Stage); 7] = [
            ("wire_decode", Stage::WireDecoded, Stage::Admitted),
            ("queue", Stage::Enqueued, Stage::Released),
            ("schedule", Stage::Released, Stage::Dispatched),
            ("cache", Stage::Dispatched, Stage::CacheResolved),
            ("execute", Stage::ExecuteStart, Stage::ExecuteEnd),
            ("respond", Stage::ExecuteEnd, Stage::Responded),
            ("wire_flush", Stage::Responded, Stage::WireFlushed),
        ];
        let tid = self.device.unwrap_or(0);
        let model = self.model.map_or("unknown", |m| m.slug());
        let priority = self.priority.map_or("unknown", |p| p.name());
        let cache = self.cache.map_or("unknown", |c| c.name());
        let mut events = Vec::new();
        for (name, from, to) in SPANS {
            let (Some(start), Some(dur)) = (self.stage_us(from), self.span_us(from, to)) else {
                continue;
            };
            events.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"id\":{},\"model\":\"{model}\",\
                 \"priority\":\"{priority}\",\"cache\":\"{cache}\"}}}}",
                self.id
            ));
        }
        events
    }
}

/// µs elapsed since the process trace epoch.
pub fn now_us() -> u64 {
    trace_epoch().elapsed().as_micros() as u64
}

/// Where completed traces go: a bounded in-memory ring (always on, for
/// tests and the heartbeat) plus an optional JSONL writer opened from
/// `--trace-out`.
#[derive(Debug)]
pub struct TraceSink {
    ring: Mutex<VecDeque<RequestTrace>>,
    writer: Option<Mutex<BufWriter<File>>>,
    capacity: usize,
}

/// How many completed traces the in-memory ring retains.
const RING_CAPACITY: usize = 1024;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink with only the in-memory ring.
    pub fn new() -> Self {
        TraceSink {
            ring: Mutex::new(VecDeque::with_capacity(64)),
            writer: None,
            capacity: RING_CAPACITY,
        }
    }

    /// A sink that additionally appends chrome-trace JSONL events to
    /// `path` (truncating any existing file).
    pub fn with_output(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(TraceSink { writer: Some(Mutex::new(BufWriter::new(file))), ..TraceSink::new() })
    }

    /// Records a completed trace: pushed onto the ring (evicting the
    /// oldest past capacity) and, when a writer is attached, emitted as
    /// chrome-trace JSONL lines.
    pub fn record(&self, trace: RequestTrace) {
        if let Some(writer) = &self.writer {
            let mut writer = writer.lock().expect("trace writer poisoned");
            for line in trace.to_chrome_events() {
                let _ = writeln!(writer, "{line}");
            }
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recent completed traces, oldest first (bounded by the
    /// ring capacity).
    pub fn recent(&self) -> Vec<RequestTrace> {
        self.ring.lock().expect("trace ring poisoned").iter().cloned().collect()
    }

    /// Completed traces recorded since the sink was created (saturating
    /// at ring capacity — use counters for exact totals).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// True when no trace has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes the JSONL writer, if any.
    pub fn flush(&self) {
        if let Some(writer) = &self.writer {
            let _ = writer.lock().expect("trace writer poisoned").flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged() -> RequestTrace {
        let mut t = RequestTrace::new();
        t.id = 7;
        t.model = Some(ModelId::BertBase);
        t.priority = Some(Priority::High);
        t.cache = Some(CacheOutcome::MissRestored);
        t.device = Some(2);
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            t.record_at(stage, (i as u64) * 100);
        }
        t
    }

    #[test]
    fn stages_stamp_and_span() {
        let t = staged();
        assert_eq!(t.stage_us(Stage::Admitted), Some(100));
        assert_eq!(t.span_us(Stage::Enqueued, Stage::Released), Some(100));
        assert_eq!(t.span_us(Stage::Admitted, Stage::Responded), Some(700));
        assert!(t.is_monotonic());
        assert!(t.is_complete());
        assert!(t.is_wire());
    }

    #[test]
    fn monotonicity_detects_reordering() {
        let mut t = staged();
        t.record_at(Stage::ExecuteEnd, 1); // before ExecuteStart's 600
        assert!(!t.is_monotonic());
    }

    #[test]
    fn incomplete_without_pipeline_stages() {
        let mut t = RequestTrace::new();
        t.record(Stage::Admitted);
        assert!(!t.is_complete());
        assert!(!t.is_wire());
        assert!(t.is_monotonic(), "a sparse trace is still monotonic");
    }

    #[test]
    fn live_stamps_are_monotonic() {
        let mut t = RequestTrace::new();
        for stage in Stage::ALL {
            t.record(stage);
        }
        assert!(t.is_monotonic());
        assert!(t.is_complete());
    }

    #[test]
    fn chrome_events_cover_recorded_spans() {
        let t = staged();
        let events = t.to_chrome_events();
        assert_eq!(events.len(), 7, "every span recorded: {events:?}");
        for line in &events {
            assert!(line.starts_with('{') && line.ends_with('}'), "JSON object: {line}");
            assert!(line.contains("\"ph\":\"X\""));
            assert!(line.contains("\"tid\":2"));
            assert!(line.contains("\"model\":\"bertbase\""));
            assert!(line.contains("\"cache\":\"miss_restored\""));
        }
        assert!(events[0].contains("\"name\":\"wire_decode\""));

        // An in-process trace emits no wire spans.
        let mut t = RequestTrace::new();
        for stage in Stage::ALL {
            if !matches!(stage, Stage::WireDecoded | Stage::WireFlushed) {
                t.record(stage);
            }
        }
        let events = t.to_chrome_events();
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| !e.contains("wire")));
    }

    #[test]
    fn sink_ring_bounds_memory_and_writer_emits_jsonl() {
        let dir = std::env::temp_dir().join(format!("dsstc-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = TraceSink::with_output(&path).unwrap();
        assert!(sink.is_empty());
        for i in 0..(RING_CAPACITY + 5) {
            let mut t = staged();
            t.id = i as u64;
            sink.record(t);
        }
        assert_eq!(sink.len(), RING_CAPACITY, "ring stays bounded");
        assert_eq!(sink.recent().first().unwrap().id, 5, "oldest entries evicted");
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), (RING_CAPACITY + 5) * 7);
        assert!(text.lines().all(|l| l.starts_with('{')));
        std::fs::remove_dir_all(&dir).ok();
    }
}
