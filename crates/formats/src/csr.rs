//! Compressed Sparse Row (CSR) — the baseline encoding.
//!
//! The paper compares its bitmap format against CSR for both im2col
//! (Table III) and SpGEMM (cuSparse, Fig. 21). The crucial architectural
//! difference is captured by [`CsrMatrix::dependent_loads_per_access`]: each
//! non-zero access through CSR needs two extra data-dependent index reads
//! (row pointer, column index), which is what makes CSR-encoded im2col one to
//! two orders of magnitude slower than bitmap-encoded im2col at moderate
//! sparsity.

use dsstc_tensor::Matrix;

use crate::StorageFootprint;

/// A sparse matrix in CSR format: `row_ptr`, `col_idx`, `values`.
///
/// # Example
/// ```
/// use dsstc_tensor::Matrix;
/// use dsstc_formats::CsrMatrix;
/// let dense = Matrix::from_rows(&[&[0.0, 5.0], &[7.0, 0.0]]);
/// let csr = CsrMatrix::encode(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.decode(), dense);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Encodes a dense matrix into CSR.
    pub fn encode(dense: &Matrix) -> Self {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let x = dense[(r, c)];
                if x != 0.0 {
                    col_idx.push(c);
                    values.push(x);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Builds a CSR matrix directly from its three arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone row
    /// pointers, or column indices out of range).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must have equal length");
        assert_eq!(*row_ptr.last().unwrap(), values.len(), "last row_ptr must equal nnz");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr must be non-decreasing");
        assert!(col_idx.iter().all(|&c| c < cols), "column index out of range");
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The non-zero values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over `(col, value)` pairs of one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        range.map(move |i| (self.col_idx[i], self.values[i]))
    }

    /// Number of non-zeros in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        assert!(row < self.rows, "row out of bounds");
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Reads element `(row, col)` by scanning the row (as the hardware-less
    /// baseline would).
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.row_iter(row).find(|&(c, _)| c == col).map_or(0.0, |(_, v)| v)
    }

    /// Storage footprint: FP16 values, 4-byte column indices, 4-byte row
    /// pointers.
    pub fn storage(&self) -> StorageFootprint {
        StorageFootprint {
            value_bytes: self.nnz() as u64 * 2,
            metadata_bytes: (self.col_idx.len() * 4 + self.row_ptr.len() * 4) as u64,
        }
    }

    /// Extra data-dependent memory reads CSR needs per non-zero access
    /// compared with the bitmap format (row pointer + column index), the
    /// quantity the paper blames for CSR im2col's slowdown (Section VI-B).
    pub fn dependent_loads_per_access(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    #[test]
    fn encode_decode_roundtrip() {
        let dense = Matrix::random_sparse(41, 29, 0.85, SparsityPattern::Uniform, 2);
        let csr = CsrMatrix::encode(&dense);
        assert_eq!(csr.decode(), dense);
        assert_eq!(csr.nnz(), dense.nnz());
    }

    #[test]
    fn row_iter_and_nnz() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0], &[2.0, 0.0, 3.0]]);
        let csr = CsrMatrix::encode(&dense);
        assert_eq!(csr.row_nnz(0), 1);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 2);
        let row2: Vec<(usize, f32)> = csr.row_iter(2).collect();
        assert_eq!(row2, vec![(0, 2.0), (2, 3.0)]);
    }

    #[test]
    fn get_scans_row() {
        let dense = Matrix::from_rows(&[&[0.0, 4.0, 0.0, 9.0]]);
        let csr = CsrMatrix::encode(&dense);
        assert_eq!(csr.get(0, 1), 4.0);
        assert_eq!(csr.get(0, 2), 0.0);
        assert_eq!(csr.get(0, 3), 9.0);
    }

    #[test]
    fn from_parts_validates() {
        let csr = CsrMatrix::from_parts(2, 3, vec![0, 1, 2], vec![2, 0], vec![5.0, 6.0]);
        assert_eq!(csr.get(0, 2), 5.0);
        assert_eq!(csr.get(1, 0), 6.0);
    }

    #[test]
    #[should_panic(expected = "row_ptr must have")]
    fn from_parts_bad_row_ptr_len_panics() {
        let _ = CsrMatrix::from_parts(2, 3, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn from_parts_bad_col_idx_panics() {
        let _ = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn empty_matrix() {
        let dense = Matrix::zeros(3, 3);
        let csr = CsrMatrix::encode(&dense);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 1.0);
        assert_eq!(csr.decode(), dense);
    }

    #[test]
    fn storage_footprint_grows_with_nnz_unlike_bitmap() {
        let sparse = Matrix::random_sparse(64, 64, 0.95, SparsityPattern::Uniform, 1);
        let dense = Matrix::random_sparse(64, 64, 0.10, SparsityPattern::Uniform, 1);
        let s1 = CsrMatrix::encode(&sparse).storage();
        let s2 = CsrMatrix::encode(&dense).storage();
        assert!(s2.metadata_bytes > s1.metadata_bytes);
        assert_eq!(CsrMatrix::encode(&sparse).dependent_loads_per_access(), 2);
    }
}
