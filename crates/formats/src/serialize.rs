//! Versioned, checksummed binary serialisation of the bitmap encodings.
//!
//! The paper encodes pruned weights **offline** because weight sparsity is
//! static; this module is what makes that offline artifact durable: a
//! [`BitmapMatrix`] or [`TwoLevelBitmapMatrix`] round-trips through a small
//! hand-rolled little-endian container so a serving layer can persist its
//! encode cache on disk and skip the prune+encode warm-up after a restart.
//!
//! # Container layout
//!
//! ```text
//! magic   : 4 bytes  b"DSTC"
//! version : u16 LE   (FORMAT_VERSION)
//! kind    : u8       (1 = BitmapMatrix, 2 = TwoLevelBitmapMatrix)
//! length  : u64 LE   payload byte count
//! payload : `length` bytes (kind-specific, little-endian)
//! checksum: u64 LE   FNV-1a over the payload
//! ```
//!
//! Decoding **never panics**: a truncated stream, wrong magic, unsupported
//! version, flipped payload bit or internally inconsistent payload all
//! surface as a [`CodecError`]. Readers fully validate the payload through
//! the same invariants the in-memory constructors enforce, so a decoded
//! value is indistinguishable from a freshly encoded one (`PartialEq`
//! holds across a round-trip).

use std::io::{Read, Write};

use crate::bit_matrix::BitMatrix;
use crate::bitmap::{BitmapMatrix, VectorLayout};
use crate::two_level::TwoLevelBitmapMatrix;

/// The 4-byte container magic.
pub const MAGIC: [u8; 4] = *b"DSTC";

/// Current container format version. Bump on any layout change; readers
/// reject every other version with [`CodecError::UnsupportedVersion`].
pub const FORMAT_VERSION: u16 = 1;

const KIND_BITMAP: u8 = 1;
const KIND_TWO_LEVEL: u8 = 2;

/// Why a serialised encoding could not be read (or written).
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The stream ended before the declared content did.
    Truncated,
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The container was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The container holds a different encoding kind than requested.
    WrongKind {
        /// The kind tag the reader expected.
        expected: u8,
        /// The kind tag found in the stream.
        found: u8,
    },
    /// The payload does not match its checksum (bit rot / partial write).
    ChecksumMismatch,
    /// The payload is internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Truncated => f.write_str("stream truncated before the declared end"),
            CodecError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?}, expected {MAGIC:02x?}")
            }
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v}, this reader supports {FORMAT_VERSION}")
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong encoding kind {found}, expected {expected}")
            }
            CodecError::ChecksumMismatch => f.write_str("payload checksum mismatch"),
            CodecError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    }
}

/// FNV-1a 64-bit hash of `bytes` — the container checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Little-endian payload cursor.
// ---------------------------------------------------------------------------

/// Byte-slice reader with bounds-checked little-endian primitives.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("length exceeds usize"))
    }

    fn f32(&mut self) -> Result<f32, CodecError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn layout_tag(layout: VectorLayout) -> u8 {
    match layout {
        VectorLayout::ColumnMajor => 0,
        VectorLayout::RowMajor => 1,
    }
}

fn layout_from_tag(tag: u8) -> Result<VectorLayout, CodecError> {
    match tag {
        0 => Ok(VectorLayout::ColumnMajor),
        1 => Ok(VectorLayout::RowMajor),
        _ => Err(CodecError::Malformed("unknown vector layout tag")),
    }
}

// ---------------------------------------------------------------------------
// Payload encoders / decoders.
// ---------------------------------------------------------------------------

fn write_bit_matrix(out: &mut Vec<u8>, b: &BitMatrix) {
    push_u64(out, b.rows() as u64);
    push_u64(out, b.cols() as u64);
    for &word in b.words() {
        push_u64(out, word);
    }
}

fn read_bit_matrix(cur: &mut Cursor<'_>) -> Result<BitMatrix, CodecError> {
    let rows = cur.usize()?;
    let cols = cur.usize()?;
    if rows == 0 || cols == 0 {
        return Err(CodecError::Malformed("bit matrix dimensions must be non-zero"));
    }
    let word_count = rows
        .checked_mul(cols.div_ceil(64))
        .ok_or(CodecError::Malformed("bit matrix dimensions overflow"))?;
    // Guard the allocation against a bogus huge dimension: the words must
    // actually be present in the payload.
    if cur.bytes.len().saturating_sub(cur.pos) < word_count.saturating_mul(8) {
        return Err(CodecError::Truncated);
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(cur.u64()?);
    }
    BitMatrix::from_words(rows, cols, words).map_err(CodecError::Malformed)
}

fn write_bitmap_payload(out: &mut Vec<u8>, m: &BitmapMatrix) {
    out.push(layout_tag(m.layout()));
    write_bit_matrix(out, m.bitmap());
    push_u64(out, m.nnz() as u64);
    for &v in m.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_bitmap_payload(cur: &mut Cursor<'_>) -> Result<BitmapMatrix, CodecError> {
    let layout = layout_from_tag(cur.u8()?)?;
    let bitmap = read_bit_matrix(cur)?;
    let nnz = cur.usize()?;
    if cur.bytes.len().saturating_sub(cur.pos) < nnz.saturating_mul(4) {
        return Err(CodecError::Truncated);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(cur.f32()?);
    }
    BitmapMatrix::from_parts(layout, bitmap, values).map_err(CodecError::Malformed)
}

fn write_two_level_payload(out: &mut Vec<u8>, m: &TwoLevelBitmapMatrix) {
    push_u64(out, m.rows() as u64);
    push_u64(out, m.cols() as u64);
    push_u64(out, m.tile_rows() as u64);
    push_u64(out, m.tile_cols() as u64);
    out.push(layout_tag(m.layout()));
    write_bit_matrix(out, m.warp_bitmap());
    push_u64(out, m.tiles().len() as u64);
    for tile in m.tiles() {
        write_bitmap_payload(out, tile);
    }
}

fn read_two_level_payload(cur: &mut Cursor<'_>) -> Result<TwoLevelBitmapMatrix, CodecError> {
    let rows = cur.usize()?;
    let cols = cur.usize()?;
    let tile_rows = cur.usize()?;
    let tile_cols = cur.usize()?;
    let layout = layout_from_tag(cur.u8()?)?;
    let warp_bitmap = read_bit_matrix(cur)?;
    let tile_count = cur.usize()?;
    if tile_count != warp_bitmap.count_ones() {
        return Err(CodecError::Malformed("tile count does not match the warp bitmap population"));
    }
    let mut tiles = Vec::with_capacity(tile_count.min(1 << 20));
    for _ in 0..tile_count {
        tiles.push(read_bitmap_payload(cur)?);
    }
    TwoLevelBitmapMatrix::from_parts(rows, cols, tile_rows, tile_cols, layout, warp_bitmap, tiles)
        .map_err(CodecError::Malformed)
}

// ---------------------------------------------------------------------------
// Container framing.
// ---------------------------------------------------------------------------

fn write_container<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), CodecError> {
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    Ok(())
}

fn read_container<R: Read>(r: &mut R, expected_kind: u8) -> Result<Vec<u8>, CodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let mut version = [0u8; 2];
    r.read_exact(&mut version)?;
    let version = u16::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    if kind[0] != expected_kind {
        return Err(CodecError::WrongKind { expected: expected_kind, found: kind[0] });
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    // Incremental read: a bogus length on a truncated stream yields
    // Truncated instead of a huge up-front allocation.
    let mut payload = Vec::new();
    let read = r.take(len).read_to_end(&mut payload)?;
    if (read as u64) < len {
        return Err(CodecError::Truncated);
    }
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    if u64::from_le_bytes(checksum) != fnv1a(&payload) {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload)
}

fn decode_payload<T>(
    payload: &[u8],
    read: impl FnOnce(&mut Cursor<'_>) -> Result<T, CodecError>,
) -> Result<T, CodecError> {
    let mut cur = Cursor::new(payload);
    let value = read(&mut cur)?;
    if !cur.finished() {
        return Err(CodecError::Malformed("trailing bytes after the payload"));
    }
    Ok(value)
}

impl BitmapMatrix {
    /// Serialises into the versioned, checksummed container.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        let mut payload = Vec::new();
        write_bitmap_payload(&mut payload, self);
        write_container(w, KIND_BITMAP, &payload)
    }

    /// Deserialises from the container, validating magic, version, checksum
    /// and every structural invariant. Never panics on hostile input.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CodecError> {
        decode_payload(&read_container(r, KIND_BITMAP)?, read_bitmap_payload)
    }

    /// Serialises into an owned byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("writing to a Vec cannot fail");
        out
    }

    /// Deserialises from a byte buffer (see [`Self::read_from`]).
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CodecError> {
        Self::read_from(&mut bytes)
    }
}

impl TwoLevelBitmapMatrix {
    /// Serialises into the versioned, checksummed container.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        let mut payload = Vec::new();
        write_two_level_payload(&mut payload, self);
        write_container(w, KIND_TWO_LEVEL, &payload)
    }

    /// Deserialises from the container, validating magic, version, checksum
    /// and every structural invariant. Never panics on hostile input.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, CodecError> {
        decode_payload(&read_container(r, KIND_TWO_LEVEL)?, read_two_level_payload)
    }

    /// Serialises into an owned byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("writing to a Vec cannot fail");
        out
    }

    /// Deserialises from a byte buffer (see [`Self::read_from`]).
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CodecError> {
        Self::read_from(&mut bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::{Matrix, SparsityPattern};

    fn sample_two_level(seed: u64) -> TwoLevelBitmapMatrix {
        let dense = Matrix::random_sparse(50, 70, 0.8, SparsityPattern::BlockUneven, seed);
        TwoLevelBitmapMatrix::encode(&dense, 16, 32, VectorLayout::RowMajor)
    }

    #[test]
    fn bitmap_roundtrips_bit_for_bit() {
        for layout in [VectorLayout::ColumnMajor, VectorLayout::RowMajor] {
            let dense = Matrix::random_sparse(37, 129, 0.7, SparsityPattern::Uniform, 3);
            let enc = BitmapMatrix::encode(&dense, layout);
            let back = BitmapMatrix::from_bytes(&enc.to_bytes()).expect("roundtrip");
            assert_eq!(back, enc, "layout {layout:?}");
            assert_eq!(back.decode(), dense);
        }
    }

    #[test]
    fn two_level_roundtrips_bit_for_bit() {
        let enc = sample_two_level(9);
        let back = TwoLevelBitmapMatrix::from_bytes(&enc.to_bytes()).expect("roundtrip");
        assert_eq!(back, enc);
        assert_eq!(back.decode(), enc.decode());
        assert_eq!(back.storage(), enc.storage());
    }

    #[test]
    fn all_zero_matrix_roundtrips() {
        let enc =
            TwoLevelBitmapMatrix::encode(&Matrix::zeros(64, 64), 32, 32, VectorLayout::ColumnMajor);
        let back = TwoLevelBitmapMatrix::from_bytes(&enc.to_bytes()).expect("roundtrip");
        assert_eq!(back, enc);
        assert_eq!(back.nnz(), 0);
    }

    #[test]
    fn truncation_at_every_prefix_is_a_clean_error() {
        let bytes = sample_two_level(4).to_bytes();
        // Every strict prefix must fail without panicking — mostly with
        // Truncated, never with success.
        for cut in 0..bytes.len() {
            let result = TwoLevelBitmapMatrix::from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_two_level(5).to_bytes();
        bytes[0] = b'X';
        match TwoLevelBitmapMatrix::from_bytes(&bytes) {
            Err(CodecError::BadMagic(found)) => assert_eq!(&found[..1], b"X"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_two_level(6).to_bytes();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            TwoLevelBitmapMatrix::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dense = Matrix::random_sparse(8, 8, 0.5, SparsityPattern::Uniform, 7);
        let bitmap = BitmapMatrix::encode(&dense, VectorLayout::RowMajor);
        assert!(matches!(
            TwoLevelBitmapMatrix::from_bytes(&bitmap.to_bytes()),
            Err(CodecError::WrongKind { expected: 2, found: 1 })
        ));
        let two_level = sample_two_level(7);
        assert!(matches!(
            BitmapMatrix::from_bytes(&two_level.to_bytes()),
            Err(CodecError::WrongKind { expected: 1, found: 2 })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = sample_two_level(8).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            TwoLevelBitmapMatrix::from_bytes(&bytes),
            Err(CodecError::ChecksumMismatch | CodecError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_inside_the_payload_is_malformed() {
        let enc = sample_two_level(10);
        let mut bytes = Vec::new();
        let mut payload = Vec::new();
        write_two_level_payload(&mut payload, &enc);
        payload.push(0xAB); // one stray byte, checksum recomputed over it
        write_container(&mut bytes, KIND_TWO_LEVEL, &payload).unwrap();
        assert!(matches!(
            TwoLevelBitmapMatrix::from_bytes(&bytes),
            Err(CodecError::Malformed("trailing bytes after the payload"))
        ));
    }

    #[test]
    fn errors_render_and_expose_io_sources() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::ChecksumMismatch.to_string().contains("checksum"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CodecError::Malformed("x").to_string().contains('x'));
        assert!(CodecError::BadMagic(*b"ABCD").to_string().contains("magic"));
        let io = CodecError::from(std::io::Error::other("backing store gone"));
        assert!(std::error::Error::source(&io).is_some());
        let eof = CodecError::from(std::io::Error::from(std::io::ErrorKind::UnexpectedEof));
        assert!(matches!(eof, CodecError::Truncated));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
