//! Criterion bench behind the accumulation-buffer study (paper Fig. 18/19):
//! bank-conflict simulation with and without the operand collector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc_sim::{AccumulationBuffer, OtcConfig};
use std::hint::black_box;

fn scatter_trace(instructions: usize, accesses_per_instr: usize) -> Vec<Vec<usize>> {
    // Deterministic pseudo-random scatter across a 32x32 partial matrix.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1024) as usize
    };
    (0..instructions).map(|_| (0..accesses_per_instr).map(|_| next()).collect()).collect()
}

fn bench_accumulation_buffer(c: &mut Criterion) {
    let buffer = AccumulationBuffer::from_otc(&OtcConfig::paper());
    let mut group = c.benchmark_group("accum_buffer_scatter");
    for &instrs in &[16usize, 128, 1024] {
        let trace = scatter_trace(instrs, 16);
        group.bench_with_input(BenchmarkId::new("without_collector", instrs), &trace, |b, t| {
            b.iter(|| black_box(buffer.simulate_without_collector(t)));
        });
        group.bench_with_input(BenchmarkId::new("with_collector", instrs), &trace, |b, t| {
            b.iter(|| black_box(buffer.simulate_with_collector(t)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accumulation_buffer);
criterion_main!(benches);
