//! Open-loop traffic generation.
//!
//! A closed-loop driver (submit a burst, wait for it to drain) measures the
//! server at whatever rate the server itself sustains; latency-vs-load
//! behaviour only becomes visible under **open-loop** arrivals, where
//! requests keep arriving at the offered rate no matter how far behind the
//! server falls. [`PoissonArrivals`] provides the standard memoryless
//! arrival process for that: inter-arrival gaps are i.i.d. exponential with
//! mean `1 / rate`, drawn from a seeded deterministic generator so a sweep
//! cell is exactly reproducible.
//!
//! Two fidelity tools for **high** offered rates, where a single submitter
//! thread pacing with `thread::sleep` falls behind its own arrival clock:
//!
//! * [`PoissonArrivals::split`] decomposes the process into independent
//!   sub-processes of `rate / n` each — the superposition of independent
//!   Poisson processes is a Poisson process at the summed rate, so driving
//!   one sub-process per submitter thread offers the same aggregate load
//!   with n× less pacing pressure per thread; and
//! * [`pace_until`] sleeps coarsely and **busy-spins the final stretch**,
//!   hitting arrival instants with microsecond-level accuracy instead of
//!   the scheduler's wake-up granularity.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How close to the deadline [`pace_until`] switches from sleeping to
/// busy-spinning. Coarser than any OS wake-up jitter we care about, tiny
/// enough that the spin burns microseconds, not milliseconds.
const SPIN_WINDOW: Duration = Duration::from_micros(200);

/// Waits until `deadline` with hybrid sleep + busy-spin pacing: coarse
/// sleeps up to a fixed spin window (200 µs) before the deadline, then a
/// spin loop. An
/// open-loop submitter paced this way stays faithful to its arrival clock
/// at offered rates well past 10k requests/second, where plain
/// `thread::sleep` over-shoots every gap. Returns immediately when the
/// deadline already passed (the open-loop contract: late, never early).
pub fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// A seeded Poisson arrival process: an infinite iterator of inter-arrival
/// gaps with exponential distribution at a configured mean rate.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_rps: f64,
    seed: u64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// An arrival process offering `rate_rps` requests per second on
    /// average, reproducible from `seed`.
    ///
    /// # Panics
    /// Panics if `rate_rps` is not strictly positive and finite.
    pub fn new(rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps > 0.0 && rate_rps.is_finite(), "arrival rate must be positive and finite");
        PoissonArrivals { rate_rps, seed, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configured mean arrival rate, requests per second.
    pub fn rate_rps(&self) -> f64 {
        self.rate_rps
    }

    /// The mean inter-arrival gap, `1 / rate`.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.rate_rps)
    }

    /// Draws the next inter-arrival gap: `-ln(1 - u) / rate` with `u`
    /// uniform in `[0, 1)` (inverse-CDF sampling of the exponential
    /// distribution).
    pub fn next_gap(&mut self) -> Duration {
        let u: f64 = self.rng.random_range(0.0f64..1.0);
        Duration::from_secs_f64(-(1.0 - u).ln() / self.rate_rps)
    }

    /// Splits the process into `parts` independent sub-processes of
    /// `rate / parts` each, with seeds derived deterministically from this
    /// process's seed. Their superposition is again Poisson at the full
    /// rate, so one sub-process per submitter thread offers the same
    /// aggregate load while each thread paces `parts`× fewer arrivals.
    ///
    /// # Panics
    /// Panics if `parts` is zero.
    pub fn split(&self, parts: usize) -> Vec<PoissonArrivals> {
        assert!(parts > 0, "at least one sub-process is required");
        (0..parts as u64)
            .map(|i| {
                PoissonArrivals::new(
                    self.rate_rps / parts as f64,
                    self.seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect()
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(self.next_gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_reproduces_the_exact_arrival_sequence() {
        let a: Vec<Duration> = PoissonArrivals::new(500.0, 42).take(256).collect();
        let b: Vec<Duration> = PoissonArrivals::new(500.0, 42).take(256).collect();
        assert_eq!(a, b, "same seed must replay the identical gap sequence");
        let c: Vec<Duration> = PoissonArrivals::new(500.0, 43).take(256).collect();
        assert_ne!(a, c, "different seeds must decorrelate the sequence");
    }

    #[test]
    fn empirical_mean_matches_the_configured_rate_within_5_percent() {
        let rate = 1000.0; // 1 ms mean gap
        let mut gen = PoissonArrivals::new(rate, 7);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| gen.next_gap().as_secs_f64()).sum();
        let mean = total / f64::from(n);
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean gap {mean} s vs expected {expected} s"
        );
        assert_eq!(gen.rate_rps(), rate);
        assert!((gen.mean_gap().as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn gaps_are_finite_and_non_negative() {
        let mut gen = PoissonArrivals::new(250.0, 9);
        for _ in 0..10_000 {
            let gap = gen.next_gap().as_secs_f64();
            assert!(gap.is_finite());
            assert!(gap >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 1);
    }

    #[test]
    fn split_preserves_the_aggregate_rate_and_is_deterministic() {
        let gen = PoissonArrivals::new(8000.0, 11);
        let parts = gen.split(4);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(PoissonArrivals::rate_rps).sum();
        assert!((total - 8000.0).abs() < 1e-9);
        // Deterministic: splitting again replays identical sub-streams.
        let again = PoissonArrivals::new(8000.0, 11).split(4);
        for (mut a, mut b) in parts.into_iter().zip(again) {
            for _ in 0..64 {
                assert_eq!(a.next_gap(), b.next_gap());
            }
        }
    }

    #[test]
    fn split_sub_streams_are_decorrelated_and_run_at_the_divided_rate() {
        // Superposition property, checked empirically: each of the four
        // sub-processes of a 2000 rps split runs at ~500 rps, so their
        // merged stream offers the configured aggregate load.
        let mut parts = PoissonArrivals::new(2000.0, 3).split(4);
        let per_stream = 2500;
        for p in &mut parts {
            let span: f64 = (0..per_stream).map(|_| p.next_gap().as_secs_f64()).sum();
            let rate = f64::from(per_stream) / span;
            assert!((rate - 500.0).abs() / 500.0 < 0.1, "sub-stream rate {rate}");
        }
        // Distinct sub-streams draw distinct gaps.
        let mut a = PoissonArrivals::new(2000.0, 3).split(2).remove(0);
        let mut b = PoissonArrivals::new(2000.0, 3).split(2).remove(1);
        let gaps_a: Vec<_> = (0..32).map(|_| a.next_gap()).collect();
        let gaps_b: Vec<_> = (0..32).map(|_| b.next_gap()).collect();
        assert_ne!(gaps_a, gaps_b);
    }

    #[test]
    #[should_panic(expected = "at least one sub-process")]
    fn zero_way_split_panics() {
        let _ = PoissonArrivals::new(100.0, 1).split(0);
    }

    #[test]
    fn pace_until_is_late_never_early_and_tight() {
        // Sub-millisecond gaps paced back to back: every deadline is met
        // (never early — the hard contract), and the *typical* overshoot
        // stays far below the ~1 ms+ error plain sleep exhibits for
        // microsecond gaps. The tightness bound is asserted on the median,
        // not the worst case, so a single scheduler hiccup on a loaded CI
        // runner cannot fail the test.
        let gap = Duration::from_micros(250);
        let mut deadline = Instant::now();
        let mut overshoots = Vec::with_capacity(40);
        for _ in 0..40 {
            deadline += gap;
            pace_until(deadline);
            let now = Instant::now();
            assert!(now >= deadline, "paced wake-up must never be early");
            overshoots.push(now - deadline);
        }
        overshoots.sort();
        let median = overshoots[overshoots.len() / 2];
        assert!(
            median < Duration::from_millis(5),
            "median overshoot {median:?} is scheduler-bound, not spin-bound"
        );
        // A deadline in the past returns immediately.
        let past = Instant::now() - Duration::from_millis(1);
        let started = Instant::now();
        pace_until(past);
        assert!(started.elapsed() < Duration::from_millis(2));
    }
}
