//! Metrics exposition: renders a [`ServerStats`] snapshot plus the live
//! [`MetricsRegistry`] in Prometheus text format, and (on Linux) serves it
//! over HTTP on a dedicated `--metrics-addr` listener built on the same
//! dependency-free epoll loop as the wire front-end
//! ([`crate::net::poll`]). Metric families and names are catalogued in
//! `docs/OBSERVABILITY.md`.

use crate::stats::ServerStats;
use crate::telemetry::metrics::MetricsRegistry;

/// Opens a metric family: `# HELP` + `# TYPE` lines.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// One integer sample. `labels` is a pre-rendered label set without
/// braces (empty for none).
fn sample_u64(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// One float sample, fixed-point so the text stays locale/exponent free.
fn sample_f64(out: &mut String, name: &str, labels: &str, value: f64) {
    let value = if value.is_finite() { value } else { 0.0 };
    if labels.is_empty() {
        out.push_str(&format!("{name} {value:.3}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value:.3}\n"));
    }
}

/// Renders the full exposition payload: snapshot-derived families
/// (server, per-priority, per-device, encode-cache and wire counters)
/// followed by everything registered in `registry` (live counters and
/// log-bucketed latency histograms).
pub fn render_prometheus(stats: &ServerStats, registry: &MetricsRegistry) -> String {
    let mut out = String::new();

    family(&mut out, "dsstc_requests_completed_total", "counter", "Requests answered");
    sample_u64(&mut out, "dsstc_requests_completed_total", "", stats.completed_requests);
    family(&mut out, "dsstc_batches_executed_total", "counter", "Batches executed");
    sample_u64(&mut out, "dsstc_batches_executed_total", "", stats.executed_batches);
    family(&mut out, "dsstc_throughput_rps", "gauge", "Completed requests per second since boot");
    sample_f64(&mut out, "dsstc_throughput_rps", "", stats.throughput_rps);
    family(&mut out, "dsstc_mean_batch_size", "gauge", "Mean requests per executed batch");
    sample_f64(&mut out, "dsstc_mean_batch_size", "", stats.mean_batch_size);

    family(&mut out, "dsstc_queue_us", "gauge", "Reservoir queue-wait percentiles, microseconds");
    sample_f64(&mut out, "dsstc_queue_us", "quantile=\"0.5\"", stats.queue_p50_us);
    sample_f64(&mut out, "dsstc_queue_us", "quantile=\"0.99\"", stats.queue_p99_us);
    family(
        &mut out,
        "dsstc_execute_us",
        "gauge",
        "Reservoir execute-time percentiles, microseconds",
    );
    sample_f64(&mut out, "dsstc_execute_us", "quantile=\"0.5\"", stats.execute_p50_us);
    sample_f64(&mut out, "dsstc_execute_us", "quantile=\"0.99\"", stats.execute_p99_us);

    family(
        &mut out,
        "dsstc_priority_requests_total",
        "counter",
        "Requests answered per priority class",
    );
    for p in &stats.per_priority {
        let labels = format!("priority=\"{}\"", p.priority.name());
        sample_u64(&mut out, "dsstc_priority_requests_total", &labels, p.completed);
    }
    family(
        &mut out,
        "dsstc_priority_queue_us",
        "gauge",
        "Per-priority queue-wait percentiles, microseconds",
    );
    for p in &stats.per_priority {
        let base = format!("priority=\"{}\"", p.priority.name());
        sample_f64(
            &mut out,
            "dsstc_priority_queue_us",
            &format!("{base},quantile=\"0.5\""),
            p.queue_p50_us,
        );
        sample_f64(
            &mut out,
            "dsstc_priority_queue_us",
            &format!("{base},quantile=\"0.99\""),
            p.queue_p99_us,
        );
    }
    family(
        &mut out,
        "dsstc_shed_requests_total",
        "counter",
        "Requests rejected at submit by admission control, per priority class",
    );
    for p in &stats.per_priority {
        let labels = format!("priority=\"{}\"", p.priority.name());
        sample_u64(&mut out, "dsstc_shed_requests_total", &labels, p.shed);
    }

    family(&mut out, "dsstc_device_batches_total", "counter", "Batches executed per device");
    for (index, d) in stats.per_device.iter().enumerate() {
        let labels = format!("device=\"{index}\",gpu=\"{}\"", d.name);
        sample_u64(&mut out, "dsstc_device_batches_total", &labels, d.batches);
    }
    family(
        &mut out,
        "dsstc_device_modelled_busy_us_total",
        "counter",
        "Modelled busy time charged per device, microseconds",
    );
    for (index, d) in stats.per_device.iter().enumerate() {
        let labels = format!("device=\"{index}\",gpu=\"{}\"", d.name);
        sample_f64(&mut out, "dsstc_device_modelled_busy_us_total", &labels, d.modelled_busy_us);
    }
    family(
        &mut out,
        "dsstc_device_utilisation",
        "gauge",
        "Share of the pool's modelled makespan each device was busy",
    );
    for (index, d) in stats.per_device.iter().enumerate() {
        let labels = format!("device=\"{index}\",gpu=\"{}\"", d.name);
        sample_f64(&mut out, "dsstc_device_utilisation", &labels, d.utilisation);
    }
    family(
        &mut out,
        "dsstc_modelled_makespan_us",
        "gauge",
        "Largest per-device modelled busy total, microseconds",
    );
    sample_f64(&mut out, "dsstc_modelled_makespan_us", "", stats.modelled_makespan_us);

    family(&mut out, "dsstc_encode_cache_hits_total", "counter", "In-memory encode-cache hits");
    sample_u64(&mut out, "dsstc_encode_cache_hits_total", "", stats.encode_hits);
    family(&mut out, "dsstc_encode_cache_misses_total", "counter", "Encode-cache misses");
    sample_u64(&mut out, "dsstc_encode_cache_misses_total", "", stats.encode_misses);
    family(
        &mut out,
        "dsstc_encode_cache_disk_restores_total",
        "counter",
        "Misses served by restoring a persisted artifact",
    );
    sample_u64(&mut out, "dsstc_encode_cache_disk_restores_total", "", stats.encode_disk_loads);
    family(
        &mut out,
        "dsstc_encode_cache_fresh_encodes_total",
        "counter",
        "Misses that paid the full prune+encode",
    );
    sample_u64(&mut out, "dsstc_encode_cache_fresh_encodes_total", "", stats.encode_fresh);
    family(
        &mut out,
        "dsstc_encode_cache_evictions_total",
        "counter",
        "Artifacts LRU-evicted from the in-memory tier",
    );
    sample_u64(&mut out, "dsstc_encode_cache_evictions_total", "", stats.encode_evictions);
    family(
        &mut out,
        "dsstc_cache_warm_restored_total",
        "counter",
        "Artifacts the boot-time warmer restored into the memory tier",
    );
    sample_u64(&mut out, "dsstc_cache_warm_restored_total", "", stats.encode_warm_restored);
    family(
        &mut out,
        "dsstc_cache_warm_reencoded_total",
        "counter",
        "Stale-spec artifacts the warmer re-encoded for the current pool",
    );
    sample_u64(&mut out, "dsstc_cache_warm_reencoded_total", "", stats.encode_warm_reencoded);
    family(
        &mut out,
        "dsstc_cache_warm_healed_total",
        "counter",
        "Corrupt artifacts the warmer healed with a fresh encode",
    );
    sample_u64(&mut out, "dsstc_cache_warm_healed_total", "", stats.encode_warm_healed);
    family(
        &mut out,
        "dsstc_cache_store_entries",
        "gauge",
        "Artifacts tracked by the on-disk store manifest",
    );
    sample_u64(&mut out, "dsstc_cache_store_entries", "", stats.store_entries);
    family(
        &mut out,
        "dsstc_cache_store_bytes",
        "gauge",
        "Bytes of artifact files tracked by the store manifest",
    );
    sample_u64(&mut out, "dsstc_cache_store_bytes", "", stats.store_bytes);
    family(
        &mut out,
        "dsstc_cache_store_gc_removed_total",
        "counter",
        "Artifacts removed from the on-disk store by garbage collection",
    );
    sample_u64(&mut out, "dsstc_cache_store_gc_removed_total", "", stats.store_gc_removed);
    family(
        &mut out,
        "dsstc_encode_cache_hit_rate",
        "gauge",
        "Fraction of lookups served from memory",
    );
    sample_f64(&mut out, "dsstc_encode_cache_hit_rate", "", stats.encode_hit_rate);
    family(
        &mut out,
        "dsstc_timing_cache_hit_rate",
        "gauge",
        "Fraction of modelled-latency lookups served from cache",
    );
    sample_f64(&mut out, "dsstc_timing_cache_hit_rate", "", stats.timing_hit_rate);

    if let Some(wire) = &stats.wire {
        family(
            &mut out,
            "dsstc_wire_connections_accepted_total",
            "counter",
            "Connections accepted",
        );
        sample_u64(
            &mut out,
            "dsstc_wire_connections_accepted_total",
            "",
            wire.connections_accepted,
        );
        family(
            &mut out,
            "dsstc_wire_connections_rejected_total",
            "counter",
            "Connections refused over the limit",
        );
        sample_u64(
            &mut out,
            "dsstc_wire_connections_rejected_total",
            "",
            wire.connections_rejected,
        );
        family(&mut out, "dsstc_wire_connections_closed_total", "counter", "Connections closed");
        sample_u64(&mut out, "dsstc_wire_connections_closed_total", "", wire.connections_closed);
        family(&mut out, "dsstc_wire_open_connections", "gauge", "Connections currently open");
        sample_u64(&mut out, "dsstc_wire_open_connections", "", wire.open_connections());
        family(&mut out, "dsstc_wire_frames_received_total", "counter", "Request frames decoded");
        sample_u64(&mut out, "dsstc_wire_frames_received_total", "", wire.frames_received);
        family(&mut out, "dsstc_wire_frames_sent_total", "counter", "Response frames sent");
        sample_u64(&mut out, "dsstc_wire_frames_sent_total", "", wire.frames_sent);
        family(&mut out, "dsstc_wire_error_frames_total", "counter", "Error frames generated");
        sample_u64(&mut out, "dsstc_wire_error_frames_total", "", wire.error_frames_sent);
        family(
            &mut out,
            "dsstc_wire_bytes_received_total",
            "counter",
            "Raw bytes read off sockets",
        );
        sample_u64(&mut out, "dsstc_wire_bytes_received_total", "", wire.bytes_received);
        family(
            &mut out,
            "dsstc_wire_bytes_sent_total",
            "counter",
            "Raw bytes the sockets accepted",
        );
        sample_u64(&mut out, "dsstc_wire_bytes_sent_total", "", wire.bytes_sent);
        family(&mut out, "dsstc_wire_decode_errors_total", "counter", "Framing failures");
        sample_u64(&mut out, "dsstc_wire_decode_errors_total", "", wire.decode_errors);
        family(
            &mut out,
            "dsstc_wire_requests_rejected_total",
            "counter",
            "Requests refused at submit time",
        );
        sample_u64(&mut out, "dsstc_wire_requests_rejected_total", "", wire.requests_rejected);
        family(
            &mut out,
            "dsstc_wire_shed_total",
            "counter",
            "Wire requests answered with a ShedLoad error frame, per priority class",
        );
        for &priority in &crate::request::Priority::ALL {
            let labels = format!("priority=\"{}\"", priority.name());
            sample_u64(&mut out, "dsstc_wire_shed_total", &labels, wire.shed_for(priority));
        }
        family(&mut out, "dsstc_wire_in_flight", "gauge", "Wire requests inside the runtime");
        sample_u64(&mut out, "dsstc_wire_in_flight", "", wire.in_flight);
        family(
            &mut out,
            "dsstc_wire_outbound_overflows_total",
            "counter",
            "Connections poisoned for breaching the outbound buffer cap",
        );
        sample_u64(&mut out, "dsstc_wire_outbound_overflows_total", "", wire.outbound_overflows);

        // Per-reactor rows: one sample per event loop, labelled
        // `reactor="i"` in reactor order (reactor 0 owns the listener).
        // Field-wise, the merged families above are the exact sum of these
        // rows — CI scrapes both and asserts the equality.
        if !stats.wire_reactors.is_empty() {
            family(
                &mut out,
                "dsstc_wire_reactor_connections_accepted_total",
                "counter",
                "Connections adopted per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(
                    &mut out,
                    "dsstc_wire_reactor_connections_accepted_total",
                    &labels,
                    r.connections_accepted,
                );
            }
            family(
                &mut out,
                "dsstc_wire_reactor_connections_closed_total",
                "counter",
                "Connections closed per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(
                    &mut out,
                    "dsstc_wire_reactor_connections_closed_total",
                    &labels,
                    r.connections_closed,
                );
            }
            family(
                &mut out,
                "dsstc_wire_reactor_frames_received_total",
                "counter",
                "Request frames decoded per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(
                    &mut out,
                    "dsstc_wire_reactor_frames_received_total",
                    &labels,
                    r.frames_received,
                );
            }
            family(
                &mut out,
                "dsstc_wire_reactor_frames_sent_total",
                "counter",
                "Response frames sent per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(
                    &mut out,
                    "dsstc_wire_reactor_frames_sent_total",
                    &labels,
                    r.frames_sent,
                );
            }
            family(
                &mut out,
                "dsstc_wire_reactor_bytes_received_total",
                "counter",
                "Raw bytes read off sockets per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(
                    &mut out,
                    "dsstc_wire_reactor_bytes_received_total",
                    &labels,
                    r.bytes_received,
                );
            }
            family(
                &mut out,
                "dsstc_wire_reactor_bytes_sent_total",
                "counter",
                "Raw bytes the sockets accepted per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(&mut out, "dsstc_wire_reactor_bytes_sent_total", &labels, r.bytes_sent);
            }
            family(
                &mut out,
                "dsstc_wire_reactor_in_flight",
                "gauge",
                "Wire requests inside the runtime per reactor",
            );
            for (index, r) in stats.wire_reactors.iter().enumerate() {
                let labels = format!("reactor=\"{index}\"");
                sample_u64(&mut out, "dsstc_wire_reactor_in_flight", &labels, r.in_flight);
            }
        }
    }

    if let Some(cluster) = &stats.cluster {
        let node = format!("node=\"{}\"", cluster.node_id);
        family(
            &mut out,
            "dsstc_cluster_shard_map_version",
            "gauge",
            "Current shard-map version (bumped on every liveness transition)",
        );
        sample_u64(&mut out, "dsstc_cluster_shard_map_version", &node, cluster.shard_map_version);
        family(
            &mut out,
            "dsstc_cluster_peers_alive",
            "gauge",
            "Cluster members currently marked alive",
        );
        sample_u64(&mut out, "dsstc_cluster_peers_alive", &node, cluster.peers_alive);
        family(&mut out, "dsstc_cluster_peers_total", "gauge", "All known cluster members");
        sample_u64(&mut out, "dsstc_cluster_peers_total", &node, cluster.peers_total);
        family(
            &mut out,
            "dsstc_cluster_redirects_total",
            "counter",
            "Requests answered with a NotMine redirect",
        );
        sample_u64(&mut out, "dsstc_cluster_redirects_total", &node, cluster.redirects);
        family(
            &mut out,
            "dsstc_cluster_failover_serves_total",
            "counter",
            "Requests served as a non-primary replica of their shard",
        );
        sample_u64(&mut out, "dsstc_cluster_failover_serves_total", &node, cluster.failover_serves);
        family(
            &mut out,
            "dsstc_cluster_hellos_total",
            "counter",
            "Hello handshakes answered with a shard map",
        );
        sample_u64(&mut out, "dsstc_cluster_hellos_total", &node, cluster.hellos);
        family(
            &mut out,
            "dsstc_cluster_auth_failures_total",
            "counter",
            "Hellos rejected for a wrong or missing auth token",
        );
        sample_u64(&mut out, "dsstc_cluster_auth_failures_total", &node, cluster.auth_failures);
        family(&mut out, "dsstc_cluster_peer_probes_total", "counter", "Peer liveness probes sent");
        sample_u64(&mut out, "dsstc_cluster_peer_probes_total", &node, cluster.peer_probes);
        family(
            &mut out,
            "dsstc_cluster_peer_failures_total",
            "counter",
            "Peer liveness probes that failed",
        );
        sample_u64(&mut out, "dsstc_cluster_peer_failures_total", &node, cluster.peer_failures);
    }

    registry.render(&mut out);
    out
}

#[cfg(target_os = "linux")]
pub use self::listener::MetricsServer;

#[cfg(target_os = "linux")]
mod listener {
    //! The `--metrics-addr` scrape listener: a tiny single-threaded
    //! HTTP/1.0 responder on the [`crate::net::poll`] epoll loop. Every
    //! request — whatever the path — is answered with the current
    //! exposition payload and `Connection: close`, which is all a
    //! Prometheus scraper (or `curl`) needs.

    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    use crate::net::poll::{Poller, Token, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

    /// The function producing the exposition payload on every scrape.
    pub type MetricsSource = Arc<dyn Fn() -> String + Send + Sync>;

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    /// Request headers larger than this poison the connection.
    const MAX_REQUEST_BYTES: usize = 8 * 1024;

    struct ScrapeConn {
        stream: TcpStream,
        inbound: Vec<u8>,
        outbound: Vec<u8>,
        written: usize,
    }

    /// A metrics endpoint bound to its own address, serving scrapes from
    /// a dedicated thread until [`shutdown`](MetricsServer::shutdown).
    pub struct MetricsServer {
        local_addr: SocketAddr,
        stop: Arc<AtomicBool>,
        waker: Arc<Waker>,
        handle: Option<JoinHandle<()>>,
    }

    impl std::fmt::Debug for MetricsServer {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MetricsServer").field("local_addr", &self.local_addr).finish()
        }
    }

    impl MetricsServer {
        /// Binds `addr` and starts answering scrapes with `source`'s
        /// output. Fails fast on bind/epoll errors.
        pub fn start(addr: SocketAddr, source: MetricsSource) -> io::Result<Self> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let local_addr = listener.local_addr()?;
            let poller = Poller::new()?;
            poller.register(listener.as_raw_fd(), EPOLLIN, LISTENER)?;
            let waker = Arc::new(Waker::new(&poller, WAKER)?);
            let stop = Arc::new(AtomicBool::new(false));
            let thread_stop = Arc::clone(&stop);
            let thread_waker = Arc::clone(&waker);
            let handle = std::thread::Builder::new()
                .name("dsstc-metrics".into())
                .spawn(move || run(listener, poller, thread_waker, thread_stop, source))
                .expect("spawn metrics thread");
            Ok(MetricsServer { local_addr, stop, waker, handle: Some(handle) })
        }

        /// The bound address (useful with port 0).
        pub fn local_addr(&self) -> SocketAddr {
            self.local_addr
        }

        /// Stops the listener thread and closes every open scrape
        /// connection.
        pub fn shutdown(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            self.waker.wake();
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for MetricsServer {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    fn run(
        listener: TcpListener,
        poller: Poller,
        waker: Arc<Waker>,
        stop: Arc<AtomicBool>,
        source: MetricsSource,
    ) {
        let mut conns: HashMap<u64, ScrapeConn> = HashMap::new();
        let mut next_token = 2u64;
        let mut events = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            events.clear();
            if poller.wait(&mut events, None).is_err() {
                break;
            }
            for event in &events {
                match event.token {
                    WAKER => waker.drain(),
                    LISTENER => loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                let token = next_token;
                                next_token += 1;
                                if poller
                                    .register(
                                        stream.as_raw_fd(),
                                        EPOLLIN | EPOLLRDHUP,
                                        Token(token),
                                    )
                                    .is_err()
                                {
                                    continue;
                                }
                                conns.insert(
                                    token,
                                    ScrapeConn {
                                        stream,
                                        inbound: Vec::new(),
                                        outbound: Vec::new(),
                                        written: 0,
                                    },
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    },
                    Token(token) => {
                        let done = match conns.get_mut(&token) {
                            Some(conn) => service(
                                conn,
                                event.readable(),
                                event.writable(),
                                &source,
                                &poller,
                                token,
                            ),
                            None => continue,
                        };
                        if done {
                            if let Some(conn) = conns.remove(&token) {
                                let _ = poller.deregister(conn.stream.as_raw_fd());
                            }
                        }
                    }
                }
            }
        }
        // Shutdown: drop every connection (deregistered by fd close).
        conns.clear();
    }

    /// Advances one scrape connection; returns true when it should close.
    fn service(
        conn: &mut ScrapeConn,
        readable: bool,
        writable: bool,
        source: &MetricsSource,
        poller: &Poller,
        token: u64,
    ) -> bool {
        if readable && conn.outbound.is_empty() {
            let mut buffer = [0u8; 1024];
            loop {
                match conn.stream.read(&mut buffer) {
                    Ok(0) => return true, // EOF before a full request
                    Ok(n) => {
                        conn.inbound.extend_from_slice(&buffer[..n]);
                        if conn.inbound.len() > MAX_REQUEST_BYTES {
                            return true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                }
            }
            // A blank line ends the request head; the body (none expected
            // from GET) is ignored.
            if conn.inbound.windows(4).any(|w| w == b"\r\n\r\n")
                || conn.inbound.windows(2).any(|w| w == b"\n\n")
            {
                let body = source();
                conn.outbound = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes();
                let _ = poller.reregister(conn.stream.as_raw_fd(), EPOLLOUT, Token(token));
            }
        }
        if (writable || !conn.outbound.is_empty()) && conn.written < conn.outbound.len() {
            loop {
                match conn.stream.write(&conn.outbound[conn.written..]) {
                    Ok(0) => return true,
                    Ok(n) => {
                        conn.written += n;
                        if conn.written == conn.outbound.len() {
                            return true; // fully flushed: Connection: close
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                }
            }
        }
        false
    }
}

#[cfg(test)]
pub(crate) use tests::sample_stats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use crate::stats::{ClusterStats, DeviceStats, PriorityLatency, ServerStats, WireStats};

    /// A fully-populated snapshot for exposition tests (and the render
    /// golden test in `stats.rs`).
    pub(crate) fn sample_stats() -> ServerStats {
        ServerStats {
            completed_requests: 120,
            executed_batches: 30,
            throughput_rps: 240.5,
            mean_batch_size: 4.0,
            max_batch_size: 8,
            batch_histogram: vec![2, 4, 8, 16],
            queue_p50_us: 150.0,
            queue_p99_us: 900.0,
            execute_p50_us: 400.0,
            execute_p99_us: 1200.0,
            modelled_p50_us: 85.5,
            per_priority: Priority::ALL
                .iter()
                .map(|&priority| PriorityLatency {
                    priority,
                    completed: 40,
                    shed: match priority {
                        Priority::Low => 6,
                        Priority::Normal => 2,
                        Priority::High => 0,
                    },
                    queue_p50_us: 100.0,
                    queue_p99_us: 800.0,
                    execute_p50_us: 350.0,
                    execute_p99_us: 1100.0,
                })
                .collect(),
            per_device: vec![
                DeviceStats {
                    name: "Tesla V100".to_string(),
                    batches: 18,
                    modelled_busy_us: 9000.0,
                    utilisation: 1.0,
                },
                DeviceStats {
                    name: "A100".to_string(),
                    batches: 12,
                    modelled_busy_us: 6300.0,
                    utilisation: 0.7,
                },
            ],
            modelled_makespan_us: 9000.0,
            encode_hits: 28,
            encode_misses: 4,
            encode_disk_loads: 3,
            encode_fresh: 1,
            encode_evictions: 2,
            encode_fresh_ms: 120.5,
            encode_disk_ms: 6.25,
            encode_warm_restored: 3,
            encode_warm_reencoded: 1,
            encode_warm_healed: 1,
            store_entries: 4,
            store_bytes: 88_000,
            store_gc_removed: 2,
            encode_hit_rate: 0.875,
            timing_hit_rate: 0.9,
            wire: Some(WireStats {
                connections_accepted: 5,
                connections_rejected: 1,
                connections_closed: 3,
                frames_received: 120,
                frames_sent: 118,
                error_frames_sent: 2,
                bytes_received: 44_000,
                bytes_sent: 52_000,
                decode_errors: 1,
                requests_rejected: 1,
                in_flight: 0,
                outbound_overflows: 1,
                shed_low: 3,
                shed_normal: 1,
                shed_high: 0,
            }),
            // A two-reactor split whose field-wise sum is `wire` above.
            wire_reactors: vec![
                WireStats {
                    connections_accepted: 3,
                    connections_rejected: 1,
                    connections_closed: 2,
                    frames_received: 70,
                    frames_sent: 69,
                    error_frames_sent: 1,
                    bytes_received: 26_000,
                    bytes_sent: 30_000,
                    decode_errors: 1,
                    requests_rejected: 1,
                    in_flight: 0,
                    outbound_overflows: 1,
                    shed_low: 2,
                    shed_normal: 1,
                    shed_high: 0,
                },
                WireStats {
                    connections_accepted: 2,
                    connections_rejected: 0,
                    connections_closed: 1,
                    frames_received: 50,
                    frames_sent: 49,
                    error_frames_sent: 1,
                    bytes_received: 18_000,
                    bytes_sent: 22_000,
                    decode_errors: 0,
                    requests_rejected: 0,
                    in_flight: 0,
                    outbound_overflows: 0,
                    shed_low: 1,
                    shed_normal: 0,
                    shed_high: 0,
                },
            ],
            cluster: Some(ClusterStats {
                node_id: 2,
                shard_map_version: 5,
                peers_alive: 2,
                peers_total: 3,
                redirects: 7,
                failover_serves: 3,
                hellos: 12,
                auth_failures: 1,
                peer_probes: 40,
                peer_failures: 4,
            }),
        }
    }

    #[test]
    fn exposition_covers_every_family() {
        let registry = MetricsRegistry::new();
        registry.counter("dsstc_traces_recorded_total", "", "traces").add(7);
        registry.histogram("dsstc_e2e_us", "priority=\"high\"", "end-to-end latency").record(333);
        let text = render_prometheus(&sample_stats(), &registry);
        // Snapshot-derived families.
        assert!(text.contains("dsstc_requests_completed_total 120"));
        assert!(text.contains("dsstc_batches_executed_total 30"));
        assert!(text.contains("dsstc_throughput_rps 240.500"));
        assert!(text.contains("dsstc_queue_us{quantile=\"0.99\"} 900.000"));
        assert!(text.contains("dsstc_priority_requests_total{priority=\"high\"} 40"));
        assert!(text.contains("dsstc_device_batches_total{device=\"0\",gpu=\"Tesla V100\"} 18"));
        assert!(text.contains("dsstc_device_utilisation{device=\"1\",gpu=\"A100\"} 0.700"));
        assert!(text.contains("dsstc_encode_cache_disk_restores_total 3"));
        assert!(text.contains("dsstc_encode_cache_evictions_total 2"));
        assert!(text.contains("dsstc_encode_cache_hit_rate 0.875"));
        // Admission-control shed counters, one row per class.
        assert!(text.contains("dsstc_shed_requests_total{priority=\"low\"} 6"));
        assert!(text.contains("dsstc_shed_requests_total{priority=\"normal\"} 2"));
        assert!(text.contains("dsstc_shed_requests_total{priority=\"high\"} 0"));
        // Store-lifecycle families from the warmer and manifest GC.
        assert!(text.contains("dsstc_cache_warm_restored_total 3"));
        assert!(text.contains("dsstc_cache_warm_reencoded_total 1"));
        assert!(text.contains("dsstc_cache_warm_healed_total 1"));
        assert!(text.contains("dsstc_cache_store_entries 4"));
        assert!(text.contains("dsstc_cache_store_bytes 88000"));
        assert!(text.contains("dsstc_cache_store_gc_removed_total 2"));
        // Wire families mirror WireStats field for field.
        assert!(text.contains("dsstc_wire_connections_accepted_total 5"));
        assert!(text.contains("dsstc_wire_open_connections 2"));
        assert!(text.contains("dsstc_wire_frames_received_total 120"));
        assert!(text.contains("dsstc_wire_decode_errors_total 1"));
        assert!(text.contains("dsstc_wire_outbound_overflows_total 1"));
        assert!(text.contains("dsstc_wire_shed_total{priority=\"low\"} 3"));
        assert!(text.contains("dsstc_wire_shed_total{priority=\"normal\"} 1"));
        assert!(text.contains("dsstc_wire_shed_total{priority=\"high\"} 0"));
        // Per-reactor rows, one sample per event loop.
        assert!(text.contains("dsstc_wire_reactor_frames_received_total{reactor=\"0\"} 70"));
        assert!(text.contains("dsstc_wire_reactor_frames_received_total{reactor=\"1\"} 50"));
        assert!(text.contains("dsstc_wire_reactor_connections_accepted_total{reactor=\"0\"} 3"));
        assert!(text.contains("dsstc_wire_reactor_bytes_sent_total{reactor=\"1\"} 22000"));
        assert!(text.contains("dsstc_wire_reactor_in_flight{reactor=\"0\"} 0"));
        // Cluster families mirror ClusterStats field for field, labelled
        // with the reporting node's id.
        assert!(text.contains("dsstc_cluster_shard_map_version{node=\"2\"} 5"));
        assert!(text.contains("dsstc_cluster_peers_alive{node=\"2\"} 2"));
        assert!(text.contains("dsstc_cluster_peers_total{node=\"2\"} 3"));
        assert!(text.contains("dsstc_cluster_redirects_total{node=\"2\"} 7"));
        assert!(text.contains("dsstc_cluster_failover_serves_total{node=\"2\"} 3"));
        assert!(text.contains("dsstc_cluster_hellos_total{node=\"2\"} 12"));
        assert!(text.contains("dsstc_cluster_auth_failures_total{node=\"2\"} 1"));
        assert!(text.contains("dsstc_cluster_peer_probes_total{node=\"2\"} 40"));
        assert!(text.contains("dsstc_cluster_peer_failures_total{node=\"2\"} 4"));
        // Registry-backed live metrics ride along.
        assert!(text.contains("dsstc_traces_recorded_total 7"));
        assert!(text.contains("dsstc_e2e_us_bucket{priority=\"high\",le=\"+Inf\"} 1"));
        assert!(text.contains("dsstc_e2e_us_count{priority=\"high\"} 1"));
        // Every family announces its type exactly once.
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            assert_eq!(text.matches(line).count(), 1, "duplicate {line}");
        }
    }

    #[test]
    fn exposition_without_wire_omits_wire_families() {
        let mut stats = sample_stats();
        stats.wire = None;
        stats.wire_reactors = Vec::new();
        stats.cluster = None;
        let text = render_prometheus(&stats, &MetricsRegistry::new());
        assert!(!text.contains("dsstc_wire_"));
        assert!(!text.contains("dsstc_cluster_"));
        assert!(text.contains("dsstc_requests_completed_total 120"));
    }

    #[test]
    fn non_finite_gauges_render_as_zero() {
        let mut stats = sample_stats();
        stats.throughput_rps = f64::NAN;
        stats.timing_hit_rate = f64::INFINITY;
        let text = render_prometheus(&stats, &MetricsRegistry::new());
        assert!(text.contains("dsstc_throughput_rps 0.000"));
        assert!(text.contains("dsstc_timing_cache_hit_rate 0.000"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn metrics_server_answers_scrapes() {
        use std::io::{Read, Write};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let scrapes = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&scrapes);
        let source: super::listener::MetricsSource = Arc::new(move || {
            let n = counted.fetch_add(1, Ordering::SeqCst) + 1;
            format!("dsstc_scrapes_total {n}\n")
        });
        let mut server =
            MetricsServer::start("127.0.0.1:0".parse().unwrap(), source).expect("bind metrics");
        let addr = server.local_addr();
        for expected in 1..=3u64 {
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read response");
            assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
            assert!(response.contains("Content-Type: text/plain"), "{response}");
            let body = response.split("\r\n\r\n").nth(1).expect("body");
            assert_eq!(body, format!("dsstc_scrapes_total {expected}\n"));
        }
        assert_eq!(scrapes.load(Ordering::SeqCst), 3);
        server.shutdown();
        // The port is released after shutdown.
        assert!(
            std::net::TcpStream::connect(addr).is_err() || {
                // A TIME_WAIT race can still connect; a second shutdown is a
                // no-op either way.
                true
            }
        );
    }
}
