//! Workload profiles (event counts) and kernel time estimates.

/// Event counts collected by a kernel implementation for one launch.
///
/// Every field is a device-wide total; the timing model divides by the
/// corresponding peak rate. Fields default to zero so kernels only fill in
/// what they use.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadProfile {
    /// Kernel name for reports.
    pub name: String,
    /// Inner-product Tensor Core instructions (`HMMA.884`).
    pub hmma_instructions: u64,
    /// Outer-product Tensor Core instructions (`OHMMA.8161`) actually issued
    /// (i.e. after predication-based skipping).
    pub ohmma_instructions: u64,
    /// Binary outer-product instructions (`BOHMMA.32321`).
    pub bohmma_instructions: u64,
    /// Population-count instructions.
    pub popc_instructions: u64,
    /// Scalar FP32/ALU operations (address generation, im2col shifts, CSR
    /// index arithmetic, scalar multiply-accumulate in non-tensor kernels).
    pub scalar_ops: u64,
    /// Extra cycles spent on accumulation-buffer bank conflicts during the
    /// sparse merge (already expressed in cycles by the kernel).
    pub accum_conflict_cycles: u64,
    /// Cycles spent in gather/accumulate/scatter merges (excluding
    /// conflicts), expressed device-wide like instruction counts.
    pub merge_cycles: u64,
    /// Bytes read from DRAM (after the kernel's own L2-reuse accounting).
    pub dram_bytes_read: u64,
    /// Bytes written to DRAM.
    pub dram_bytes_written: u64,
    /// Bytes moved through shared memory.
    pub shared_bytes: u64,
    /// Independent thread blocks launched (limits achievable parallelism).
    pub thread_blocks: u64,
}

impl WorkloadProfile {
    /// Creates an empty profile with the given kernel name.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadProfile { name: name.into(), ..Default::default() }
    }

    /// Sum of all tensor-core instructions.
    pub fn tensor_instructions(&self) -> u64 {
        self.hmma_instructions + self.ohmma_instructions + self.bohmma_instructions
    }

    /// Total DRAM traffic.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes_read + self.dram_bytes_written
    }

    /// Accumulates another profile into this one (used when a layer runs
    /// several kernels, e.g. im2col + GEMM, or a network runs many layers).
    pub fn merge(&mut self, other: &WorkloadProfile) {
        self.hmma_instructions += other.hmma_instructions;
        self.ohmma_instructions += other.ohmma_instructions;
        self.bohmma_instructions += other.bohmma_instructions;
        self.popc_instructions += other.popc_instructions;
        self.scalar_ops += other.scalar_ops;
        self.accum_conflict_cycles += other.accum_conflict_cycles;
        self.merge_cycles += other.merge_cycles;
        self.dram_bytes_read += other.dram_bytes_read;
        self.dram_bytes_written += other.dram_bytes_written;
        self.shared_bytes += other.shared_bytes;
        self.thread_blocks += other.thread_blocks;
    }
}

/// Which resource bounds the kernel according to the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// Tensor-core instruction issue.
    TensorCore,
    /// Scalar / integer pipelines.
    Scalar,
    /// DRAM bandwidth.
    Dram,
    /// Shared-memory bandwidth.
    SharedMemory,
    /// Accumulation-buffer merge (including bank conflicts).
    Merge,
    /// Not enough thread blocks to fill the machine / launch overhead.
    Parallelism,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::TensorCore => "tensor-core issue",
            Bottleneck::Scalar => "scalar pipeline",
            Bottleneck::Dram => "DRAM bandwidth",
            Bottleneck::SharedMemory => "shared-memory bandwidth",
            Bottleneck::Merge => "accumulation-buffer merge",
            Bottleneck::Parallelism => "parallelism / launch overhead",
        };
        f.write_str(s)
    }
}

/// The timing model's estimate for one kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelEstimate {
    /// Kernel name (copied from the profile).
    pub name: String,
    /// Cycles attributed to tensor-core issue.
    pub tensor_cycles: f64,
    /// Cycles attributed to scalar + POPC work.
    pub scalar_cycles: f64,
    /// Cycles attributed to DRAM traffic.
    pub dram_cycles: f64,
    /// Cycles attributed to shared-memory traffic.
    pub shared_cycles: f64,
    /// Cycles attributed to the merge pipeline (incl. bank conflicts).
    pub merge_cycles: f64,
    /// Final modelled execution time in cycles (critical path + overheads).
    pub total_cycles: f64,
    /// Final modelled execution time in microseconds.
    pub total_us: f64,
    /// The dominant resource.
    pub bottleneck: Bottleneck,
}

impl KernelEstimate {
    /// Modelled execution time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.total_us
    }

    /// Modelled execution time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.total_us / 1e3
    }

    /// Speedup of this estimate relative to `baseline` (>1 means this kernel
    /// is faster).
    pub fn speedup_over(&self, baseline: &KernelEstimate) -> f64 {
        baseline.total_us / self.total_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_merge_accumulates_all_fields() {
        let mut a = WorkloadProfile::new("a");
        a.hmma_instructions = 1;
        a.dram_bytes_read = 10;
        a.thread_blocks = 2;
        let mut b = WorkloadProfile::new("b");
        b.hmma_instructions = 2;
        b.ohmma_instructions = 5;
        b.dram_bytes_written = 7;
        b.thread_blocks = 3;
        a.merge(&b);
        assert_eq!(a.hmma_instructions, 3);
        assert_eq!(a.ohmma_instructions, 5);
        assert_eq!(a.dram_bytes(), 17);
        assert_eq!(a.thread_blocks, 5);
        assert_eq!(a.tensor_instructions(), 8);
    }

    #[test]
    fn bottleneck_display() {
        assert_eq!(Bottleneck::Dram.to_string(), "DRAM bandwidth");
        assert_eq!(Bottleneck::TensorCore.to_string(), "tensor-core issue");
    }

    #[test]
    fn estimate_speedup() {
        let fast = KernelEstimate {
            name: "fast".into(),
            tensor_cycles: 0.0,
            scalar_cycles: 0.0,
            dram_cycles: 0.0,
            shared_cycles: 0.0,
            merge_cycles: 0.0,
            total_cycles: 100.0,
            total_us: 1.0,
            bottleneck: Bottleneck::TensorCore,
        };
        let slow = KernelEstimate { name: "slow".into(), total_us: 4.0, ..fast.clone() };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
        assert!((slow.time_ms() - 0.004).abs() < 1e-12);
    }
}
