//! Regenerates **Figure 21**: SpGEMM execution time on a 4096x4096x4096
//! problem as matrix A's sparsity sweeps from 0 % to 99.9 %, for several
//! matrix B sparsities, compared against the CUTLASS dense baseline, the
//! fixed-ratio single-side Sparse Tensor Core, and a cuSparse-style CSR
//! SpGEMM.
//!
//! With `--bench-json PATH` the sweep also **measures** the functional
//! kernel on the host — the retained scalar reference against the
//! word-parallel execution path, plus the serve hot path
//! (encode-A + execute, the per-batch work of a `dsstc-serve` worker) —
//! asserts the two paths agree bit for bit, and writes everything as
//! machine-readable JSON (schema `dsstc.bench.kernels/1`, documented in
//! `docs/OBSERVABILITY.md`) so CI can track a kernel perf trajectory per
//! commit.
//!
//! Run with `cargo run --release -p dsstc-bench --bin fig21_spgemm`.

use std::path::PathBuf;
use std::time::Instant;

use dsstc::DualSideSparseTensorCore;
use dsstc_formats::CsrMatrix;
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::csr_spgemm::CsrSpGemm;
use dsstc_sim::GpuConfig;
use dsstc_tensor::{GemmShape, Matrix, SparsityPattern};

const USAGE: &str = "usage: fig21_spgemm [--bench-json PATH]

  (no flags)           print the modelled Figure 21 sweep
  --bench-json PATH    also measure the functional kernel (scalar reference
                       vs word-parallel path, plus the serve hot path) and
                       write the sweep as machine-readable JSON
                       (schema dsstc.bench.kernels/1; see
                       docs/OBSERVABILITY.md)
  --help               this text";

/// Wall-clock best-of-`runs` of `f`, in microseconds (the minimum is the
/// standard noise-robust statistic for a deterministic kernel).
fn best_of_us<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..runs)
        .map(|_| {
            let started = Instant::now();
            std::hint::black_box(f());
            started.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

/// One modelled sweep cell.
struct ModelledCell {
    a_sparsity: f64,
    b_sparsity: f64,
    modelled_us: f64,
    speedup_vs_dense: f64,
}

/// One measured scalar-vs-word cell of the functional kernel.
struct MeasuredCell {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    a_sparsity: f64,
    b_sparsity: f64,
    /// Encode-A wall time (the per-batch encode a serve worker pays);
    /// 0 for pure-execute cells, where only the execution path differs.
    encode_us: f64,
    /// Scalar-reference execution time over pre-built encodings.
    scalar_us: f64,
    /// Word-parallel execution time over the same encodings.
    word_us: f64,
    /// `(encode + scalar) / (encode + word)` — the speedup of the full
    /// measured chain (for pure-execute cells this is scalar/word).
    speedup: f64,
    /// Whether the two paths produced identical bits (asserted too).
    bit_identical: bool,
}

/// Measures one cell: encodes once, times both execution paths over the
/// same encodings, and proves them bit-identical.
fn measure_cell(
    name: &'static str,
    (m, k, n): (usize, usize, usize),
    a_sparsity: f64,
    b_sparsity: f64,
    with_encode: bool,
    runs: usize,
) -> MeasuredCell {
    let kernel = BitmapSpGemm::new(GpuConfig::v100());
    let a = Matrix::random_sparse(m, k, a_sparsity, SparsityPattern::Uniform, 21);
    let b = Matrix::random_sparse(k, n, b_sparsity, SparsityPattern::Uniform, 42);
    let a_enc = kernel.encode_a(&a);
    let b_enc = kernel.encode_b(&b);
    let word = kernel.execute_encoded(&a_enc, &b_enc);
    let scalar = kernel.execute_encoded_scalar(&a_enc, &b_enc);
    let bit_identical = word == scalar;
    assert!(bit_identical, "{name}: word path diverged from the scalar reference");
    let encode_us = if with_encode { best_of_us(runs, || kernel.encode_a(&a)) } else { 0.0 };
    let scalar_us = best_of_us(runs, || kernel.execute_encoded_scalar(&a_enc, &b_enc));
    let word_us = best_of_us(runs, || kernel.execute_encoded(&a_enc, &b_enc));
    MeasuredCell {
        name,
        m,
        k,
        n,
        a_sparsity,
        b_sparsity,
        encode_us,
        scalar_us,
        word_us,
        speedup: (encode_us + scalar_us) / (encode_us + word_us),
        bit_identical,
    }
}

/// The measured half of the bench: three fig21-sweep cells at a
/// host-tractable 512^3 plus the serve hot path (per-batch encode-A +
/// execute at the serving proxy shape, weights resident).
fn measure_kernels() -> Vec<MeasuredCell> {
    const RUNS: usize = 5;
    println!("measured functional kernel (best of {RUNS}, host wall-clock):");
    println!(
        "{:<18} {:>16} {:>12} {:>12} {:>12} {:>10}",
        "cell", "shape", "scalar us", "word us", "encode us", "speedup"
    );
    let cells = vec![
        measure_cell("fig21_a50_b50", (512, 512, 512), 0.50, 0.50, false, RUNS),
        measure_cell("fig21_a90_b90", (512, 512, 512), 0.90, 0.90, false, RUNS),
        measure_cell("fig21_a75_b99", (512, 512, 512), 0.75, 0.99, false, RUNS),
        measure_cell("serve_hot_path", (256, 64, 64), 0.40, 0.80, true, RUNS),
    ];
    for cell in &cells {
        println!(
            "{:<18} {:>16} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            cell.name,
            format!("{}x{}x{}", cell.m, cell.k, cell.n),
            cell.scalar_us,
            cell.word_us,
            cell.encode_us,
            format!("{:.2}x", cell.speedup),
        );
    }
    println!();
    cells
}

/// A finite float for JSON (`NaN`/`inf` have no JSON encoding → `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Writes the modelled sweep + measured cells as `dsstc.bench.kernels/1`
/// JSON (documented in `docs/OBSERVABILITY.md`).
fn write_bench_json(
    path: &PathBuf,
    shape: GemmShape,
    dense_us: f64,
    vector_us: f64,
    modelled: &[ModelledCell],
    measured: &[MeasuredCell],
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dsstc.bench.kernels/1\",\n");
    out.push_str("  \"modelled\": {\n");
    out.push_str(&format!(
        "    \"shape\": {{\"m\": {}, \"k\": {}, \"n\": {}}},\n",
        shape.m, shape.k, shape.n
    ));
    out.push_str(&format!("    \"dense_baseline_us\": {},\n", json_f64(dense_us)));
    out.push_str(&format!("    \"vector_sparse_us\": {},\n", json_f64(vector_us)));
    out.push_str("    \"cells\": [\n");
    for (i, cell) in modelled.iter().enumerate() {
        let comma = if i + 1 < modelled.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"a_sparsity\": {}, \"b_sparsity\": {}, \"modelled_us\": {}, \
             \"speedup_vs_dense\": {}}}{comma}\n",
            json_f64(cell.a_sparsity),
            json_f64(cell.b_sparsity),
            json_f64(cell.modelled_us),
            json_f64(cell.speedup_vs_dense),
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"measured\": {\n    \"runs_per_cell\": 5,\n    \"cells\": [\n");
    for (i, cell) in measured.iter().enumerate() {
        let comma = if i + 1 < measured.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"a_sparsity\": {}, \"b_sparsity\": {}, \"encode_us\": {}, \"scalar_us\": {}, \
             \"word_us\": {}, \"speedup\": {}, \"bit_identical\": {}}}{comma}\n",
            cell.name,
            cell.m,
            cell.k,
            cell.n,
            json_f64(cell.a_sparsity),
            json_f64(cell.b_sparsity),
            json_f64(cell.encode_us),
            json_f64(cell.scalar_us),
            json_f64(cell.word_us),
            json_f64(cell.speedup),
            cell.bit_identical,
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("fig21_spgemm: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} modelled + {} measured cells)",
        path.display(),
        modelled.len(),
        measured.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_json: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--bench-json" => {
                bench_json = iter.next().filter(|v| !v.starts_with("--")).map(PathBuf::from);
                if bench_json.is_none() {
                    eprintln!("fig21_spgemm: --bench-json needs a file path\n\n{USAGE}");
                    std::process::exit(2);
                }
            }
            unknown => {
                eprintln!("fig21_spgemm: unknown flag {unknown}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(4096, 4096, 4096);
    let a_sparsities = [0.0, 0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90, 0.95, 0.99, 0.999];
    let b_sparsities = [0.0, 0.20, 0.40, 0.60, 0.80, 0.90, 0.99, 0.999];

    // Baselines that do not depend on A's sparsity.
    let dense_us = engine.compare_schemes(shape, 0.0, 0.0).dense_us;
    let vector_us = engine.compare_schemes(shape, 0.0, 0.75).vector_sparse_us;

    println!("Figure 21: SpGEMM execution time (us), 4096x4096x4096");
    println!("CUTLASS dense baseline: {dense_us:.1} us");
    println!(
        "Sparse Tensor Core [72] (fixed 75% weight sparsity): {vector_us:.1} us ({:.2}x)",
        dense_us / vector_us
    );
    println!();

    // Our method: one curve per B sparsity.
    let mut modelled = Vec::new();
    print!("{:<16}", "A sparsity (%)");
    for &b in &b_sparsities {
        print!("{:>14}", format!("B={:.1}%", b * 100.0));
    }
    println!();
    for &a in &a_sparsities {
        print!("{:<16}", format!("{:.1}", a * 100.0));
        for &b in &b_sparsities {
            let est = engine.estimate_spgemm(shape, a, b);
            print!("{:>14}", format!("{:.1}", est.time_us()));
            modelled.push(ModelledCell {
                a_sparsity: a,
                b_sparsity: b,
                modelled_us: est.time_us(),
                speedup_vs_dense: dense_us / est.time_us(),
            });
        }
        println!();
    }
    println!();

    // Speedup over CUTLASS for the same grid.
    print!("{:<16}", "speedup vs dense");
    for &b in &b_sparsities {
        print!("{:>14}", format!("B={:.1}%", b * 100.0));
    }
    println!();
    for &a in &a_sparsities {
        print!("{:<16}", format!("{:.1}", a * 100.0));
        for &b in &b_sparsities {
            let est = engine.estimate_spgemm(shape, a, b);
            print!("{:>14}", format!("{:.2}x", dense_us / est.time_us()));
        }
        println!();
    }
    println!();

    // cuSparse curve (B fixed at 99%, A from 90%): evaluated at a reduced
    // 1024^3 size to keep CSR materialisation cheap, then scaled by the
    // dense-GEMM work ratio, matching how the paper presents it as a
    // reference curve.
    println!("cuSparse-style CSR SpGEMM (B = 99%):");
    let small_shape = GemmShape::new(1024, 1024, 1024);
    let scale = shape.macs() as f64 / small_shape.macs() as f64;
    let cusparse_kernel = CsrSpGemm::new(GpuConfig::v100());
    for &a in &[0.90, 0.95, 0.99, 0.999] {
        let a_mat = Matrix::random_sparse(1024, 1024, a, SparsityPattern::Uniform, 7);
        let b_mat = Matrix::random_sparse(1024, 1024, 0.99, SparsityPattern::Uniform, 8);
        let profile =
            cusparse_kernel.profile(&CsrMatrix::encode(&a_mat), &CsrMatrix::encode(&b_mat));
        let us = engine.timing_model().estimate(&profile).time_us() * scale;
        println!("  A={:>6.1}%  {:>10.1} us   ({:.2}x vs CUTLASS)", a * 100.0, us, dense_us / us);
    }
    println!();
    println!(
        "(paper reference points: ours 13.4x at A=0%/B=99%, 23x at A=99.9%/B=99%; \
              cuSparse only beats CUTLASS above ~95% A sparsity)"
    );

    if let Some(path) = &bench_json {
        println!();
        let measured = measure_kernels();
        write_bench_json(path, shape, dense_us, vector_us, &modelled, &measured);
    }
}
