//! Multi-bank accumulation buffer with an optional operand collector
//! (paper Section V-B2, Fig. 18-20).
//!
//! In dense mode every FEOP output has a dedicated port and writes complete
//! in one cycle. In sparse mode the merge scatters a step's partial-matrix
//! non-zeros across the 32x32 buffer; outputs landing in the same bank in
//! the same cycle conflict and serialise. The operand collector in front of
//! the banks buffers accesses from several pending instructions and each
//! cycle dispatches at most one access per bank, recovering most of the lost
//! bandwidth (Fig. 19).

use std::collections::VecDeque;

use crate::config::OtcConfig;

/// Result of replaying a scatter/accumulate access trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScatterStats {
    /// Cycles the buffer needed to retire every access.
    pub cycles: u64,
    /// Total accesses retired.
    pub accesses: u64,
    /// Cycles lost to bank conflicts compared with a conflict-free buffer
    /// retiring `ports` accesses per cycle.
    pub conflict_cycles: u64,
}

impl ScatterStats {
    /// Average accesses retired per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.accesses as f64 / self.cycles as f64
        }
    }
}

/// A model of the accumulation buffer's banked write path.
#[derive(Clone, Debug)]
pub struct AccumulationBuffer {
    banks: usize,
    ports: usize,
    collector_depth: usize,
}

impl AccumulationBuffer {
    /// Creates a buffer model with `banks` single-ported banks, `ports`
    /// FEOP outputs per cycle, and an operand collector able to hold
    /// `collector_depth` pending instructions.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(banks: usize, ports: usize, collector_depth: usize) -> Self {
        assert!(banks > 0 && ports > 0 && collector_depth > 0, "parameters must be non-zero");
        AccumulationBuffer { banks, ports, collector_depth }
    }

    /// Builds the buffer model from an [`OtcConfig`]: 16 FEOP outputs per
    /// OHMMA, the configured bank count and collector depth.
    pub fn from_otc(otc: &OtcConfig) -> Self {
        Self::new(otc.accum_banks, 16, otc.operand_collector_depth)
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Maps a flat element index of the warp-tile partial matrix to a bank.
    /// Elements are interleaved across banks by their linear address, the
    /// usual GPU scratchpad mapping.
    pub fn bank_of(&self, element_index: usize) -> usize {
        element_index % self.banks
    }

    /// Replays a trace without the operand collector: every instruction's
    /// accesses must retire before the next instruction starts, and accesses
    /// hitting the same bank within one instruction serialise
    /// (paper Fig. 19a).
    pub fn simulate_without_collector(&self, trace: &[Vec<usize>]) -> ScatterStats {
        let mut cycles = 0u64;
        let mut accesses = 0u64;
        for instr in trace {
            accesses += instr.len() as u64;
            if instr.is_empty() {
                continue;
            }
            let mut per_bank = vec![0u64; self.banks];
            for &e in instr {
                per_bank[self.bank_of(e)] += 1;
            }
            // The instruction takes as many cycles as the most-loaded bank.
            cycles += per_bank.iter().copied().max().unwrap_or(0);
        }
        self.finish_stats(cycles, accesses)
    }

    /// Replays a trace with the operand collector: up to `collector_depth`
    /// instructions' accesses are pending simultaneously and each cycle the
    /// collector dispatches at most one access per bank, drawn from any
    /// pending instruction (paper Fig. 19b).
    pub fn simulate_with_collector(&self, trace: &[Vec<usize>]) -> ScatterStats {
        let mut accesses = 0u64;
        let mut cycles = 0u64;
        // Queue of per-instruction remaining accesses grouped by bank.
        let mut window: VecDeque<Vec<VecDeque<usize>>> = VecDeque::new();
        let mut next_instr = 0usize;

        loop {
            // Refill the collector window.
            while window.len() < self.collector_depth && next_instr < trace.len() {
                let mut by_bank: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.banks];
                for &e in &trace[next_instr] {
                    by_bank[self.bank_of(e)].push_back(e);
                    accesses += 1;
                }
                window.push_back(by_bank);
                next_instr += 1;
            }
            if window.is_empty() {
                break;
            }
            // One cycle: each bank serves at most one access from the oldest
            // pending instruction that wants it.
            cycles += 1;
            for bank in 0..self.banks {
                for instr in window.iter_mut() {
                    if instr[bank].pop_front().is_some() {
                        break;
                    }
                }
            }
            // Retire fully-drained instructions from the front.
            while window.front().is_some_and(|instr| instr.iter().all(VecDeque::is_empty)) {
                window.pop_front();
            }
        }
        self.finish_stats(cycles, accesses)
    }

    /// Replays a trace selecting the mode from `use_collector`.
    pub fn simulate(&self, trace: &[Vec<usize>], use_collector: bool) -> ScatterStats {
        if use_collector {
            self.simulate_with_collector(trace)
        } else {
            self.simulate_without_collector(trace)
        }
    }

    /// Closed-form estimate of the bank-conflict inflation factor for
    /// scatters of `nnz_per_instr` uniformly random accesses per instruction
    /// (>= 1.0; 1.0 means conflict-free).
    ///
    /// Without a collector the instruction's duration is the maximum bin
    /// load of throwing `n` balls into `banks` bins, approximated here from
    /// the expected maximum; with a collector the duration approaches the
    /// average load `n / banks` (never below 1 cycle).
    pub fn conflict_factor_estimate(&self, nnz_per_instr: usize, use_collector: bool) -> f64 {
        if nnz_per_instr == 0 {
            return 1.0;
        }
        let n = nnz_per_instr as f64;
        let b = self.banks as f64;
        let ideal = (n / self.ports as f64).max(1.0);
        let actual = if use_collector {
            (n / b).max(1.0)
        } else {
            // Expected maximum bin load for n balls in b bins (coarse upper
            // estimate): mean + ~2 standard deviations.
            let mean = n / b;
            let var = n * (1.0 / b) * (1.0 - 1.0 / b);
            (mean + 2.0 * var.sqrt()).max(1.0)
        };
        (actual / ideal).max(1.0)
    }

    fn finish_stats(&self, cycles: u64, accesses: u64) -> ScatterStats {
        let ideal = accesses.div_ceil(self.ports as u64);
        ScatterStats { cycles, accesses, conflict_cycles: cycles.saturating_sub(ideal) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> AccumulationBuffer {
        AccumulationBuffer::new(16, 16, 8)
    }

    #[test]
    fn conflict_free_trace_takes_one_cycle_per_instruction() {
        let b = buffer();
        // 16 accesses hitting 16 distinct banks.
        let instr: Vec<usize> = (0..16).collect();
        let trace = vec![instr.clone(), instr];
        let without = b.simulate_without_collector(&trace);
        let with = b.simulate_with_collector(&trace);
        assert_eq!(without.cycles, 2);
        assert_eq!(with.cycles, 2);
        assert_eq!(without.conflict_cycles, 0);
        assert_eq!(with.conflict_cycles, 0);
    }

    #[test]
    fn same_bank_accesses_serialise_without_collector() {
        let b = buffer();
        // 4 accesses all mapping to bank 0.
        let trace = vec![vec![0, 16, 32, 48]];
        let stats = b.simulate_without_collector(&trace);
        assert_eq!(stats.cycles, 4);
        assert_eq!(stats.accesses, 4);
        assert!(stats.conflict_cycles > 0);
    }

    #[test]
    fn collector_overlaps_instructions() {
        let b = buffer();
        // Instruction 1 hammers bank 0, instruction 2 hammers bank 1; with
        // the collector they drain concurrently.
        let trace = vec![vec![0, 16, 32, 48], vec![1, 17, 33, 49]];
        let without = b.simulate_without_collector(&trace);
        let with = b.simulate_with_collector(&trace);
        assert_eq!(without.cycles, 8);
        assert_eq!(with.cycles, 4);
        assert!(with.throughput() > without.throughput());
    }

    #[test]
    fn collector_never_slower_on_random_traces() {
        let b = buffer();
        // Deterministic pseudo-random trace (LCG) of 64 instructions x 16
        // accesses into a 32x32 = 1024-element tile.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize % 1024
        };
        let trace: Vec<Vec<usize>> = (0..64).map(|_| (0..16).map(|_| next()).collect()).collect();
        let with = b.simulate_with_collector(&trace);
        let without = b.simulate_without_collector(&trace);
        assert!(with.cycles <= without.cycles);
        assert_eq!(with.accesses, without.accesses);
        assert_eq!(with.accesses, 64 * 16);
    }

    #[test]
    fn empty_trace_and_empty_instructions() {
        let b = buffer();
        assert_eq!(b.simulate(&[], true).cycles, 0);
        assert_eq!(b.simulate(&[], false).cycles, 0);
        let stats = b.simulate_without_collector(&[vec![]]);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.accesses, 0);
    }

    #[test]
    fn paper_figure18_dense_mode_has_no_conflicts() {
        // Dense mode: 16 ports directly wired, accesses 0..16.
        let b = buffer();
        let stats = b.simulate_without_collector(&[(0..16).collect()]);
        assert_eq!(stats.cycles, 1);
        assert_eq!(stats.conflict_cycles, 0);
    }

    #[test]
    fn conflict_factor_estimate_behaviour() {
        let b = buffer();
        assert!((b.conflict_factor_estimate(0, false) - 1.0).abs() < 1e-12);
        // With the collector, large scatters approach the ideal.
        assert!(b.conflict_factor_estimate(256, true) < 1.1);
        // Without it, they are noticeably worse.
        assert!(b.conflict_factor_estimate(256, false) > 1.2);
        // And the collector estimate never exceeds the raw one.
        for n in [1, 8, 16, 64, 256, 1024] {
            assert!(
                b.conflict_factor_estimate(n, true) <= b.conflict_factor_estimate(n, false) + 1e-12,
                "n = {n}"
            );
        }
    }

    #[test]
    fn from_otc_uses_paper_parameters() {
        let b = AccumulationBuffer::from_otc(&OtcConfig::paper());
        assert_eq!(b.banks(), 16);
        assert_eq!(b.bank_of(17), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_banks_panics() {
        let _ = AccumulationBuffer::new(0, 16, 8);
    }
}
