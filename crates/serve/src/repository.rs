//! The pre-encoded model repository: a two-tier (memory + disk) cache of
//! device-parameterised weight encodings.
//!
//! The paper encodes pruned weights into the bitmap format **offline**
//! (Section III-A): weight sparsity is static, so re-encoding per request is
//! pure waste. [`ModelRepository`] reproduces that at the serving layer and
//! extends it in two directions:
//!
//! * **per-device encodings** — an encoded artifact is only executable on a
//!   kernel whose warp tiling it was built for, so the cache is keyed by
//!   `(ModelKey, EncodingSpec)`: a heterogeneous pool (V100 + A100) holds
//!   one artifact per device tiling and every batch executes the encoding
//!   native to the device it was dispatched to; and
//! * **persistence** — with [`ModelRepository::with_disk_cache`], every
//!   fresh prune+encode is serialised into the versioned, checksummed
//!   container of [`dsstc_formats::serialize`]. A restarted server restores
//!   the artifact from disk instead of re-encoding, so the warm-up cost is
//!   paid once per artifact *ever*, not once per process.
//!
//! The in-memory tier is bounded: past a configurable entry/byte
//! [`CacheBudget`], least-recently-used artifacts are evicted (in-flight
//! `Arc`s keep evicted models alive for their current batches).
//!
//! Each served model carries two representations:
//!
//! * a **functional proxy** — one `proxy_dim x proxy_dim` GEMM per network
//!   layer whose weights are deterministically generated, magnitude-pruned
//!   to the layer's weight sparsity and pre-encoded. Request features flow
//!   through it on the actual dual-side SpGEMM kernel, so responses carry
//!   real outputs; and
//! * the **real layer table** — used by [`crate::BatchTimingModel`] to
//!   charge the modelled GPU time of the full-size network at the batch's
//!   size.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dsstc_formats::{CodecError, TwoLevelBitmapMatrix};
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::EncodingSpec;
use dsstc_models::{prune_magnitude, Layer, Network};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, RandomMatrixBuilder};

use crate::request::ModelKey;
use crate::telemetry::CacheOutcome;

/// Magic of the on-disk encoded-model artifact (a thin header over the
/// per-layer containers of [`dsstc_formats::serialize`]).
const STORE_MAGIC: [u8; 4] = *b"DSMR";

/// Version of the artifact header. Bump on layout change; mismatches fall
/// back to a fresh encode (and overwrite the stale file).
const STORE_VERSION: u16 = 1;

/// One layer of a served model: the pre-encoded proxy weights plus the real
/// layer descriptor the timing model charges.
#[derive(Clone, Debug)]
pub struct EncodedLayer {
    /// Layer name (from the network table).
    pub name: String,
    /// Proxy weights in the kernel's two-level bitmap B-operand layout,
    /// encoded once at load time.
    pub weights: TwoLevelBitmapMatrix,
    /// Whether ReLU follows this layer in the functional proxy.
    pub relu: bool,
    /// The real layer (shape + sparsities, with any uniform override
    /// applied) used for modelled timing.
    pub layer: Layer,
}

/// A fully loaded model: pruned, encoded, ready to serve.
#[derive(Clone, Debug)]
pub struct EncodedModel {
    /// The cache key this model was loaded under.
    pub key: ModelKey,
    /// The encoding identity (device tiling + operand layouts) the weights
    /// were encoded for; only a kernel with the same spec can execute them.
    pub spec: EncodingSpec,
    /// The real network table (with any sparsity override applied).
    pub network: Network,
    /// Feature width requests must supply.
    pub input_dim: usize,
    /// Pre-encoded layers in execution order.
    pub layers: Vec<EncodedLayer>,
    /// Wall-clock milliseconds spent obtaining the artifact — a fresh
    /// prune+encode on the cold path, a disk restore on the warm path (the
    /// cost the two cache tiers amortise away).
    pub encode_ms: f64,
    /// Whether the artifact was restored from the on-disk store instead of
    /// freshly encoded.
    pub from_disk: bool,
}

impl EncodedModel {
    /// Runs `input` (rows = samples, `input_dim` columns) through every
    /// pre-encoded proxy layer on the dual-side SpGEMM kernel and returns
    /// the final features.
    ///
    /// # Panics
    /// Panics if `input` does not have `input_dim` columns or `kernel`'s
    /// encoding spec differs from the one the weights were encoded for.
    pub fn forward(&self, kernel: &BitmapSpGemm, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim, "feature width mismatch");
        assert_eq!(
            kernel.encoding_spec(),
            self.spec,
            "kernel encoding spec does not match the model's"
        );
        let mut x = input.clone();
        for layer in &self.layers {
            let a_enc = kernel.encode_a(&x);
            x = kernel.execute_encoded(&a_enc, &layer.weights);
            if layer.relu {
                x = x.relu();
            }
        }
        x
    }

    /// Total non-zeros stored across the encoded proxy weights.
    pub fn encoded_nnz(&self) -> usize {
        self.layers.iter().map(|l| l.weights.nnz()).sum()
    }

    /// Modelled storage footprint of the encoded weights in bytes (FP16
    /// values + bitmaps) — what the in-memory cache budget charges.
    pub fn encoded_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weights.storage().total()).sum()
    }
}

/// Bound on the in-memory encode-cache tier. The cache LRU-evicts past
/// either limit; `Arc`s handed out keep evicted models alive for batches
/// already holding them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheBudget {
    /// Most `(model, encoding)` artifacts held at once.
    pub max_entries: usize,
    /// Most modelled encoded bytes (see [`EncodedModel::encoded_bytes`])
    /// held at once.
    pub max_bytes: u64,
}

impl CacheBudget {
    /// An effectively unbounded budget.
    pub fn unbounded() -> Self {
        CacheBudget { max_entries: usize::MAX, max_bytes: u64::MAX }
    }
}

impl Default for CacheBudget {
    /// 64 artifacts / 512 MiB: far above any test or demo working set,
    /// while still bounding a pathological many-sparsity catalogue.
    fn default() -> Self {
        CacheBudget { max_entries: 64, max_bytes: 512 << 20 }
    }
}

/// Point-in-time counters of the two cache tiers, consumed by
/// [`crate::ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EncodeCacheStats {
    /// Lookups served from the in-memory tier.
    pub hits: u64,
    /// Lookups that missed memory (each becomes a disk load or a fresh
    /// encode).
    pub misses: u64,
    /// Misses restored from the on-disk store.
    pub disk_loads: u64,
    /// Misses that paid the full prune+encode.
    pub fresh_encodes: u64,
    /// Artifacts LRU-evicted from the in-memory tier so far.
    pub evictions: u64,
    /// Cumulative wall-clock milliseconds spent prune+encoding.
    pub fresh_encode_ms: f64,
    /// Cumulative wall-clock milliseconds spent restoring from disk.
    pub disk_load_ms: f64,
}

impl EncodeCacheStats {
    /// Fraction of lookups served from the in-memory tier.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    model: Arc<EncodedModel>,
    bytes: u64,
    last_used: u64,
}

/// Cache map plus the set of keys currently being encoded, so the mutex is
/// never held across a (slow) load: concurrent `get`s for *other* keys
/// proceed, and only same-key callers wait.
#[derive(Debug, Default)]
struct CacheState {
    models: HashMap<(ModelKey, EncodingSpec), CacheEntry>,
    in_flight: HashSet<(ModelKey, EncodingSpec)>,
    tick: u64,
    total_bytes: u64,
}

/// Loads, prunes and pre-encodes models, caching the result per
/// `(model, sparsity, encoding)` key across an in-memory LRU tier and an
/// optional on-disk store.
///
/// `get` / `get_for` are cheap after the first call for a key; the counters
/// feed the server's encode-cache metrics.
#[derive(Debug)]
pub struct ModelRepository {
    proxy_dim: usize,
    base_gpu: GpuConfig,
    default_spec: EncodingSpec,
    kernel: BitmapSpGemm,
    budget: CacheBudget,
    disk_dir: Option<PathBuf>,
    cache: Mutex<CacheState>,
    loaded: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_loads: AtomicU64,
    fresh_encodes: AtomicU64,
    evictions: AtomicU64,
    fresh_encode_us: AtomicU64,
    disk_load_us: AtomicU64,
}

impl ModelRepository {
    /// Creates an empty repository whose **default** encodings match `gpu`'s
    /// native kernel tiling and whose proxies are `proxy_dim` wide. Other
    /// devices' encodings are served through [`Self::get_for`].
    ///
    /// # Panics
    /// Panics if `proxy_dim` is zero.
    pub fn new(gpu: GpuConfig, proxy_dim: usize) -> Self {
        assert!(proxy_dim > 0, "proxy dimension must be non-zero");
        ModelRepository {
            proxy_dim,
            default_spec: EncodingSpec::for_gpu(&gpu),
            kernel: BitmapSpGemm::for_device(gpu.clone()),
            base_gpu: gpu,
            budget: CacheBudget::default(),
            disk_dir: None,
            cache: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            fresh_encodes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            fresh_encode_us: AtomicU64::new(0),
            disk_load_us: AtomicU64::new(0),
        }
    }

    /// Enables the on-disk tier under `dir` (created if missing): fresh
    /// encodes are persisted, and later repositories pointed at the same
    /// directory restore them instead of re-encoding.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir); // best effort; store() retries
        self.disk_dir = Some(dir);
        self
    }

    /// Overrides the in-memory cache budget.
    pub fn with_budget(mut self, budget: CacheBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Feature width requests must supply.
    pub fn input_dim(&self) -> usize {
        self.proxy_dim
    }

    /// The in-memory budget in force.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// The on-disk store directory, if persistence is enabled.
    pub fn disk_cache_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The default encoding identity (the primary device's).
    pub fn default_spec(&self) -> EncodingSpec {
        self.default_spec
    }

    /// The SpGEMM kernel matching the default encoding spec.
    pub fn kernel(&self) -> &BitmapSpGemm {
        &self.kernel
    }

    /// A kernel able to produce and execute encodings under `spec` (cheap
    /// to build; per-device workers hold their own).
    pub fn kernel_for(&self, spec: EncodingSpec) -> BitmapSpGemm {
        BitmapSpGemm::new(self.base_gpu.clone()).with_tiling(spec.tiling)
    }

    /// Returns the encoded model for `key` under the default spec (see
    /// [`Self::get_for`]).
    pub fn get(&self, key: ModelKey) -> Arc<EncodedModel> {
        self.get_for(key, self.default_spec)
    }

    /// Returns the model encoded for `spec`, loading it on the first
    /// request (a cache **miss**: restored from disk when the store has it,
    /// freshly prune+encoded otherwise) and reusing the cached artifact on
    /// every later one (a **hit**).
    ///
    /// The cache lock is **not** held while encoding: a miss marks the key
    /// in-flight, drops the lock, loads, then publishes. Concurrent callers
    /// for the same key block until the single load finishes (counted as
    /// hits — they are served from the cache); callers for other keys are
    /// unaffected.
    pub fn get_for(&self, key: ModelKey, spec: EncodingSpec) -> Arc<EncodedModel> {
        self.get_for_traced(key, spec).0
    }

    /// [`Self::get_for`], additionally reporting how the lookup was
    /// satisfied — an in-memory [`CacheOutcome::Hit`], a miss restored
    /// from the on-disk store, or a miss that paid the full prune+encode —
    /// so workers can stamp the outcome onto the request trace.
    pub fn get_for_traced(
        &self,
        key: ModelKey,
        spec: EncodingSpec,
    ) -> (Arc<EncodedModel>, CacheOutcome) {
        let cache_key = (key, spec);
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        loop {
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.models.get_mut(&cache_key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(&entry.model), CacheOutcome::Hit);
            }
            if cache.in_flight.insert(cache_key) {
                break; // this caller owns the load
            }
            // Someone else is encoding this key; wait for them to publish.
            cache = self.loaded.wait(cache).expect("repository mutex poisoned");
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(cache);
        let model = Arc::new(self.load(key, spec));
        let outcome =
            if model.from_disk { CacheOutcome::MissRestored } else { CacheOutcome::MissFresh };
        let mut cache = self.cache.lock().expect("repository mutex poisoned");
        cache.tick += 1;
        let entry = CacheEntry {
            bytes: model.encoded_bytes(),
            last_used: cache.tick,
            model: Arc::clone(&model),
        };
        cache.total_bytes += entry.bytes;
        cache.models.insert(cache_key, entry);
        self.evict_over_budget(&mut cache);
        cache.in_flight.remove(&cache_key);
        self.loaded.notify_all();
        (model, outcome)
    }

    /// Evicts least-recently-used entries until the budget holds, keeping
    /// at least one entry (the most recent insert always survives its own
    /// arrival).
    fn evict_over_budget(&self, cache: &mut CacheState) {
        while cache.models.len() > 1
            && (cache.models.len() > self.budget.max_entries
                || cache.total_bytes > self.budget.max_bytes)
        {
            let victim = cache
                .models
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache");
            if let Some(entry) = cache.models.remove(&victim) {
                cache.total_bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= disk loads + fresh encodes) so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of `get` calls served from the in-memory cache.
    pub fn hit_rate(&self) -> f64 {
        self.counters().hit_rate()
    }

    /// A snapshot of every cache counter.
    pub fn counters(&self) -> EncodeCacheStats {
        EncodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            fresh_encodes: self.fresh_encodes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            fresh_encode_ms: self.fresh_encode_us.load(Ordering::Relaxed) as f64 / 1e3,
            disk_load_ms: self.disk_load_us.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }

    /// Number of distinct artifacts currently held in memory.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("repository mutex poisoned").models.len()
    }

    /// Whether no artifact is held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Modelled bytes currently held by the in-memory tier.
    pub fn cached_bytes(&self) -> u64 {
        self.cache.lock().expect("repository mutex poisoned").total_bytes
    }

    /// The slow path behind a memory miss: restore from the disk store when
    /// possible, prune+encode (and persist) otherwise.
    fn load(&self, key: ModelKey, spec: EncodingSpec) -> EncodedModel {
        if let Some(dir) = &self.disk_dir {
            let path = self.artifact_path(dir, key, spec);
            let started = Instant::now();
            if let Ok(model) = self.restore(&path, key, spec) {
                let us = started.elapsed().as_micros() as u64;
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                self.disk_load_us.fetch_add(us, Ordering::Relaxed);
                return model;
            }
            // Missing, stale-version or corrupt artifact: fall through to a
            // fresh encode, which rewrites the file below.
        }
        let started = Instant::now();
        let model = self.encode_fresh(key, spec);
        let us = started.elapsed().as_micros() as u64;
        self.fresh_encodes.fetch_add(1, Ordering::Relaxed);
        self.fresh_encode_us.fetch_add(us, Ordering::Relaxed);
        if let Some(dir) = &self.disk_dir {
            // Best effort: a failed persist only costs the next restart its
            // warm start.
            let _ = self.persist(dir, &model);
        }
        model
    }

    /// Prunes + encodes one model for `spec` (the cold path).
    fn encode_fresh(&self, key: ModelKey, spec: EncodingSpec) -> EncodedModel {
        let started = Instant::now();
        let kernel = self.kernel_for(spec);
        // The real layer table with the uniform sparsity override applied,
        // so both the proxy weights and the timing model see it.
        let network = key.network();
        let layers_effective: Vec<Layer> = network.layers().to_vec();
        let relu = key.model.uses_relu();
        let layers = layers_effective
            .into_iter()
            .enumerate()
            .map(|(i, layer)| {
                let dense = RandomMatrixBuilder::new(self.proxy_dim, self.proxy_dim)
                    .seed(proxy_seed(key, i))
                    .value_range(-0.5, 0.5)
                    .build();
                let pruned = prune_magnitude(&dense, layer.weight_sparsity);
                EncodedLayer {
                    name: layer.name.clone(),
                    weights: kernel.encode_b(&pruned),
                    relu,
                    layer,
                }
            })
            .collect();
        EncodedModel {
            key,
            spec,
            network,
            input_dim: self.proxy_dim,
            layers,
            encode_ms: started.elapsed().as_secs_f64() * 1e3,
            from_disk: false,
        }
    }

    /// The on-disk artifact path for one `(model, sparsity, proxy,
    /// encoding)` identity.
    fn artifact_path(&self, dir: &Path, key: ModelKey, spec: EncodingSpec) -> PathBuf {
        let sparsity = match key.sparsity_permille {
            Some(p) => format!("s{p:04}"),
            None => "table".to_string(),
        };
        dir.join(format!(
            "{}-{}-d{}-{}.dsstc",
            key.model.slug(),
            sparsity,
            self.proxy_dim,
            spec.id()
        ))
    }

    /// Restores one artifact from disk, fully validating the header and
    /// every per-layer container against the expected identity.
    fn restore(
        &self,
        path: &Path,
        key: ModelKey,
        spec: EncodingSpec,
    ) -> Result<EncodedModel, CodecError> {
        let started = Instant::now();
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut header = [0u8; 4 + 2 + 4];
        std::io::Read::read_exact(&mut reader, &mut header)?;
        if header[..4] != STORE_MAGIC {
            return Err(CodecError::BadMagic([header[0], header[1], header[2], header[3]]));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != STORE_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let layer_count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
        let network = key.network();
        if layer_count as usize != network.layers().len() {
            return Err(CodecError::Malformed("layer count does not match the network table"));
        }
        let relu = key.model.uses_relu();
        let mut layers = Vec::with_capacity(layer_count as usize);
        for layer in network.layers() {
            let weights = TwoLevelBitmapMatrix::read_from(&mut reader)?;
            if weights.rows() != self.proxy_dim || weights.cols() != self.proxy_dim {
                return Err(CodecError::Malformed("weight shape does not match the proxy"));
            }
            if !spec.matches_b(&weights) {
                return Err(CodecError::Malformed("weight encoding does not match the spec"));
            }
            layers.push(EncodedLayer {
                name: layer.name.clone(),
                weights,
                relu,
                layer: layer.clone(),
            });
        }
        Ok(EncodedModel {
            key,
            spec,
            network,
            input_dim: self.proxy_dim,
            layers,
            encode_ms: started.elapsed().as_secs_f64() * 1e3,
            from_disk: true,
        })
    }

    /// Persists one artifact: written to a temporary sibling first, then
    /// atomically renamed into place so a crash mid-write never leaves a
    /// half-artifact under the final name. The temp name is unique per
    /// process and write, so concurrent writers sharing one cache dir never
    /// interleave into (and then publish) one file — the last complete
    /// rename wins, every published artifact is internally consistent.
    fn persist(&self, dir: &Path, model: &EncodedModel) -> Result<(), CodecError> {
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let path = self.artifact_path(dir, model.key, model.spec);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> Result<(), CodecError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = std::io::BufWriter::new(file);
            writer.write_all(&STORE_MAGIC)?;
            writer.write_all(&STORE_VERSION.to_le_bytes())?;
            writer.write_all(&(model.layers.len() as u32).to_le_bytes())?;
            for layer in &model.layers {
                layer.weights.write_to(&mut writer)?;
            }
            writer.flush()?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        };
        let result = write();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

/// Deterministic per-layer weight seed so repeated loads (and separate
/// server instances) produce identical proxies. Deliberately independent of
/// the encoding spec: every device encodes the *same* pruned weights, just
/// tiled for its own kernel.
fn proxy_seed(key: ModelKey, layer_index: usize) -> u64 {
    let mut seed: u64 = 0x5EED_0F00;
    for b in key.model.name().bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
    }
    seed ^ (u64::from(key.sparsity_permille.map_or(0xFFFF, |p| p)) << 40)
        ^ ((layer_index as u64) << 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;

    fn repo() -> ModelRepository {
        ModelRepository::new(GpuConfig::v100(), 64)
    }

    /// A unique, self-cleaning temp directory for disk-cache tests.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dsstc-repo-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn first_get_misses_then_hits() {
        let r = repo();
        assert!(r.is_empty());
        let key = ModelKey::new(ModelId::BertBase, None);
        let m1 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (0, 1));
        let m2 = r.get(key);
        assert_eq!((r.hit_count(), r.miss_count()), (1, 1));
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(r.len(), 1);
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
        // No disk tier: the miss was a fresh encode.
        let counters = r.counters();
        assert_eq!(counters.fresh_encodes, 1);
        assert_eq!(counters.disk_loads, 0);
        assert!(counters.fresh_encode_ms >= 0.0);
        assert!(!m1.from_disk);
    }

    #[test]
    fn distinct_sparsities_are_distinct_cache_entries() {
        let r = repo();
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.8)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, Some(0.95)));
        let _ = r.get(ModelKey::new(ModelId::RnnLm, None));
        assert_eq!(r.len(), 3);
        assert_eq!(r.miss_count(), 3);
    }

    #[test]
    fn distinct_specs_are_distinct_cache_entries_with_matching_tilings() {
        let r = repo();
        let key = ModelKey::new(ModelId::BertBase, Some(0.9));
        let v100 = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::v100()));
        let a100 = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::a100()));
        assert_eq!(r.len(), 2);
        assert_eq!(r.miss_count(), 2);
        assert_ne!(v100.spec, a100.spec);
        for (lv, la) in v100.layers.iter().zip(&a100.layers) {
            assert!(v100.spec.matches_b(&lv.weights));
            assert!(a100.spec.matches_b(&la.weights));
            // Same pruned weights under both tilings.
            assert_eq!(lv.weights.decode(), la.weights.decode(), "{}", lv.name);
        }
        // Each spec's model executes on its own kernel and agrees with the
        // other device's result.
        let input = Matrix::random_sparse(4, 64, 0.5, dsstc_tensor::SparsityPattern::Uniform, 1);
        let out_v = v100.forward(r.kernel(), &input);
        let out_a = a100.forward(&r.kernel_for(a100.spec), &input);
        assert!(out_v.approx_eq(&out_a, 1e-3));
    }

    #[test]
    fn encoded_layers_match_table_and_override() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, Some(0.9)));
        assert_eq!(m.layers.len(), ModelId::BertBase.network().layers().len());
        for layer in &m.layers {
            assert!((layer.weights.sparsity() - 0.9).abs() < 0.02, "{}", layer.name);
            assert_eq!(layer.layer.weight_sparsity, 0.9);
            assert!(!layer.relu);
        }
        assert!(m.encoded_nnz() > 0);
        assert!(m.encoded_bytes() > 0);
        assert!(m.encode_ms >= 0.0);
    }

    #[test]
    fn forward_matches_decoded_dense_reference() {
        let r = ModelRepository::new(GpuConfig::v100(), 32);
        let m = r.get(ModelKey::new(ModelId::ResNet18, Some(0.85)));
        let input = Matrix::random_sparse(8, 32, 0.5, dsstc_tensor::SparsityPattern::Uniform, 3);
        let out = m.forward(r.kernel(), &input);
        // Dense reference: decode each encoded layer and replay the chain.
        let mut reference = input.clone();
        for layer in &m.layers {
            reference = reference.matmul(&layer.weights.decode());
            reference = reference.relu();
        }
        assert_eq!(out.rows(), 8);
        assert_eq!(out.cols(), 32);
        assert!(out.approx_eq(&reference, 5e-2));
    }

    #[test]
    fn concurrent_gets_for_one_key_encode_exactly_once() {
        let r = std::sync::Arc::new(repo());
        let key = ModelKey::new(ModelId::ResNet50, None);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || r.get(key))
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(r.miss_count(), 1, "one caller loads, the rest wait and hit");
        assert_eq!(r.hit_count(), 3);
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m), "all callers share one artifact");
        }
    }

    #[test]
    fn a_slow_load_does_not_block_gets_for_other_keys() {
        // Thread A encodes VGG-16 (the most layers); thread B's BERT get
        // must complete while A may still be loading — i.e. without ever
        // waiting on A. We can't control interleaving exactly, but both
        // finishing with two misses and no deadlock exercises the
        // in-flight path under concurrency.
        let r = std::sync::Arc::new(repo());
        let a = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::Vgg16, None)))
        };
        let b = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.get(ModelKey::new(ModelId::BertBase, None)))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(r.miss_count(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn proxies_are_deterministic_across_repositories() {
        let key = ModelKey::new(ModelId::ResNet50, None);
        let a = repo().get(key);
        let b = repo().get(key);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.weights.decode(), lb.weights.decode(), "{}", la.name);
        }
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn forward_rejects_wrong_width() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        let _ = m.forward(r.kernel(), &Matrix::zeros(2, 63));
    }

    #[test]
    #[should_panic(expected = "encoding spec does not match")]
    fn forward_rejects_a_foreign_kernel() {
        let r = repo();
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        let foreign = r.kernel_for(EncodingSpec::for_gpu(&GpuConfig::a100()));
        let _ = m.forward(&foreign, &Matrix::zeros(2, 64));
    }

    #[test]
    fn lru_evicts_past_the_entry_budget() {
        let r = repo().with_budget(CacheBudget { max_entries: 2, max_bytes: u64::MAX });
        let k1 = ModelKey::new(ModelId::RnnLm, Some(0.8));
        let k2 = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let k3 = ModelKey::new(ModelId::RnnLm, Some(0.95));
        let _ = r.get(k1);
        let _ = r.get(k2);
        let _ = r.get(k1); // k1 is now more recently used than k2
        let _ = r.get(k3); // evicts k2
        assert_eq!(r.len(), 2);
        assert_eq!(r.counters().evictions, 1);
        let misses_before = r.miss_count();
        let _ = r.get(k1);
        let _ = r.get(k3);
        assert_eq!(r.miss_count(), misses_before, "survivors still hit");
        let _ = r.get(k2);
        assert_eq!(r.miss_count(), misses_before + 1, "the evicted key re-encodes");
    }

    #[test]
    fn byte_budget_bounds_the_cache_and_keeps_the_newest_entry() {
        // A budget below one artifact still keeps the latest insert alive.
        let r = repo().with_budget(CacheBudget { max_entries: usize::MAX, max_bytes: 1 });
        let m = r.get(ModelKey::new(ModelId::BertBase, None));
        assert_eq!(r.len(), 1);
        assert!(r.cached_bytes() >= m.encoded_bytes());
        let _ = r.get(ModelKey::new(ModelId::RnnLm, None));
        assert_eq!(r.len(), 1, "over-budget cache holds only the newest artifact");
        assert_eq!(r.counters().evictions, 1);
    }

    #[test]
    fn disk_store_round_trips_and_survives_a_restart() {
        let dir = TempDir::new("roundtrip");
        let key = ModelKey::new(ModelId::BertBase, Some(0.9));
        let cold = {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let m = r.get(key);
            assert!(!m.from_disk);
            assert_eq!(r.counters().fresh_encodes, 1);
            m
        };
        // "Restart": a fresh repository over the same directory.
        let r2 = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let warm = r2.get(key);
        assert!(warm.from_disk, "second process restores from disk");
        let counters = r2.counters();
        assert_eq!(counters.disk_loads, 1);
        assert_eq!(counters.fresh_encodes, 0);
        assert!(counters.disk_load_ms >= 0.0);
        assert_eq!(warm.layers.len(), cold.layers.len());
        for (c, w) in cold.layers.iter().zip(&warm.layers) {
            assert_eq!(c.weights, w.weights, "{}", c.name);
            assert_eq!(c.name, w.name);
        }
        // The restored artifact serves identical outputs.
        let input = Matrix::random_sparse(2, 32, 0.4, dsstc_tensor::SparsityPattern::Uniform, 5);
        assert!(
            cold.forward(r2.kernel(), &input).approx_eq(&warm.forward(r2.kernel(), &input), 0.0),
            "bit-identical outputs"
        );
    }

    #[test]
    fn disk_artifacts_are_keyed_per_spec_and_proxy_dim() {
        let dir = TempDir::new("keys");
        let key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let _ = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::v100()));
        let _ = r.get_for(key, EncodingSpec::for_gpu(&GpuConfig::a100()));
        // A different proxy width writes a third artifact.
        let r64 = ModelRepository::new(GpuConfig::v100(), 64).with_disk_cache(dir.path());
        let _ = r64.get(key);
        let files: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 3, "one artifact per (spec, proxy): {files:?}");
        assert!(files.iter().all(|f| f.ends_with(".dsstc")), "{files:?}");
        assert!(files.iter().all(|f| f.starts_with("rnnlm-s0900")), "{files:?}");
    }

    #[test]
    fn corrupt_or_stale_artifacts_fall_back_to_a_fresh_encode() {
        let dir = TempDir::new("corrupt");
        let key = ModelKey::new(ModelId::BertBase, None);
        {
            let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
            let _ = r.get(key);
        }
        // Truncate the artifact to garbage.
        let file = std::fs::read_dir(dir.path()).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&file, b"DSMRgarbage").unwrap();
        let r = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        let m = r.get(key);
        assert!(!m.from_disk, "corrupt artifact must not be served");
        let counters = r.counters();
        assert_eq!((counters.disk_loads, counters.fresh_encodes), (0, 1));
        // The fresh encode rewrote the artifact; a third repository warms.
        let r3 = ModelRepository::new(GpuConfig::v100(), 32).with_disk_cache(dir.path());
        assert!(r3.get(key).from_disk, "rewritten artifact restores cleanly");
    }
}
