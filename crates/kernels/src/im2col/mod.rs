//! im2col lowering of convolution inputs — dense, CSR and bitmap variants.
//!
//! All variants produce the same logical lowered matrix
//! (`out_h*out_w x K*K*C`, row = output pixel, column = `(c*K + ky)*K + kx`)
//! so they can be checked against each other and against direct convolution;
//! they differ in how the data is found and what the access pattern costs,
//! which is what Table III of the paper measures.

pub mod bitmap;
pub mod csr;
pub mod dense;

use dsstc_sim::WorkloadProfile;
use dsstc_tensor::ConvShape;

pub use bitmap::BitmapIm2col;
pub use csr::CsrIm2col;
pub use dense::DenseIm2col;

/// Architectural cost of performing one im2col lowering, in the same units
/// the timing model consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Im2colCost {
    /// Scalar/ALU operations (address conversion, shifts, masks, searches).
    pub scalar_ops: u64,
    /// Population-count operations (bitmap variant only).
    pub popc_ops: u64,
    /// Bytes read from DRAM while lowering.
    pub dram_bytes_read: u64,
    /// Bytes written to DRAM (explicit lowering materialises the matrix;
    /// implicit lowering writes nothing).
    pub dram_bytes_written: u64,
}

impl Im2colCost {
    /// Converts the cost into a standalone kernel profile (used when im2col
    /// runs as its own kernel, i.e. the *explicit* schemes).
    pub fn into_profile(self, name: &str, shape: &ConvShape) -> WorkloadProfile {
        let mut p = WorkloadProfile::new(name);
        p.scalar_ops = self.scalar_ops;
        p.popc_instructions = self.popc_ops;
        p.dram_bytes_read = self.dram_bytes_read;
        p.dram_bytes_written = self.dram_bytes_written;
        // One thread block per 32 output rows keeps the launch reasonably
        // parallel for all layer sizes.
        p.thread_blocks = ((shape.out_h() * shape.out_w()) as u64).div_ceil(32).max(1);
        p
    }

    /// Folds the cost into an existing GEMM profile (the *implicit* schemes
    /// fuse address generation into the GEMM main loop).
    pub fn fold_into(self, profile: &mut WorkloadProfile) {
        profile.scalar_ops += self.scalar_ops;
        profile.popc_instructions += self.popc_ops;
        // Implicit lowering never materialises the lowered matrix; its reads
        // replace the GEMM's A-operand reads, which the conv driver accounts
        // for, so only the op counts are folded here.
    }
}

/// Flattens convolution weights (`N` output channels of `C x K x K`) into
/// the `K*K*C x N` matrix that multiplies the lowered feature map.
///
/// # Panics
/// Panics if the weight shapes do not match `shape`.
pub fn flatten_weights(
    weights: &[dsstc_tensor::FeatureMap],
    shape: &ConvShape,
) -> dsstc_tensor::Matrix {
    assert_eq!(weights.len(), shape.n, "output channel count mismatch");
    let rows = shape.k * shape.k * shape.c;
    let mut out = dsstc_tensor::Matrix::zeros(rows, shape.n);
    for (n, w) in weights.iter().enumerate() {
        assert_eq!(
            (w.channels(), w.height(), w.width()),
            (shape.c, shape.k, shape.k),
            "weight {n} shape mismatch"
        );
        for c in 0..shape.c {
            for ky in 0..shape.k {
                for kx in 0..shape.k {
                    out[((c * shape.k + ky) * shape.k + kx, n)] = w.get(c, ky, kx);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::{FeatureMap, Matrix};

    #[test]
    fn cost_into_profile_copies_fields() {
        let cost = Im2colCost {
            scalar_ops: 10,
            popc_ops: 3,
            dram_bytes_read: 100,
            dram_bytes_written: 50,
        };
        let shape = ConvShape::square(8, 2, 2, 3, 1, 1);
        let p = cost.into_profile("im2col", &shape);
        assert_eq!(p.scalar_ops, 10);
        assert_eq!(p.popc_instructions, 3);
        assert_eq!(p.dram_bytes_read, 100);
        assert_eq!(p.dram_bytes_written, 50);
        assert!(p.thread_blocks >= 1);
    }

    #[test]
    fn cost_fold_into_adds_ops_only() {
        let cost = Im2colCost {
            scalar_ops: 10,
            popc_ops: 3,
            dram_bytes_read: 100,
            dram_bytes_written: 50,
        };
        let mut p = WorkloadProfile::new("gemm");
        p.scalar_ops = 5;
        p.dram_bytes_read = 7;
        cost.fold_into(&mut p);
        assert_eq!(p.scalar_ops, 15);
        assert_eq!(p.popc_instructions, 3);
        assert_eq!(p.dram_bytes_read, 7);
    }

    #[test]
    fn flatten_weights_layout() {
        let shape = ConvShape::square(4, 2, 3, 2, 1, 0);
        let mut w0 = FeatureMap::zeros(2, 2, 2);
        w0.set(1, 1, 0, 7.0); // c=1, ky=1, kx=0
        let w1 = FeatureMap::zeros(2, 2, 2);
        let w2 = FeatureMap::zeros(2, 2, 2);
        let flat = flatten_weights(&[w0, w1, w2], &shape);
        assert_eq!(flat.rows(), 8);
        assert_eq!(flat.cols(), 3);
        #[allow(clippy::identity_op)] // written as (c * k + ky) * k + kx for clarity
        let row = (1 * 2 + 1) * 2 + 0;
        assert_eq!(flat[(row, 0)], 7.0);
        assert_eq!(flat.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "output channel count")]
    fn flatten_weights_validates_count() {
        let shape = ConvShape::square(4, 1, 2, 1, 1, 0);
        let _ = flatten_weights(&[FeatureMap::zeros(1, 1, 1)], &shape);
    }

    #[test]
    fn lowered_times_flattened_weights_equals_direct_conv() {
        // End-to-end sanity for the shared layout conventions.
        let shape = ConvShape::square(6, 3, 4, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.4, 11);
        let weights: Vec<FeatureMap> = (0..shape.n)
            .map(|n| {
                let mut w = FeatureMap::zeros(shape.c, shape.k, shape.k);
                for c in 0..shape.c {
                    for ky in 0..shape.k {
                        for kx in 0..shape.k {
                            w.set(c, ky, kx, ((n + c + ky + kx) % 3) as f32 - 1.0);
                        }
                    }
                }
                w
            })
            .collect();
        let lowered = dense::DenseIm2col::new().lower(&input, &shape);
        let flat = flatten_weights(&weights, &shape);
        let gemm_out = lowered.matmul(&flat);
        let direct = input.conv2d_reference(&weights, &shape);
        for n in 0..shape.n {
            for oy in 0..shape.out_h() {
                for ox in 0..shape.out_w() {
                    let expect = direct.get(n, oy, ox);
                    let got = gemm_out[(oy * shape.out_w() + ox, n)];
                    assert!(
                        (expect - got).abs() < 1e-3,
                        "mismatch at n={n} oy={oy} ox={ox}: {expect} vs {got}"
                    );
                }
            }
        }
        let _ = Matrix::zeros(1, 1);
    }
}
