//! Bitmap-encoded convolution feature maps (paper Fig. 11b).
//!
//! The sparse implicit im2col keeps the input feature map in global memory in
//! this compact form: per (channel, row) a bit row marking non-zero pixels, a
//! **row offset** giving where that row's non-zeros start in the value
//! array, and the condensed non-zero values themselves. The im2col kernel
//! then works on the bitmap with shifts/masks/popcounts and uses the row
//! offset plus a prefix popcount to find each value — no per-element
//! index loads as CSR would need.

use dsstc_tensor::{ConvShape, FeatureMap};

use crate::bit_matrix::BitMatrix;
use crate::StorageFootprint;

/// A `C x H x W` feature map in bitmap encoding.
///
/// # Example
/// ```
/// use dsstc_tensor::{ConvShape, FeatureMap};
/// use dsstc_formats::BitmapFeatureMap;
///
/// let shape = ConvShape::square(8, 3, 4, 3, 1, 1);
/// let fm = FeatureMap::random_sparse(&shape, 0.7, 1);
/// let enc = BitmapFeatureMap::encode(&fm);
/// assert_eq!(enc.decode(), fm);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BitmapFeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    /// One bit per pixel; logical index `(c * height + y, x)`.
    bitmap: BitMatrix,
    /// Condensed non-zero values in (channel, row, column) scan order.
    values: Vec<f32>,
    /// `row_offsets[c * height + y]` = index into `values` where row `(c, y)`
    /// starts; length `channels * height + 1`.
    row_offsets: Vec<usize>,
}

impl BitmapFeatureMap {
    /// Encodes a dense feature map.
    pub fn encode(fm: &FeatureMap) -> Self {
        let (channels, height, width) = (fm.channels(), fm.height(), fm.width());
        let mut bitmap = BitMatrix::new(channels * height, width);
        let mut values = Vec::new();
        let mut row_offsets = Vec::with_capacity(channels * height + 1);
        row_offsets.push(0);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    let v = fm.get(c, y, x);
                    if v != 0.0 {
                        bitmap.set(c * height + y, x, true);
                        values.push(v);
                    }
                }
                row_offsets.push(values.len());
            }
        }
        BitmapFeatureMap { channels, height, width, bitmap, values, row_offsets }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Shape sanity-check against a convolution descriptor.
    pub fn matches_shape(&self, shape: &ConvShape) -> bool {
        self.channels == shape.c && self.height == shape.h && self.width == shape.w
    }

    /// Number of non-zero pixels.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero pixels.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.channels * self.height * self.width) as f64
    }

    /// The pixel bitmap row for `(channel, y)` as packed words.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn row_bits(&self, channel: usize, y: usize) -> &[u64] {
        assert!(channel < self.channels && y < self.height, "row out of bounds");
        self.bitmap.row_words(channel * self.height + y)
    }

    /// Whether pixel `(channel, y, x)` is non-zero.
    pub fn bit(&self, channel: usize, y: usize, x: usize) -> bool {
        assert!(
            channel < self.channels && y < self.height && x < self.width,
            "index out of bounds"
        );
        self.bitmap.get(channel * self.height + y, x)
    }

    /// Start offset of row `(channel, y)`'s values in the condensed value
    /// array — the "row offset" field of Fig. 11b.
    pub fn row_offset(&self, channel: usize, y: usize) -> usize {
        assert!(channel < self.channels && y < self.height, "row out of bounds");
        self.row_offsets[channel * self.height + y]
    }

    /// Number of non-zeros in row `(channel, y)` (the row's POPC).
    pub fn row_nnz(&self, channel: usize, y: usize) -> usize {
        let idx = channel * self.height + y;
        self.row_offsets[idx + 1] - self.row_offsets[idx]
    }

    /// The condensed non-zero values of row `(channel, y)`.
    pub fn row_values(&self, channel: usize, y: usize) -> &[f32] {
        let idx = channel * self.height + y;
        &self.values[self.row_offsets[idx]..self.row_offsets[idx + 1]]
    }

    /// Reads pixel `(channel, y, x)` via bitmap rank + row offset — the exact
    /// access path of the bitmap im2col (one popcount, no dependent index
    /// loads).
    pub fn get(&self, channel: usize, y: usize, x: usize) -> f32 {
        if !self.bit(channel, y, x) {
            return 0.0;
        }
        let row = channel * self.height + y;
        let rank = self.bitmap.rank(row, x);
        self.values[self.row_offsets[row] + rank]
    }

    /// Reads pixel treating out-of-bounds coordinates as zero (padding).
    pub fn get_padded(&self, channel: usize, y: isize, x: isize) -> f32 {
        if channel >= self.channels
            || y < 0
            || x < 0
            || y as usize >= self.height
            || x as usize >= self.width
        {
            0.0
        } else {
            self.get(channel, y as usize, x as usize)
        }
    }

    /// Reconstructs the dense feature map.
    pub fn decode(&self) -> FeatureMap {
        let mut fm = FeatureMap::zeros(self.channels, self.height, self.width);
        for c in 0..self.channels {
            for y in 0..self.height {
                let mut vi = self.row_offset(c, y);
                for x in 0..self.width {
                    if self.bit(c, y, x) {
                        fm.set(c, y, x, self.values[vi]);
                        vi += 1;
                    }
                }
            }
        }
        fm
    }

    /// Storage footprint: FP16 values + per-pixel bitmap + 4-byte row
    /// offsets.
    pub fn storage(&self) -> StorageFootprint {
        StorageFootprint {
            value_bytes: self.nnz() as u64 * 2,
            metadata_bytes: self.bitmap.storage_bytes() + self.row_offsets.len() as u64 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::Matrix;

    fn paper_feature_map() -> FeatureMap {
        // The 3x6 feature map of paper Fig. 11a.
        FeatureMap::from_channels(&[Matrix::from_rows(&[
            &[0.0, 4.0, 0.0, 2.0, 3.0, 0.0],
            &[0.0, 0.0, 5.0, 0.0, 0.0, 2.0],
            &[6.0, 0.0, 0.0, 0.0, 3.0, 0.0],
        ])])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let shape = ConvShape::square(9, 5, 2, 3, 1, 1);
        let fm = FeatureMap::random_sparse(&shape, 0.6, 17);
        let enc = BitmapFeatureMap::encode(&fm);
        assert_eq!(enc.decode(), fm);
        assert_eq!(enc.nnz(), fm.nnz());
        assert!(enc.matches_shape(&shape));
    }

    #[test]
    fn paper_example_rows() {
        let enc = BitmapFeatureMap::encode(&paper_feature_map());
        // Row 0 of Fig. 11: bitmap 010110, values [4, 2, 3].
        assert_eq!(enc.row_values(0, 0), &[4.0, 2.0, 3.0]);
        assert_eq!(enc.row_nnz(0, 0), 3);
        assert_eq!(enc.row_offset(0, 0), 0);
        // Row 1: values [5, 2], starting after row 0's 3 values.
        assert_eq!(enc.row_values(0, 1), &[5.0, 2.0]);
        assert_eq!(enc.row_offset(0, 1), 3);
        // Row 2: values [6, 3].
        assert_eq!(enc.row_values(0, 2), &[6.0, 3.0]);
        assert_eq!(enc.row_offset(0, 2), 5);
    }

    #[test]
    fn bit_and_get_accessors_agree_with_dense() {
        let fm = paper_feature_map();
        let enc = BitmapFeatureMap::encode(&fm);
        for y in 0..3 {
            for x in 0..6 {
                assert_eq!(enc.bit(0, y, x), fm.get(0, y, x) != 0.0);
                assert_eq!(enc.get(0, y, x), fm.get(0, y, x));
            }
        }
    }

    #[test]
    fn padded_access() {
        let enc = BitmapFeatureMap::encode(&paper_feature_map());
        assert_eq!(enc.get_padded(0, -1, 0), 0.0);
        assert_eq!(enc.get_padded(0, 0, 6), 0.0);
        assert_eq!(enc.get_padded(0, 0, 1), 4.0);
        assert_eq!(enc.get_padded(1, 0, 0), 0.0); // channel out of range
    }

    #[test]
    fn multi_channel_row_offsets_are_cumulative() {
        let shape = ConvShape::square(4, 3, 1, 1, 1, 0);
        let fm = FeatureMap::random_sparse(&shape, 0.5, 23);
        let enc = BitmapFeatureMap::encode(&fm);
        let mut expected = 0;
        for c in 0..3 {
            for y in 0..4 {
                assert_eq!(enc.row_offset(c, y), expected);
                expected += enc.row_nnz(c, y);
            }
        }
        assert_eq!(expected, enc.nnz());
    }

    #[test]
    fn all_zero_feature_map() {
        let fm = FeatureMap::zeros(2, 3, 3);
        let enc = BitmapFeatureMap::encode(&fm);
        assert_eq!(enc.nnz(), 0);
        assert!((enc.sparsity() - 1.0).abs() < 1e-12);
        assert_eq!(enc.decode(), fm);
    }

    #[test]
    fn storage_footprint() {
        let enc = BitmapFeatureMap::encode(&paper_feature_map());
        let s = enc.storage();
        assert_eq!(s.value_bytes, 7 * 2);
        // 3 rows of bitmap (1 word each) + 4 row offsets * 4 bytes.
        assert_eq!(s.metadata_bytes, 3 * 8 + 4 * 4);
    }
}
