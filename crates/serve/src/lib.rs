//! # dsstc-serve — SLO-aware, multi-device batched inference serving
//!
//! A serving runtime on top of the dual-side sparse Tensor Core stack,
//! turning the one-shot estimates of [`dsstc_kernels`] / `dsstc::inference`
//! into a request-driven system:
//!
//! * [`ModelRepository`] — loads a network from [`dsstc_models`], prunes its
//!   weights and **pre-encodes them once** into the paper's two-level bitmap
//!   format, cached per `(model, sparsity, encoding)` key. The paper encodes
//!   pruned weights offline for exactly this reason: weight sparsity is
//!   static, so per-request re-encoding is pure waste. Encodings are
//!   **device-parameterised** (an [`EncodingSpec`] names the tiling +
//!   operand layouts, derived from each device's
//!   [`dsstc_sim::GpuConfig::native_tiling`]), the in-memory tier is
//!   LRU-bounded by a [`CacheBudget`], and an optional on-disk store
//!   (`encode_cache_dir`) persists artifacts in a versioned, checksummed
//!   binary format so a restarted server skips the prune+encode warm-up
//!   entirely.
//! * [`BatchScheduler`] — accepts [`InferRequest`]s on a queue and
//!   dynamically merges compatible requests into larger-M GEMM batches,
//!   bounded by a maximum batch size and per-request SLO deadlines. Requests
//!   carry a [`Priority`]: when a class holds more requests than fit in one
//!   batch, higher priorities are extracted first (FIFO within a priority),
//!   and a request about to miss its deadline flushes its batch early.
//! * [`DeviceDispatcher`] — routes every released batch onto a
//!   [`DevicePool`] of (possibly heterogeneous) modelled GPUs — e.g. V100s
//!   next to A100s — picking the device that minimises **modelled completion
//!   time** via per-device [`BatchTimingModel`]s (round-robin is kept as the
//!   baseline policy).
//! * [`WorkerPool`] — one pinned OS worker per device executing its batches
//!   on that device's **own** dual-side SpGEMM kernel against the encoding
//!   cached for its tiling, so heterogeneous devices coexist functionally;
//!   every request receives an [`InferResponse`] carrying its output
//!   features, the encoding it executed and the modelled GPU latency of the
//!   real network at the batch's size.
//! * [`net::WireServer`] — a dependency-free, epoll-based TCP front-end
//!   speaking a length-prefixed, checksummed wire protocol (magic `DSRQ` /
//!   `DSRS`; see `docs/WIRE_PROTOCOL.md`), so real network clients drive
//!   the same submit path: pipelined requests per connection, responses
//!   streamed back as batches complete, error frames, connection limits
//!   and graceful drain. [`net::WireClient`] is the matching blocking
//!   client.
//! * [`PoissonArrivals`] — a seeded open-loop traffic generator for
//!   latency-vs-offered-load measurements (see the `serve_throughput`
//!   sweep's `--open-loop` mode).
//! * [`ServerStats`] — throughput, aggregate **and per-priority**
//!   queue/execute latency percentiles, the batch-size histogram,
//!   per-device modelled utilisation and the encode-cache hit rate.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use dsstc_serve::{
//!     DevicePool, InferRequest, InferenceServer, ModelId, Priority, ServeConfig,
//! };
//! use dsstc_sim::GpuConfig;
//! use dsstc_tensor::{Matrix, SparsityPattern};
//!
//! let mut server = InferenceServer::start(
//!     ServeConfig::default()
//!         .with_devices(DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]))
//!         .with_max_batch(4)
//!         .with_max_queue_wait(Duration::from_millis(1))
//!         .with_proxy_dim(32),
//! );
//!
//! // Submit a burst of BERT requests; the scheduler batches them and the
//! // dispatcher spreads batches over the mixed V100 + A100 pool.
//! let pending: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let features = Matrix::random_sparse(2, 32, 0.3, SparsityPattern::Uniform, seed);
//!         let request = InferRequest::new(ModelId::BertBase, features)
//!             .with_priority(if seed == 0 { Priority::High } else { Priority::Normal });
//!         server.submit(request).unwrap()
//!     })
//!     .collect();
//! for p in pending {
//!     let response = p.wait().unwrap();
//!     assert_eq!(response.output.rows(), 2);
//!     assert!(response.modelled_batch_us > 0.0);
//!     assert!(response.device < 2);
//! }
//!
//! // The first request encoded the weights; the rest reused the cache.
//! let stats = server.stats();
//! assert_eq!(stats.completed_requests, 4);
//! assert_eq!(stats.encode_misses, 1);
//! assert_eq!(stats.per_device.len(), 2);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod cluster;
pub mod config;
pub mod dispatch;
#[cfg(target_os = "linux")]
pub mod net;
pub mod repository;
pub mod request;
pub mod server;
pub mod stats;
pub mod telemetry;
pub mod timing;
pub mod traffic;
pub mod worker;

pub use crate::batcher::{BatchPolicy, BatchScheduler};
pub use crate::cluster::{HashRing, NodeEntry, ShardMap};
pub use crate::config::{AdmissionControl, ClusterConfig, DevicePool, ServeConfig};
pub use crate::dispatch::{DeviceAssignment, DeviceDispatcher, DispatchPolicy};
#[cfg(target_os = "linux")]
pub use crate::net::{ClusterClient, WireClient, WireServer};
pub use crate::repository::{
    CacheBudget, EncodeCacheStats, EncodedLayer, EncodedModel, ModelRepository, WarmBootReport,
};
pub use crate::request::{InferRequest, InferResponse, ModelId, ModelKey, Priority};
pub use crate::server::{InferenceServer, PendingResponse, ServeError};
pub use crate::stats::{
    percentile, ClusterStats, DeviceStats, PriorityLatency, ServerStats, WireStats,
};
#[cfg(target_os = "linux")]
pub use crate::telemetry::MetricsServer;
pub use crate::telemetry::{
    render_prometheus, CacheOutcome, LogHistogram, MetricsRegistry, RequestTrace, Stage, Telemetry,
    TraceSink,
};
pub use crate::timing::BatchTimingModel;
pub use crate::traffic::{pace_until, PoissonArrivals};
pub use crate::worker::WorkerPool;
pub use dsstc_kernels::EncodingSpec;
