//! # Dual-side Sparse Tensor Core
//!
//! A Rust reproduction of *"Dual-side Sparse Tensor Core"* (ISCA 2021): a
//! GPU Tensor Core extension that exploits **both** weight and activation
//! sparsity for sparse GEMM (SpGEMM) and sparse convolution (SpCONV) by
//! combining an **outer-product** computation primitive with a **bitmap**
//! sparse encoding.
//!
//! The workspace is organised as a stack of crates — dense tensors
//! ([`dsstc_tensor`]), sparse encodings ([`dsstc_formats`]), a V100-like
//! timing model ([`dsstc_sim`]), the GEMM/convolution kernels and baselines
//! ([`dsstc_kernels`]), DNN workload tables ([`dsstc_models`]) and the
//! hardware-overhead model ([`dsstc_hwmodel`]). This crate is the façade a
//! downstream user works with:
//!
//! * [`DualSideSparseTensorCore`] — run or estimate individual SpGEMM /
//!   SpCONV operations and compare them against the baselines,
//! * [`inference`] — estimate end-to-end network inference for the five
//!   evaluated DNNs under every execution scheme of the paper's Fig. 22, and
//! * [`serve`] — a batched, multi-threaded inference serving runtime with a
//!   pre-encoded model repository ([`serve::InferenceServer`]).
//!
//! # Quickstart
//!
//! ```
//! use dsstc::DualSideSparseTensorCore;
//! use dsstc_tensor::{Matrix, SparsityPattern};
//!
//! let dsstc = DualSideSparseTensorCore::v100();
//!
//! // A sparse activation matrix and a pruned weight matrix.
//! let a = Matrix::random_sparse(256, 256, 0.7, SparsityPattern::Uniform, 1);
//! let b = Matrix::random_sparse(256, 256, 0.8, SparsityPattern::Uniform, 2);
//!
//! // Functionally correct SpGEMM...
//! let result = dsstc.spgemm(&a, &b);
//! assert!(result.output.approx_eq(&a.matmul(&b), 1e-2));
//!
//! // ...with a modelled speedup over the dense Tensor Core baseline.
//! assert!(result.speedup_over_dense > 1.0);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod inference;

pub use crate::engine::{DualSideSparseTensorCore, SpGemmResult, SparsityComparison};
pub use crate::inference::{
    GemmScheme, InferenceEstimator, LayerEstimate, NetworkReport, SchemeTime,
};

// Re-export the component crates so downstream users need only one
// dependency.
pub use dsstc_formats as formats;
pub use dsstc_hwmodel as hwmodel;
pub use dsstc_kernels as kernels;
pub use dsstc_models as models;
pub use dsstc_serve as serve;
pub use dsstc_sim as sim;
pub use dsstc_tensor as tensor;
