//! Criterion bench behind the warp-level skip model (paper Fig. 5/6): cost
//! of evaluating warp-tile OHMMA-skip counts across sparsity levels, and the
//! functional warp-level SpGEMM step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc_formats::{BitmapMatrix, VectorLayout};
use dsstc_kernels::bitmap_spgemm::warp::{warp_spgemm, warp_tile_profile};
use dsstc_sim::OtcConfig;
use dsstc_tensor::{Matrix, SparsityPattern};
use std::hint::black_box;

fn bench_warp_tile_profile(c: &mut Criterion) {
    let otc = OtcConfig::paper();
    let mut group = c.benchmark_group("warp_tile_profile");
    for &nnz in &[32usize, 20, 8, 1] {
        let a = vec![nnz; 16];
        let b = vec![nnz; 16];
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |bench, _| {
            bench.iter(|| black_box(warp_tile_profile(&a, &b, 32, &otc, true)));
        });
    }
    group.finish();
}

fn bench_warp_spgemm_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_spgemm_32x32x16");
    for &sparsity in &[0.0, 0.5, 0.9] {
        let a = Matrix::random_sparse(32, 16, sparsity, SparsityPattern::Uniform, 3);
        let b = Matrix::random_sparse(16, 32, sparsity, SparsityPattern::Uniform, 4);
        let a_enc = BitmapMatrix::encode(&a, VectorLayout::ColumnMajor);
        let b_enc = BitmapMatrix::encode(&b, VectorLayout::RowMajor);
        group.bench_with_input(BenchmarkId::from_parameter(sparsity), &sparsity, |bench, _| {
            bench.iter(|| {
                let mut acc = Matrix::zeros(32, 32);
                warp_spgemm(&a_enc, &b_enc, &mut acc);
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warp_tile_profile, bench_warp_spgemm_functional);
criterion_main!(benches);
