//! Technology nodes and inter-node scaling.
//!
//! The paper runs CACTI at 22 nm and scales the results to 12 nm using the
//! equations of Stillmaker & Baas ("Scaling equations for the accurate
//! prediction of CMOS device performance from 180 nm to 7 nm"). Only the
//! area and power scaling factors are needed here.

/// A CMOS technology node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TechnologyNode {
    /// 40 nm (used by the SpArch comparison in Section II-C).
    Nm40,
    /// 22 nm (CACTI's native node in the paper).
    Nm22,
    /// 16 nm.
    Nm16,
    /// 12 nm (the V100's node, Table IV's target).
    Nm12,
}

impl TechnologyNode {
    /// Feature size in nanometres.
    pub fn nanometres(&self) -> f64 {
        match self {
            TechnologyNode::Nm40 => 40.0,
            TechnologyNode::Nm22 => 22.0,
            TechnologyNode::Nm16 => 16.0,
            TechnologyNode::Nm12 => 12.0,
        }
    }

    /// Relative logic/SRAM area versus the 22 nm reference node
    /// (area scales roughly with the square of the feature size, damped by
    /// the slower SRAM scaling of FinFET nodes).
    pub fn area_factor_vs_22nm(&self) -> f64 {
        let ratio = self.nanometres() / 22.0;
        // Exponent 1.7 rather than 2.0 reflects the sub-quadratic SRAM/logic
        // scaling reported by Stillmaker & Baas for post-22 nm nodes.
        ratio.powf(1.7)
    }

    /// Relative dynamic power versus 22 nm at constant frequency
    /// (capacitance shrinks with area, supply voltage drops slowly).
    pub fn power_factor_vs_22nm(&self) -> f64 {
        let ratio = self.nanometres() / 22.0;
        ratio.powf(1.3)
    }

    /// Scales an area figure quoted at 22 nm to this node.
    pub fn scale_area_from_22nm(&self, area_mm2: f64) -> f64 {
        area_mm2 * self.area_factor_vs_22nm()
    }

    /// Scales a power figure quoted at 22 nm to this node.
    pub fn scale_power_from_22nm(&self, power_w: f64) -> f64 {
        power_w * self.power_factor_vs_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_scales_to_itself() {
        assert!((TechnologyNode::Nm22.area_factor_vs_22nm() - 1.0).abs() < 1e-12);
        assert!((TechnologyNode::Nm22.power_factor_vs_22nm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_nodes_shrink_area_and_power() {
        let a12 = TechnologyNode::Nm12.area_factor_vs_22nm();
        assert!(a12 < 1.0 && a12 > 0.2, "got {a12}");
        let p12 = TechnologyNode::Nm12.power_factor_vs_22nm();
        assert!(p12 < 1.0 && p12 > 0.3, "got {p12}");
        // Area shrinks faster than power.
        assert!(a12 < p12);
    }

    #[test]
    fn larger_nodes_grow() {
        assert!(TechnologyNode::Nm40.area_factor_vs_22nm() > 1.5);
    }

    #[test]
    fn scaling_helpers_apply_factors() {
        let node = TechnologyNode::Nm12;
        assert!(
            (node.scale_area_from_22nm(10.0) - 10.0 * node.area_factor_vs_22nm()).abs() < 1e-12
        );
        assert!(
            (node.scale_power_from_22nm(2.0) - 2.0 * node.power_factor_vs_22nm()).abs() < 1e-12
        );
    }

    #[test]
    fn monotone_across_nodes() {
        let nodes = [
            TechnologyNode::Nm40,
            TechnologyNode::Nm22,
            TechnologyNode::Nm16,
            TechnologyNode::Nm12,
        ];
        for pair in nodes.windows(2) {
            assert!(pair[0].area_factor_vs_22nm() > pair[1].area_factor_vs_22nm());
        }
    }
}
