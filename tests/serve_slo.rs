//! End-to-end tests of the SLO-aware, multi-device serving tentpole:
//!
//! 1. under overload, high-priority requests see strictly lower p99 queue
//!    latency than low-priority requests sharing the same model; and
//! 2. completion-time-aware dispatch over a mixed V100 + A100 pool yields
//!    at least 10% higher modelled throughput than round-robin on the same
//!    batch trace.

use std::time::Duration;

use dsstc::serve::{
    AdmissionControl, DeviceDispatcher, DevicePool, DispatchPolicy, InferRequest, InferenceServer,
    ModelId, ModelKey, Priority, ServeConfig, ServeError,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

fn features(seed: u64) -> Matrix {
    Matrix::random_sparse(2, 32, 0.4, SparsityPattern::Uniform, seed)
}

#[test]
fn overloaded_server_gives_high_priority_strictly_lower_p99_queue_latency() {
    // One worker, small batches, one model: a burst of 64 requests piles up
    // behind the single device, so extraction order decides who waits. The
    // inputs are pre-generated and heavy (16 rows each through the VGG-16
    // proxy, 13 layers) and submission is a tight loop, so the queue stays
    // deep even at release-mode execution speed.
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_devices(DevicePool::homogeneous(GpuConfig::v100(), 1))
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(5))
            .with_proxy_dim(64),
    );
    server.warm_model(ModelId::Vgg16, None);
    let inputs: Vec<Matrix> =
        (0..64).map(|i| Matrix::random_sparse(16, 64, 0.4, SparsityPattern::Uniform, i)).collect();
    let pending: Vec<_> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, input)| {
            let priority = if i % 2 == 0 { Priority::High } else { Priority::Low };
            let request = InferRequest::new(ModelId::Vgg16, input).with_priority(priority);
            server.submit(request).expect("queued")
        })
        .collect();
    for p in pending {
        let response = p.wait().expect("response");
        assert!(response.batch_size <= 4);
    }
    let stats = server.stats();
    let high = stats.for_priority(Priority::High).clone();
    let low = stats.for_priority(Priority::Low).clone();
    server.shutdown();

    assert_eq!(high.completed, 32);
    assert_eq!(low.completed, 32);
    assert!(
        high.queue_p99_us < low.queue_p99_us,
        "high-priority p99 queue {:.0} us must beat low-priority {:.0} us",
        high.queue_p99_us,
        low.queue_p99_us
    );
    // The median separates too: the whole high class drains before the bulk
    // of the low class under overload.
    assert!(
        high.queue_p50_us < low.queue_p50_us,
        "high-priority p50 queue {:.0} us vs low-priority {:.0} us",
        high.queue_p50_us,
        low.queue_p50_us
    );
}

#[test]
fn admission_control_keeps_high_priority_within_slo_by_shedding_low() {
    // The same overload shape as above — one worker, heavy VGG-16 inputs,
    // a tight 64-request burst at roughly twice what the device drains —
    // but with admission control on. The low class gets a 2 ms SLO it
    // cannot meet under this backlog, so its tail is shed at submit; the
    // high class (projection-proof) is always admitted and its p99 queue
    // wait must land inside its own SLO.
    let high_slo = Duration::from_secs(30);
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_devices(DevicePool::homogeneous(GpuConfig::v100(), 1))
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(5))
            .with_proxy_dim(64)
            .with_admission_control(AdmissionControl::new(
                [Duration::from_millis(2), Duration::from_secs(30), high_slo],
                0.8,
                10_000,
            )),
    );
    server.warm_model(ModelId::Vgg16, None);
    let inputs: Vec<Matrix> =
        (0..64).map(|i| Matrix::random_sparse(16, 64, 0.4, SparsityPattern::Uniform, i)).collect();
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for (i, input) in inputs.into_iter().enumerate() {
        let priority = if i % 2 == 0 { Priority::High } else { Priority::Low };
        let request = InferRequest::new(ModelId::Vgg16, input).with_priority(priority);
        match server.submit(request) {
            Ok(p) => pending.push(p),
            Err(ServeError::ShedLoad { priority: shed_class, projected_us }) => {
                assert_eq!(shed_class, Priority::Low, "only the low class may be shed here");
                assert!(projected_us > 0);
                shed += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    for p in pending {
        p.wait().expect("admitted requests complete");
    }
    let stats = server.stats();
    server.shutdown();

    let high = stats.for_priority(Priority::High);
    let low = stats.for_priority(Priority::Low);
    assert_eq!(high.completed, 32, "the high class is never shed by projection");
    assert_eq!(high.shed, 0);
    assert!(low.shed > 0, "overload must shed part of the low class");
    assert_eq!(low.shed, shed, "submit-side count reconciles with the stats snapshot");
    assert_eq!(low.completed + low.shed, 32, "every low request either served or shed");
    assert_eq!(stats.total_shed(), shed);
    assert!(
        Duration::from_micros(high.queue_p99_us as u64) < high_slo,
        "high-priority p99 queue wait {:.0} us must stay inside its {:?} SLO",
        high.queue_p99_us,
        high_slo
    );
}

#[test]
fn the_admission_queue_bound_holds_under_a_tight_burst() {
    // Generous SLOs take projection shedding out of the picture; the hard
    // queue bound alone must cap the backlog. The queue depth observed
    // after every submit never exceeds the bound, and every rejection is a
    // ShedLoad.
    let bound = 16;
    let hour = Duration::from_secs(3600);
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_devices(DevicePool::homogeneous(GpuConfig::v100(), 1))
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(5))
            .with_proxy_dim(64)
            .with_admission_control(AdmissionControl::new([hour, hour, hour], 1.0, bound)),
    );
    server.warm_model(ModelId::Vgg16, None);
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for i in 0..64u64 {
        let input = Matrix::random_sparse(16, 64, 0.4, SparsityPattern::Uniform, i);
        let request = InferRequest::new(ModelId::Vgg16, input).with_priority(Priority::Normal);
        match server.submit(request) {
            Ok(p) => pending.push(p),
            Err(ServeError::ShedLoad { .. }) => shed += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        assert!(
            server.queue_len() <= bound,
            "queue depth {} exceeds the configured bound {bound}",
            server.queue_len()
        );
    }
    for p in pending {
        p.wait().expect("admitted requests complete");
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.total_shed(), shed);
    assert_eq!(stats.completed_requests + shed, 64);
}

#[test]
fn min_completion_time_dispatch_beats_round_robin_by_10_percent_on_a_mixed_pool() {
    // The identical batch trace is replayed against two dispatchers over
    // the same V100 + A100 pool; modelled throughput = requests handled per
    // modelled makespan microsecond. The pure modelled clock makes this
    // fully deterministic.
    let pool = DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]);
    let vgg = ModelKey::new(ModelId::Vgg16, None);
    let resnet = ModelKey::new(ModelId::ResNet50, None);
    let trace: Vec<(ModelKey, usize)> =
        (0..40).map(|i| if i % 3 == 0 { (resnet, 8) } else { (vgg, 8) }).collect();

    let throughput = |policy: DispatchPolicy| {
        let dispatcher = DeviceDispatcher::new(&pool, policy);
        let mut requests = 0usize;
        for &(key, batch) in &trace {
            dispatcher.assign(key, batch);
            requests += batch;
        }
        requests as f64 / dispatcher.makespan_us()
    };

    let smart = throughput(DispatchPolicy::MinCompletionTime);
    let naive = throughput(DispatchPolicy::RoundRobin);
    assert!(
        smart >= naive * 1.10,
        "completion-time dispatch {smart:.6} req/us should beat round-robin \
         {naive:.6} req/us by >= 10% (ratio {:.3})",
        smart / naive
    );
}

#[test]
fn mixed_pool_server_spreads_batches_and_reports_utilisation() {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_devices(DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]))
            .with_max_batch(4)
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(32),
    );
    server.warm_model(ModelId::BertBase, None);
    let pending: Vec<_> = (0..48)
        .map(|i| server.submit(InferRequest::new(ModelId::BertBase, features(i))).expect("queued"))
        .collect();
    for p in pending {
        p.wait().expect("response");
    }
    let stats = server.stats();
    server.shutdown();

    assert_eq!(stats.completed_requests, 48);
    assert_eq!(stats.per_device.len(), 2);
    assert_eq!(stats.per_device[0].name, "Tesla V100");
    assert_eq!(stats.per_device[1].name, "A100");
    let executed: u64 = stats.per_device.iter().map(|d| d.batches).sum();
    assert_eq!(executed, stats.executed_batches);
    assert!(stats.modelled_makespan_us > 0.0);
    for device in &stats.per_device {
        assert!(device.utilisation >= 0.0 && device.utilisation <= 1.0);
    }
    // Completion-time dispatch keeps the pool busy on both sides: the
    // busiest device defines the makespan (utilisation 1.0), and the other
    // is not idle.
    assert!(stats.per_device.iter().any(|d| (d.utilisation - 1.0).abs() < 1e-9));
    assert!(stats.per_device.iter().all(|d| d.batches > 0), "both devices executed batches");
}
