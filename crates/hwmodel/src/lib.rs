//! Analytical hardware area / power model for the dual-side sparse Tensor
//! Core extensions (paper Section VI-E, Table IV).
//!
//! The paper estimates its overhead with CACTI 7 at 22 nm scaled to 12 nm
//! plus RTL estimates for the operand collector and the extra FP32 adders.
//! This crate re-derives the same table from first-order component models:
//!
//! * [`sram`]: a CACTI-style SRAM macro model (area/leakage per bit plus
//!   per-bank and per-port overheads),
//! * [`logic`]: FP32 adder arrays and the operand-collector crossbar/queues,
//! * [`tech`]: technology scaling between nodes (after Stillmaker & Baas),
//! * [`overhead`]: the composition of the three Table IV modules and their
//!   percentage of the V100 die and TDP.
//!
//! # Example
//! ```
//! use dsstc_hwmodel::overhead::DsstcOverhead;
//! let table = DsstcOverhead::paper_configuration();
//! let total = table.total();
//! assert!(total.area_mm2 < 20.0);
//! assert!(total.power_w < 6.0);
//! ```

#![deny(missing_docs)]

pub mod logic;
pub mod overhead;
pub mod sram;
pub mod tech;

pub use crate::overhead::{DsstcOverhead, ModuleOverhead};
pub use crate::sram::SramMacro;
pub use crate::tech::TechnologyNode;
