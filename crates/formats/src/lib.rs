//! Sparse matrix encodings for the dual-side sparse Tensor Core.
//!
//! The paper's central encoding is the **bitmap two-tuple**: a bit per matrix
//! element (1 = non-zero) plus the non-zero values stored in a condensed
//! order — column-major for the A operand and row-major for the B operand of
//! an outer-product GEMM (paper Fig. 2b). On top of that sits the
//! **two-level bitmap** (paper Fig. 9) which adds a warp-bitmap that marks
//! entirely-empty warp tiles so the device-level SpGEMM can skip them, and
//! keeps every element bitmap local to its tile so partial-matrix non-zeros
//! stay inside the Tensor Core accumulation buffer (Fig. 8b).
//!
//! [`CsrMatrix`] implements the compressed-sparse-row baseline the paper
//! compares against (cuSparse-style), and [`BitmapFeatureMap`] is the
//! bitmap/values/row-offset encoding of convolution inputs consumed by the
//! bitmap-based sparse im2col (Fig. 11b).
//!
//! # Example
//!
//! ```
//! use dsstc_tensor::{Matrix, SparsityPattern};
//! use dsstc_formats::{BitmapMatrix, VectorLayout};
//!
//! let dense = Matrix::random_sparse(32, 32, 0.8, SparsityPattern::Uniform, 1);
//! let a = BitmapMatrix::encode(&dense, VectorLayout::ColumnMajor);
//! assert_eq!(a.decode(), dense);
//! assert_eq!(a.nnz(), dense.nnz());
//! ```

#![deny(missing_docs)]

pub mod bit_matrix;
pub mod bitmap;
pub mod csr;
pub mod feature_map;
pub mod serialize;
pub mod two_level;

pub use crate::bit_matrix::BitMatrix;
pub use crate::bitmap::{BitmapMatrix, VectorLayout};
pub use crate::csr::CsrMatrix;
pub use crate::feature_map::BitmapFeatureMap;
pub use crate::serialize::{CodecError, FORMAT_VERSION};
pub use crate::two_level::TwoLevelBitmapMatrix;

/// Storage cost in bytes of one encoded matrix, used by the memory-traffic
/// model and the encoding-comparison benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Bytes spent on non-zero values (2 bytes per FP16 value).
    pub value_bytes: u64,
    /// Bytes spent on index metadata (bitmaps, row pointers, column indices).
    pub metadata_bytes: u64,
}

impl StorageFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.value_bytes + self.metadata_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_footprint_total() {
        let f = StorageFootprint { value_bytes: 10, metadata_bytes: 5 };
        assert_eq!(f.total(), 15);
    }
}
