//! Sparsity sweep: how the dual-side SpGEMM speedup over the dense Tensor
//! Core evolves as activation and weight sparsity vary — a coarse,
//! quick-to-run version of the paper's Fig. 21 including the crossover
//! region around ~25 % sparsity where the bitmap/outer-product overheads are
//! amortised.
//!
//! Run with `cargo run --release -p dsstc --example sparsity_sweep`.

use dsstc::DualSideSparseTensorCore;
use dsstc_tensor::GemmShape;

fn main() {
    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(2048, 2048, 2048);
    let sparsities = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99];

    let dense_us = engine.compare_schemes(shape, 0.0, 0.0).dense_us;
    println!("Dual-side SpGEMM speedup over CUTLASS, {shape} (dense baseline {dense_us:.1} us)");
    print!("{:<18}", "A \\ B sparsity");
    for &b in &sparsities {
        print!("{:>10}", format!("{:.0}%", b * 100.0));
    }
    println!();
    for &a in &sparsities {
        print!("{:<18}", format!("{:.0}%", a * 100.0));
        for &b in &sparsities {
            let t = engine.estimate_spgemm(shape, a, b).time_us();
            print!("{:>10}", format!("{:.2}x", dense_us / t));
        }
        println!();
    }
    println!();
    println!("The single-side Sparse Tensor Core baseline is pinned at its fixed ratio:");
    let cmp = engine.compare_schemes(shape, 0.0, 0.75);
    println!(
        "  Sparse Tensor Core [72]: {:.1} us ({:.2}x) regardless of activation sparsity",
        cmp.vector_sparse_us,
        dense_us / cmp.vector_sparse_us
    );
}
