//! Wire-codec hot-path benches: pipelined-burst decode through the
//! [`FrameDecoder`] read-offset cursor, and zero-copy frame encode.
//!
//! The decode group is the satellite proof for the PR that removed the
//! O(buffer) `drain(..consumed)` memmove per frame: a burst of pipelined
//! frames fed in one `feed` used to pay a quadratic total memmove, the
//! cursor makes the same burst linear (compaction only when the consumed
//! prefix exceeds half the buffer).
//!
//! Linux-only, like `dsstc_serve::net` itself.

#[cfg(target_os = "linux")]
mod linux {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use dsstc_serve::net::{encode_request_into, FrameDecoder, RequestFrame};
    use dsstc_serve::{InferRequest, ModelId, ServeConfig};
    use dsstc_tensor::{Matrix, SparsityPattern};
    use std::hint::black_box;

    const PROXY_DIM: usize = 64;

    fn request(seed: u64) -> InferRequest {
        let features = Matrix::random_sparse(2, PROXY_DIM, 0.4, SparsityPattern::Uniform, seed);
        InferRequest::new(ModelId::RnnLm, features)
    }

    /// One wire burst: `frames` pipelined request frames, back to back, as
    /// a client that pipelines without waiting would put them on the
    /// socket.
    fn burst(frames: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        for seed in 0..frames {
            encode_request_into(&mut bytes, seed, &request(seed));
        }
        bytes
    }

    fn bench_pipelined_burst_decode(c: &mut Criterion) {
        let max_frame_len = ServeConfig::default().max_frame_len;
        let mut group = c.benchmark_group("wire_pipelined_burst_decode");
        for frames in [16u64, 64, 256] {
            let bytes = burst(frames);
            group.bench_with_input(BenchmarkId::from_parameter(frames), &bytes, |b, bytes| {
                b.iter(|| {
                    let mut decoder = FrameDecoder::new(max_frame_len);
                    decoder.feed(bytes);
                    let mut decoded = 0u64;
                    while let Some(frame) = decoder.next_frame().expect("well-formed burst") {
                        black_box(&frame);
                        decoded += 1;
                    }
                    assert_eq!(decoded, frames);
                });
            });
        }
        group.finish();
    }

    fn bench_request_encode_into(c: &mut Criterion) {
        let req = request(7);
        let mut group = c.benchmark_group("wire_request_encode");
        // The old path: build an owned frame (features cloned), then
        // serialise it.
        group.bench_function("frame_to_bytes", |b| {
            b.iter(|| black_box(RequestFrame::from_request(1, &req).to_bytes()));
        });
        // The hot path: serialise straight from the borrowed request into
        // a reused buffer.
        group.bench_function("encode_into_reused_buffer", |b| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                encode_request_into(&mut out, 1, &req);
                black_box(out.len());
            });
        });
        group.finish();
    }

    criterion_group!(benches, bench_pipelined_burst_decode, bench_request_encode_into);
}

#[cfg(target_os = "linux")]
criterion::criterion_main!(linux::benches);

#[cfg(not(target_os = "linux"))]
fn main() {}
