//! Word-parallel functional execution of the two-level bitmap SpGEMM.
//!
//! This is the software analogue of what the paper's hardware does in one
//! cycle per step: the per-step A-column and B-row bitmaps live in single
//! `u64` words ([`dsstc_formats::BitmapMatrix::vector_word`]), the
//! AND/empty test is one integer op, and the gather walks set bits with
//! `trailing_zeros` while consuming the condensed values sequentially —
//! no per-step `Vec` allocations and no per-bit bounds checks, unlike the
//! scalar reference ([`super::warp::warp_spgemm`], retained for
//! differential testing).
//!
//! Layout of one GEMM:
//!
//! * **B preparation** (once per call): every non-empty B tile's condensed
//!   rows are scattered into dense `warp_k x warp_n` step rows. A step's
//!   accumulation is then a contiguous `axpy` over the tile row — the
//!   auto-vectoriser turns it into SIMD FMAs — while the step's packed word
//!   still short-circuits empty steps. Prepared tiles are shared read-only
//!   across worker threads.
//! * **Cache-blocked tile grid**: each output band (one `warp_m`-row strip)
//!   walks `jn` in blocks of [`JN_BLOCK`] tiles with `kk` innermost, so the
//!   block's accumulators stay L1-resident and the band's prepared A-tile
//!   words are reused across the whole block.
//! * **Within-GEMM parallelism**: output bands are distributed over scoped
//!   [`std::thread`]s; each thread owns a disjoint row range of the output,
//!   so the result is deterministic and bit-identical at any thread count.

use dsstc_formats::{BitmapMatrix, TwoLevelBitmapMatrix};
use dsstc_tensor::Matrix;

/// Output-tile columns accumulated together per band pass. Four 32x32 f32
/// accumulators are 16 KiB — comfortably L1-resident next to one prepared
/// B tile row.
const JN_BLOCK: usize = 4;

/// Minimum number of warp tiles in the output grid before spawning threads
/// pays for itself (thread startup is ~10 µs; a tile step chain is ~1 µs).
const MIN_TILES_FOR_THREADS: usize = 64;

/// One B tile with its condensed rows scattered into dense step rows.
struct PreparedBTile {
    /// `warp_k` rows of `warp_n` values: row `k` holds step `k`'s condensed
    /// values scattered to their dense columns, zeros elsewhere.
    rows: Vec<f32>,
    /// Packed step bitmaps; `words[k] == 0` short-circuits step `k`.
    words: Vec<u64>,
}

fn prepare_b_tile(tile: &BitmapMatrix, wk: usize, wn: usize) -> PreparedBTile {
    let mut rows = vec![0.0f32; wk * wn];
    let mut words = vec![0u64; wk];
    for (k, word) in words.iter_mut().enumerate() {
        let w = tile.vector_word(k);
        *word = w;
        if w == 0 {
            continue;
        }
        let dst = &mut rows[k * wn..(k + 1) * wn];
        let mut bits = w;
        for &v in tile.vector_values(k) {
            dst[bits.trailing_zeros() as usize] = v;
            bits &= bits - 1;
        }
    }
    PreparedBTile { rows, words }
}

/// Per-band A-tile preparation: the packed column word of every step plus a
/// borrow of the tile for its condensed value slices.
type PreparedATile<'a> = (Vec<u64>, &'a BitmapMatrix);

fn prepare_a_band<'a>(
    a_enc: &'a TwoLevelBitmapMatrix,
    im: usize,
    wk: usize,
) -> Vec<Option<PreparedATile<'a>>> {
    (0..a_enc.grid_cols())
        .map(|kk| a_enc.tile(im, kk).map(|t| ((0..wk).map(|k| t.vector_word(k)).collect(), t)))
        .collect()
}

/// Accumulates one surviving warp tile: for every step whose A and B words
/// are both non-empty, gather the set A bits and `axpy` the prepared B row
/// into the corresponding accumulator rows.
#[inline]
fn tile_steps(
    a_words: &[u64],
    a_tile: &BitmapMatrix,
    b: &PreparedBTile,
    acc: &mut [f32],
    wn: usize,
) {
    for (k, (&aw, &bw)) in a_words.iter().zip(&b.words).enumerate() {
        if aw == 0 || bw == 0 {
            continue; // whole-step skip: one word test, as in hardware
        }
        let a_vals = a_tile.vector_values(k);
        let b_row = &b.rows[k * wn..(k + 1) * wn];
        let mut bits = aw;
        for &av in a_vals {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let acc_row = &mut acc[r * wn..(r + 1) * wn];
            for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Executes the bands `band_lo..band_hi` into `out_chunk`, which must cover
/// exactly the dense rows `band_lo * warp_m ..` of the output.
#[allow(clippy::too_many_arguments)]
fn run_bands(
    a_enc: &TwoLevelBitmapMatrix,
    b_prep: &[Option<PreparedBTile>],
    bands: std::ops::Range<usize>,
    out_chunk: &mut [f32],
    out_rows: usize,
    out_cols: usize,
    (wm, wn, wk): (usize, usize, usize),
) {
    let grid_n = b_prep.len() / a_enc.grid_cols().max(1);
    let grid_k = a_enc.grid_cols();
    let chunk_row0 = bands.start * wm;
    let mut accs = vec![0.0f32; JN_BLOCK * wm * wn];
    for im in bands {
        let a_band = prepare_a_band(a_enc, im, wk);
        let row0 = im * wm;
        let valid_r = wm.min(out_rows - row0);
        let mut jb = 0;
        while jb < grid_n {
            let jend = (jb + JN_BLOCK).min(grid_n);
            accs.fill(0.0);
            for (kk, a_cell) in a_band.iter().enumerate().take(grid_k) {
                let Some((a_words, a_tile)) = a_cell else { continue };
                for jn in jb..jend {
                    let Some(bt) = &b_prep[kk * grid_n + jn] else { continue };
                    let acc = &mut accs[(jn - jb) * wm * wn..(jn - jb + 1) * wm * wn];
                    tile_steps(a_words, a_tile, bt, acc, wn);
                }
            }
            for jn in jb..jend {
                let col0 = jn * wn;
                let valid_c = wn.min(out_cols - col0);
                let acc = &accs[(jn - jb) * wm * wn..];
                for r in 0..valid_r {
                    let dst_off = (row0 - chunk_row0 + r) * out_cols + col0;
                    out_chunk[dst_off..dst_off + valid_c]
                        .copy_from_slice(&acc[r * wn..r * wn + valid_c]);
                }
            }
            jb = jend;
        }
    }
}

/// Word-parallel `A * B` over two-level bitmap operands. `threads` is the
/// resolved worker count (>= 1); small grids stay single-threaded
/// regardless. The caller has already validated layouts and tilings and
/// that `warp_m`/`warp_n` fit in a word.
pub(crate) fn execute(
    a_enc: &TwoLevelBitmapMatrix,
    b_enc: &TwoLevelBitmapMatrix,
    threads: usize,
) -> Matrix {
    let (wm, wk) = (a_enc.tile_rows(), a_enc.tile_cols());
    let wn = b_enc.tile_cols();
    let (out_rows, out_cols) = (a_enc.rows(), b_enc.cols());
    let (grid_m, grid_n, grid_k) = (a_enc.grid_rows(), b_enc.grid_cols(), a_enc.grid_cols());

    // Dense-expand every non-empty B tile once; the serve path replays one
    // pre-encoded weight operand against many activation batches, and each
    // prepared tile is reused `grid_m` times within a single call.
    let b_prep: Vec<Option<PreparedBTile>> = (0..grid_k * grid_n)
        .map(|cell| b_enc.tile(cell / grid_n, cell % grid_n).map(|t| prepare_b_tile(t, wk, wn)))
        .collect();

    let mut out = Matrix::zeros(out_rows, out_cols);
    let dims = (wm, wn, wk);
    let threads = if grid_m * grid_n < MIN_TILES_FOR_THREADS { 1 } else { threads.min(grid_m) };
    if threads <= 1 {
        run_bands(a_enc, &b_prep, 0..grid_m, out.as_mut_slice(), out_rows, out_cols, dims);
        return out;
    }

    // Distribute bands contiguously; each thread gets a disjoint row range
    // of the output, so no synchronisation is needed and the result is
    // bit-identical at any thread count.
    let bands_per_thread = grid_m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut band_lo = 0;
        while band_lo < grid_m {
            let band_hi = (band_lo + bands_per_thread).min(grid_m);
            let chunk_rows = (band_hi * wm).min(out_rows) - band_lo * wm;
            let (chunk, tail) = rest.split_at_mut(chunk_rows * out_cols);
            rest = tail;
            let b_prep = &b_prep;
            scope.spawn(move || {
                run_bands(a_enc, b_prep, band_lo..band_hi, chunk, out_rows, out_cols, dims);
            });
            band_lo = band_hi;
        }
    });
    out
}
