//! The single-side Sparse Tensor Core baseline (Zhu et al., MICRO'19,
//! reference \[72\] of the paper).
//!
//! That design applies **vector-wise pruning with a fixed 75 % ratio** to the
//! weight operand only. The hardware skips the pruned weight positions but
//! (a) cannot exploit any activation sparsity and (b) pays an offset-decoding
//! cost for every surviving 4-element group, which caps its practical gain:
//! the paper measures a flat ~1.86x over CUTLASS on large GEMMs regardless of
//! the other operand's sparsity (Fig. 21).

use dsstc_sim::{GpuConfig, WorkloadProfile};
use dsstc_tensor::{GemmShape, Matrix};

use crate::tiling::{GemmTiling, TrafficInputs};

/// The fixed pruning ratio the baseline enforces on the weight operand.
pub const VECTOR_WISE_PRUNING_RATIO: f64 = 0.75;

/// Single-side sparse GEMM model (Sparse Tensor Core \[72\]).
#[derive(Clone, Debug)]
pub struct VectorSparseGemm {
    config: GpuConfig,
    tiling: GemmTiling,
}

impl VectorSparseGemm {
    /// Creates the baseline model for the given GPU.
    pub fn new(config: GpuConfig) -> Self {
        VectorSparseGemm { config, tiling: GemmTiling::cutlass_dense() }
    }

    /// Builds the workload profile for an `M x N x K` GEMM whose weight
    /// operand (B) was vector-wise pruned to 75 % sparsity. The activation
    /// operand's sparsity is irrelevant to this design.
    ///
    /// `weight_sparsity` is clamped to the design's fixed 75 % ratio: the
    /// hardware prunes to exactly that ratio, so a denser weight matrix is
    /// pruned down and a sparser one gains nothing extra.
    pub fn profile(&self, shape: &GemmShape, weight_sparsity: f64) -> WorkloadProfile {
        let _ = weight_sparsity; // fixed-ratio design: see doc comment
        let retained = 1.0 - VECTOR_WISE_PRUNING_RATIO;
        let mut p = WorkloadProfile::new(format!("vector-sparse-gemm-{shape}"));
        let macs_per_instruction =
            (self.config.macs_per_tc_instruction * self.config.tensor_cores_per_sub_core) as u64;
        let dense_hmma = shape.macs().div_ceil(macs_per_instruction);
        // Only the surviving 25 % of weight positions are multiplied.
        p.hmma_instructions = ((dense_hmma as f64) * retained).ceil() as u64;
        // Offset decode + operand select for every surviving 4-element group
        // of the condensed weight vector (the "Indices / Select" path of
        // paper Fig. 3b).
        let retained_macs = (shape.macs() as f64 * retained) as u64;
        p.popc_instructions = retained_macs / 16;
        p.scalar_ops = retained_macs / 4;
        p.thread_blocks = self.tiling.grid_blocks(shape);

        // A (activations) stays dense; B ships 25 % of values plus 2-bit
        // position metadata per surviving element.
        let a_bytes = (shape.m * shape.k) as u64 * 2;
        let b_values = ((shape.k * shape.n) as f64 * retained) as u64 * 2;
        let b_meta = ((shape.k * shape.n) as f64 * retained / 4.0) as u64;
        let d_bytes = (shape.m * shape.n) as u64 * 4;
        let traffic = self.tiling.dram_traffic(&TrafficInputs {
            a_bytes,
            b_bytes: b_values + b_meta,
            d_bytes,
            shape: *shape,
            l2_bytes: self.config.l2_bytes as u64,
            concurrent_blocks: (self.config.num_sms * self.config.max_blocks_per_sm) as u64,
        });
        p.dram_bytes_read = traffic.read_bytes;
        p.dram_bytes_written = traffic.write_bytes;

        let k_iters = shape.k.div_ceil(self.tiling.block_k) as u64;
        let tile_bytes = ((self.tiling.block_m * self.tiling.block_k) * 2) as u64
            + (((self.tiling.block_k * self.tiling.block_n) as f64 * retained) as u64 * 2);
        p.shared_bytes = p.thread_blocks * k_iters * tile_bytes;
        p
    }

    /// Functionally computes `A * B_pruned` where the weight matrix is first
    /// vector-wise pruned to the fixed 75 % ratio (largest-magnitude 8 of
    /// every 32 row elements survive), and returns the result, the pruned
    /// weights and the profile.
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> (Matrix, Matrix, WorkloadProfile) {
        let b_pruned = prune_vector_wise(b, 32, 8);
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let out = a.matmul_f16(&b_pruned);
        (out, b_pruned, self.profile(&shape, VECTOR_WISE_PRUNING_RATIO))
    }
}

/// Vector-wise magnitude pruning: within every group of `group` consecutive
/// elements of a row, only the `keep` largest-magnitude values survive.
///
/// # Panics
/// Panics if `keep > group` or `group == 0`.
pub fn prune_vector_wise(m: &Matrix, group: usize, keep: usize) -> Matrix {
    assert!(group > 0 && keep <= group, "invalid pruning group");
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        for g0 in (0..m.cols()).step_by(group) {
            let glen = group.min(m.cols() - g0);
            let gkeep = (keep * glen).div_ceil(group).min(glen);
            let mut idx: Vec<usize> = (0..glen).collect();
            idx.sort_by(|&i, &j| {
                m[(r, g0 + j)]
                    .abs()
                    .partial_cmp(&m[(r, g0 + i)].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &i in idx.iter().take(gkeep) {
                out[(r, g0 + i)] = m[(r, g0 + i)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_gemm::DenseGemm;
    use dsstc_sim::GpuTimingModel;
    use dsstc_tensor::SparsityPattern;

    #[test]
    fn prune_vector_wise_keeps_largest() {
        let m = Matrix::from_rows(&[&[1.0, -5.0, 2.0, 0.5, 3.0, -0.1, 0.2, 4.0]]);
        let p = prune_vector_wise(&m, 4, 2);
        assert_eq!(p.row(0), &[0.0, -5.0, 2.0, 0.0, 3.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn prune_fixed_ratio_yields_75_percent_sparsity() {
        let m = Matrix::random_sparse(64, 128, 0.0, SparsityPattern::Uniform, 3);
        let p = prune_vector_wise(&m, 32, 8);
        assert!((p.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid pruning group")]
    fn prune_invalid_group_panics() {
        let _ = prune_vector_wise(&Matrix::zeros(2, 2), 2, 3);
    }

    #[test]
    fn baseline_speedup_over_cutlass_is_about_1_9x_and_flat() {
        let model = GpuTimingModel::v100();
        let shape = GemmShape::new(4096, 4096, 4096);
        let dense = model.estimate(&DenseGemm::new(GpuConfig::v100()).profile(&shape));
        let sparse_kernel = VectorSparseGemm::new(GpuConfig::v100());
        let t_low = model.estimate(&sparse_kernel.profile(&shape, 0.75));
        let speedup = t_low.speedup_over(&dense);
        assert!(speedup > 1.5 && speedup < 2.5, "got {speedup}x");
        // Flat: the activation sparsity argument changes nothing.
        let t_same = model.estimate(&sparse_kernel.profile(&shape, 0.99));
        assert!((t_same.time_us() - t_low.time_us()).abs() < 1e-9);
    }

    #[test]
    fn execute_is_consistent_with_pruned_reference() {
        let a = Matrix::random_sparse(32, 64, 0.5, SparsityPattern::Uniform, 5);
        let b = Matrix::random_sparse(64, 32, 0.0, SparsityPattern::Uniform, 6);
        let kernel = VectorSparseGemm::new(GpuConfig::v100());
        let (out, b_pruned, profile) = kernel.execute(&a, &b);
        assert!((b_pruned.sparsity() - 0.75).abs() < 1e-9);
        assert!(out.approx_eq(&a.matmul(&b_pruned), 1e-2));
        assert!(profile.hmma_instructions < (32u64 * 32 * 64) / 128 + 2);
    }

    #[test]
    fn profile_reads_less_weight_traffic_than_dense() {
        let shape = GemmShape::new(2048, 2048, 2048);
        let dense = DenseGemm::new(GpuConfig::v100()).profile(&shape);
        let sparse = VectorSparseGemm::new(GpuConfig::v100()).profile(&shape, 0.75);
        assert!(sparse.dram_bytes_read < dense.dram_bytes_read);
        assert_eq!(sparse.dram_bytes_written, dense.dram_bytes_written);
    }
}
