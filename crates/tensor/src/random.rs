//! Synthetic sparse data generation.
//!
//! The paper evaluates on pruned weights (structured or magnitude pruning)
//! and on activations whose zeros come from ReLU. The generators here
//! reproduce the *distributional* properties that matter to the
//! architecture: overall sparsity ratio, per-column/row balance, block-wise
//! unevenness (which the warp-tiling exploits, Fig. 6), and 2:4 / vector-wise
//! structure for the single-side baselines.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::matrix::Matrix;

/// How the zeros of a synthetic sparse matrix are distributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SparsityPattern {
    /// Every element is zero independently with probability `sparsity`
    /// (models magnitude-pruned weights and generic activations).
    #[default]
    Uniform,
    /// Sparsity varies from block to block: half the 32x32 blocks get
    /// `sparsity + spread`, the other half `sparsity - spread` (clamped).
    /// Models the uneven non-zero distribution of real feature maps that the
    /// warp-level skipping exploits (paper Fig. 6).
    BlockUneven,
    /// Structured 2:4 pruning along rows: in every group of 4 consecutive
    /// elements at most 2 are non-zero (Ampere sparse Tensor Core style).
    /// The requested sparsity is ignored and fixed at 50%.
    TwoOutOfFour,
    /// Vector-wise pruning with a fixed 75% ratio: in every group of 32
    /// consecutive row elements exactly 8 survive (Sparse Tensor Core
    /// \[72\]).
    VectorWise75,
    /// Whole rows are zero with probability `sparsity` (models token-level
    /// activation sparsity in NLP models).
    RowStructured,
}

/// Builder for random (optionally sparse) matrices.
///
/// # Example
/// ```
/// use dsstc_tensor::{RandomMatrixBuilder, SparsityPattern};
/// let m = RandomMatrixBuilder::new(128, 64)
///     .sparsity(0.9)
///     .pattern(SparsityPattern::BlockUneven)
///     .seed(7)
///     .build();
/// assert_eq!(m.rows(), 128);
/// ```
#[derive(Clone, Debug)]
pub struct RandomMatrixBuilder {
    rows: usize,
    cols: usize,
    sparsity: f64,
    pattern: SparsityPattern,
    seed: u64,
    value_range: (f32, f32),
    block_spread: f64,
}

impl RandomMatrixBuilder {
    /// Creates a builder for a `rows x cols` matrix; defaults to a dense
    /// matrix with values in `[-1, 1]` and seed 0.
    pub fn new(rows: usize, cols: usize) -> Self {
        RandomMatrixBuilder {
            rows,
            cols,
            sparsity: 0.0,
            pattern: SparsityPattern::Uniform,
            seed: 0,
            value_range: (-1.0, 1.0),
            block_spread: 0.2,
        }
    }

    /// Target fraction of zeros in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if outside `[0, 1]`.
    pub fn sparsity(mut self, sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
        self.sparsity = sparsity;
        self
    }

    /// Zero-placement pattern.
    pub fn pattern(mut self, pattern: SparsityPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// RNG seed (generation is fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Range non-zero values are drawn from (uniformly).
    pub fn value_range(mut self, low: f32, high: f32) -> Self {
        assert!(low < high, "value range must be non-empty");
        self.value_range = (low, high);
        self
    }

    /// Per-block sparsity spread used by [`SparsityPattern::BlockUneven`].
    pub fn block_spread(mut self, spread: f64) -> Self {
        assert!((0.0..=0.5).contains(&spread), "spread must be in [0, 0.5]");
        self.block_spread = spread;
        self
    }

    /// Generates the matrix.
    pub fn build(&self) -> Matrix {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut m = Matrix::zeros(self.rows, self.cols);
        match self.pattern {
            SparsityPattern::Uniform => self.fill_uniform(&mut m, &mut rng, self.sparsity),
            SparsityPattern::BlockUneven => self.fill_block_uneven(&mut m, &mut rng),
            SparsityPattern::TwoOutOfFour => self.fill_n_of_m(&mut m, &mut rng, 2, 4),
            SparsityPattern::VectorWise75 => self.fill_n_of_m(&mut m, &mut rng, 8, 32),
            SparsityPattern::RowStructured => self.fill_row_structured(&mut m, &mut rng),
        }
        m
    }

    fn draw_value(&self, rng: &mut StdRng) -> f32 {
        let (lo, hi) = self.value_range;
        loop {
            let v: f32 = rng.random_range(lo..hi);
            // Never emit an exact zero for a "non-zero" slot.
            if v != 0.0 {
                return v;
            }
        }
    }

    fn fill_uniform(&self, m: &mut Matrix, rng: &mut StdRng, sparsity: f64) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if rng.random_bool(1.0 - sparsity) {
                    m[(r, c)] = self.draw_value(rng);
                }
            }
        }
    }

    fn fill_block_uneven(&self, m: &mut Matrix, rng: &mut StdRng) {
        const BLOCK: usize = 32;
        let hi = (self.sparsity + self.block_spread).min(1.0);
        let lo = (self.sparsity - self.block_spread).max(0.0);
        for br in (0..self.rows).step_by(BLOCK) {
            for bc in (0..self.cols).step_by(BLOCK) {
                let block_sparsity = if rng.random_bool(0.5) { hi } else { lo };
                for r in br..(br + BLOCK).min(self.rows) {
                    for c in bc..(bc + BLOCK).min(self.cols) {
                        if rng.random_bool(1.0 - block_sparsity) {
                            m[(r, c)] = self.draw_value(rng);
                        }
                    }
                }
            }
        }
    }

    /// Keeps exactly `keep` non-zeros in every group of `group` consecutive
    /// row elements (the trailing partial group keeps proportionally fewer).
    fn fill_n_of_m(&self, m: &mut Matrix, rng: &mut StdRng, keep: usize, group: usize) {
        for r in 0..self.rows {
            for g0 in (0..self.cols).step_by(group) {
                let glen = group.min(self.cols - g0);
                let gkeep = (keep * glen).div_ceil(group).min(glen);
                // Choose `gkeep` distinct positions within the group.
                let mut positions: Vec<usize> = (0..glen).collect();
                for i in 0..gkeep {
                    let j = rng.random_range(i..glen);
                    positions.swap(i, j);
                }
                for &p in &positions[..gkeep] {
                    m[(r, g0 + p)] = self.draw_value(rng);
                }
            }
        }
    }

    fn fill_row_structured(&self, m: &mut Matrix, rng: &mut StdRng) {
        for r in 0..self.rows {
            if rng.random_bool(self.sparsity) {
                continue; // whole row zero
            }
            for c in 0..self.cols {
                m[(r, c)] = self.draw_value(rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_by_default() {
        let m = RandomMatrixBuilder::new(16, 16).seed(1).build();
        assert_eq!(m.nnz(), 256);
    }

    #[test]
    fn uniform_sparsity_close_to_target() {
        for &s in &[0.25, 0.5, 0.9, 0.99] {
            let m = RandomMatrixBuilder::new(128, 128).sparsity(s).seed(3).build();
            assert!((m.sparsity() - s).abs() < 0.05, "target {s}, got {}", m.sparsity());
        }
    }

    #[test]
    fn fully_sparse_and_fully_dense_edges() {
        let z = RandomMatrixBuilder::new(8, 8).sparsity(1.0).seed(0).build();
        assert_eq!(z.nnz(), 0);
        let d = RandomMatrixBuilder::new(8, 8).sparsity(0.0).seed(0).build();
        assert_eq!(d.nnz(), 64);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RandomMatrixBuilder::new(32, 32).sparsity(0.5).seed(9).build();
        let b = RandomMatrixBuilder::new(32, 32).sparsity(0.5).seed(9).build();
        let c = RandomMatrixBuilder::new(32, 32).sparsity(0.5).seed(10).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn two_out_of_four_structure() {
        let m =
            RandomMatrixBuilder::new(16, 64).pattern(SparsityPattern::TwoOutOfFour).seed(5).build();
        // Exactly 2 non-zeros in every aligned group of 4.
        for r in 0..m.rows() {
            for g0 in (0..m.cols()).step_by(4) {
                let nnz = (0..4).filter(|&i| m[(r, g0 + i)] != 0.0).count();
                assert_eq!(nnz, 2, "row {r} group {g0}");
            }
        }
        assert!((m.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vector_wise_75_structure() {
        let m =
            RandomMatrixBuilder::new(8, 128).pattern(SparsityPattern::VectorWise75).seed(5).build();
        for r in 0..m.rows() {
            for g0 in (0..m.cols()).step_by(32) {
                let nnz = (0..32).filter(|&i| m[(r, g0 + i)] != 0.0).count();
                assert_eq!(nnz, 8, "row {r} group {g0}");
            }
        }
        assert!((m.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn n_of_m_handles_ragged_tail_groups() {
        // 10 columns with group 4: tail group has 2 columns.
        let m =
            RandomMatrixBuilder::new(4, 10).pattern(SparsityPattern::TwoOutOfFour).seed(2).build();
        for r in 0..4 {
            let tail_nnz = (8..10).filter(|&c| m[(r, c)] != 0.0).count();
            assert!(tail_nnz <= 2);
        }
    }

    #[test]
    fn row_structured_rows_all_or_nothing() {
        let m = RandomMatrixBuilder::new(64, 32)
            .pattern(SparsityPattern::RowStructured)
            .sparsity(0.5)
            .seed(11)
            .build();
        for r in 0..m.rows() {
            let nnz = m.row(r).iter().filter(|&&x| x != 0.0).count();
            assert!(nnz == 0 || nnz == m.cols(), "row {r} has {nnz} non-zeros");
        }
    }

    #[test]
    fn block_uneven_produces_varied_block_densities() {
        let m = RandomMatrixBuilder::new(128, 128)
            .pattern(SparsityPattern::BlockUneven)
            .sparsity(0.5)
            .block_spread(0.4)
            .seed(13)
            .build();
        let mut densities = Vec::new();
        for br in (0..128).step_by(32) {
            for bc in (0..128).step_by(32) {
                densities.push(m.tile(br, bc, 32, 32).density());
            }
        }
        let min = densities.iter().cloned().fold(f64::MAX, f64::min);
        let max = densities.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.3, "blocks should differ: min {min} max {max}");
        // Overall sparsity still close to target.
        assert!((m.sparsity() - 0.5).abs() < 0.1);
    }

    #[test]
    fn value_range_respected() {
        let m = RandomMatrixBuilder::new(32, 32).value_range(2.0, 3.0).seed(4).build();
        for &v in m.as_slice() {
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn invalid_sparsity_panics() {
        let _ = RandomMatrixBuilder::new(4, 4).sparsity(1.5);
    }
}
