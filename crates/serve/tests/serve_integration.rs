//! Black-box tests of the serving runtime's contract: batching invariants,
//! encode-cache behaviour, and exactly-once delivery under a multi-threaded
//! worker pool.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use dsstc_serve::{InferRequest, InferenceServer, ModelId, ServeConfig};
use dsstc_tensor::{Matrix, SparsityPattern};

fn features(seed: u64) -> Matrix {
    Matrix::random_sparse(2, 32, 0.4, SparsityPattern::Uniform, seed)
}

fn config() -> ServeConfig {
    ServeConfig::default().with_proxy_dim(32).with_max_queue_wait(Duration::from_millis(2))
}

#[test]
fn batches_never_exceed_max_batch() {
    let max_batch = 3;
    let server = InferenceServer::start(config().with_workers(2).with_max_batch(max_batch));
    let pending: Vec<_> = (0..20)
        .map(|i| server.submit(InferRequest::new(ModelId::BertBase, features(i))).expect("queued"))
        .collect();
    for p in pending {
        let response = p.wait().expect("response");
        assert!(response.batch_size <= max_batch, "batch of {}", response.batch_size);
    }
    let stats = server.stats();
    assert!(stats.max_batch_size <= max_batch);
    assert_eq!(stats.completed_requests, 20);
    // 20 requests in batches of <= 3 means at least 7 batches.
    assert!(stats.executed_batches >= 7);
}

#[test]
fn a_lone_request_flushes_on_the_deadline() {
    let wait = Duration::from_millis(20);
    let server = InferenceServer::start(
        config().with_workers(1).with_max_batch(64).with_max_queue_wait(wait),
    );
    // Warm the encode cache so the measured wait is queue time, not encode
    // time.
    server.infer(InferRequest::new(ModelId::RnnLm, features(0))).expect("warm-up");
    let t0 = Instant::now();
    let response = server.infer(InferRequest::new(ModelId::RnnLm, features(1))).expect("response");
    let elapsed = t0.elapsed();
    assert_eq!(response.batch_size, 1);
    assert!(elapsed >= wait, "answered after {elapsed:?}, deadline {wait:?}");
    assert!(elapsed < wait * 50, "answered after {elapsed:?}");
}

#[test]
fn encode_cache_hits_after_the_first_request() {
    let server = InferenceServer::start(config().with_workers(1).with_max_batch(1));
    for i in 0..4 {
        server.infer(InferRequest::new(ModelId::BertBase, features(i))).expect("response");
    }
    let stats = server.stats();
    // Four single-request batches against one model: one encode, three hits.
    assert_eq!(stats.encode_misses, 1);
    assert_eq!(stats.encode_hits, 3);
    assert!((stats.encode_hit_rate - 0.75).abs() < 1e-12);
    // Same model at a different sparsity is a different artifact.
    server
        .infer(InferRequest::new(ModelId::BertBase, features(9)).with_weight_sparsity(0.5))
        .expect("response");
    assert_eq!(server.stats().encode_misses, 2);
}

#[test]
fn every_request_is_answered_exactly_once_across_workers() {
    let server = InferenceServer::start(config().with_workers(3).with_max_batch(4));
    let models = [ModelId::BertBase, ModelId::RnnLm];
    let pending: Vec<_> = (0..60)
        .map(|i| {
            let model = models[i as usize % models.len()];
            server.submit(InferRequest::new(model, features(i))).expect("queued")
        })
        .collect();
    let mut seen = HashSet::new();
    for p in pending {
        let expected_id = p.id();
        let response = p.wait().expect("response");
        assert_eq!(response.id, expected_id);
        assert!(seen.insert(response.id), "duplicate response for {}", response.id);
        assert_eq!(response.output.rows(), 2);
        assert_eq!(response.output.cols(), 32);
    }
    assert_eq!(seen.len(), 60);
    let stats = server.stats();
    assert_eq!(stats.completed_requests, 60);
    assert_eq!(
        stats.batch_histogram.iter().enumerate().map(|(i, n)| (i as u64 + 1) * n).sum::<u64>(),
        60,
        "histogram accounts for every request"
    );
}

#[test]
fn batched_outputs_match_unbatched_outputs() {
    // The same request must produce identical features whether it ran alone
    // or merged into a batch (batching must not change results).
    let solo_server = InferenceServer::start(config().with_workers(1).with_max_batch(1));
    let batch_server = InferenceServer::start(config().with_workers(1).with_max_batch(8));
    let inputs: Vec<Matrix> = (0..6).map(features).collect();

    let solo: Vec<Matrix> = inputs
        .iter()
        .map(|f| {
            solo_server
                .infer(InferRequest::new(ModelId::ResNet50, f.clone()))
                .expect("response")
                .output
        })
        .collect();

    let pending: Vec<_> = inputs
        .iter()
        .map(|f| {
            batch_server.submit(InferRequest::new(ModelId::ResNet50, f.clone())).expect("queued")
        })
        .collect();
    for (p, reference) in pending.into_iter().zip(solo) {
        let response = p.wait().expect("response");
        assert!(response.output.approx_eq(&reference, 1e-4));
    }
}

#[test]
fn mixed_traffic_reports_modelled_latency_per_model() {
    let server = InferenceServer::start(config().with_workers(2).with_max_batch(4));
    let bert =
        server.infer(InferRequest::new(ModelId::BertBase, features(1))).expect("bert response");
    let rnn = server.infer(InferRequest::new(ModelId::RnnLm, features(2))).expect("rnn response");
    assert!(bert.modelled_batch_us > 0.0);
    assert!(rnn.modelled_batch_us > 0.0);
    // The RNN's six 1024x6000x1500 GEMMs dwarf BERT's encoder block.
    assert!(rnn.modelled_batch_us > bert.modelled_batch_us);
}
