//! The wire frame codec: length-prefixed, checksummed request/response
//! frames, in the self-contained little-endian style of
//! [`dsstc_formats::serialize`].
//!
//! # Frame layout
//!
//! Every frame — request or response — shares one envelope:
//!
//! ```text
//! magic   : 4 bytes   b"DSRQ" (request) | b"DSRS" (response)
//!                   | b"DSHI" (hello)   | b"DSMP" (shard map)
//! version : u16 LE    WIRE_VERSION
//! length  : u32 LE    body byte count
//! body    : `length` bytes (direction-specific, little-endian)
//! checksum: u64 LE    FNV-1a over the body
//! ```
//!
//! The request body carries the client-chosen request id, the model key
//! (catalogue tag + sparsity override in permille), the scheduling priority,
//! an optional queue-deadline and the feature matrix; the response body
//! echoes the id and carries either the output features plus the server's
//! per-request measurements, or a status code + message (an **error
//! frame**). A **hello** frame (client → server, optionally carrying an
//! auth token) opens a cluster-aware connection; the server answers with a
//! **shard map** frame carrying the versioned cluster membership (see
//! [`crate::cluster`]). See `docs/WIRE_PROTOCOL.md` for the byte-level
//! specification and a worked hex example.
//!
//! Decoding **never panics**: truncation, a bad magic, an unsupported
//! version, an oversized length prefix, a flipped payload bit or an
//! internally inconsistent body all surface as a [`WireError`]. The
//! [`FrameDecoder`] consumes a raw byte stream incrementally, yielding one
//! frame at a time — several pipelined frames per read, or one frame
//! arriving a byte at a time, both decode identically.

use dsstc_formats::serialize::fnv1a;
use dsstc_tensor::Matrix;

use crate::cluster::{NodeEntry, ShardMap};
use crate::request::{InferRequest, InferResponse, ModelId, Priority};

/// Magic of a request frame (client → server).
pub const REQUEST_MAGIC: [u8; 4] = *b"DSRQ";

/// Magic of a response frame (server → client).
pub const RESPONSE_MAGIC: [u8; 4] = *b"DSRS";

/// Magic of a hello frame (client → server; opens a cluster-aware
/// connection, optionally carrying an auth token).
pub const HELLO_MAGIC: [u8; 4] = *b"DSHI";

/// Magic of a shard-map frame (server → client; answers a hello with the
/// versioned cluster membership).
pub const SHARD_MAP_MAGIC: [u8; 4] = *b"DSMP";

/// Current wire-protocol version. Bump on any layout change; peers reject
/// every other version with [`WireError::UnsupportedVersion`] (the server
/// answers with a [`WireStatus::UnsupportedVersion`] error frame first, so
/// old clients get a diagnosis instead of a dead socket). Version 2 added
/// the hello / shard-map frame kinds and the `NotMine` / `Unauthorized`
/// statuses.
pub const WIRE_VERSION: u16 = 2;

/// Envelope bytes around the body: magic + version + length prefix.
pub const HEADER_LEN: usize = 4 + 2 + 4;

/// Trailing checksum bytes after the body.
pub const CHECKSUM_LEN: usize = 8;

/// The `sparsity_permille` body value meaning "no override" (requests
/// against the published per-layer table).
const SPARSITY_NONE: u16 = u16::MAX;

/// How many bytes larger than its request an `Ok` response frame can be:
/// the response's fixed fields (id, status, tags, four f64 measurements,
/// output shape) outgrow the request's fixed fields by 31 bytes while the
/// matrix payloads match (output cols = input cols = the proxy dimension).
/// Receivers of *responses* add this headroom to the request-side
/// `max_frame_len` bound so a legal maximal request cannot elicit a
/// response its own sender must reject.
pub const RESPONSE_HEADROOM: usize = 64;

/// The reserved response id of a connection-poisoning error frame (a
/// framing failure that cannot be attributed to any request). Clients
/// must not use it as a request id; the sequential ids
/// [`crate::net::WireClient`] assigns never reach it.
pub const POISON_ID: u64 = u64::MAX;

/// Why a wire frame could not be decoded (or was rejected).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The stream ended before the declared frame did.
    Truncated,
    /// The stream does not start with the expected magic.
    BadMagic([u8; 4]),
    /// The frame was written by an unknown protocol version.
    UnsupportedVersion(u16),
    /// The length prefix exceeds the configured frame-size bound.
    Oversized {
        /// Body bytes the length prefix declared.
        declared: usize,
        /// The receiver's configured bound.
        limit: usize,
    },
    /// The body does not match its checksum (bit rot / partial write).
    ChecksumMismatch,
    /// The body is internally inconsistent.
    Malformed(&'static str),
    /// The server answered with an error frame.
    Rejected {
        /// The machine-readable status code.
        status: WireStatus,
        /// The human-readable message the server attached.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => f.write_str("stream truncated before the declared frame end"),
            WireError::BadMagic(found) => write!(f, "bad frame magic {found:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v}, this peer speaks {WIRE_VERSION}")
            }
            WireError::Oversized { declared, limit } => {
                write!(f, "frame declares {declared} body bytes, limit is {limit}")
            }
            WireError::ChecksumMismatch => f.write_str("frame body checksum mismatch"),
            WireError::Malformed(why) => write!(f, "malformed frame body: {why}"),
            WireError::Rejected { status, message } => {
                write!(f, "server rejected the request ({status:?}): {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Status byte of a response frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireStatus {
    /// The request was served; the body carries the output features.
    Ok,
    /// The request was malformed (unknown model tag, wrong feature width,
    /// out-of-range sparsity...).
    InvalidRequest,
    /// The server is draining and no longer accepts requests.
    ShuttingDown,
    /// The client spoke a protocol version this server does not.
    UnsupportedVersion,
    /// Admission control rejected the request: the projected queue delay
    /// exhausts its priority class's SLO headroom (or the queue bound is
    /// breached). The connection stays open; retry later or escalate the
    /// request's priority.
    ShedLoad,
    /// This node does not own the request's shard: a **redirect**. The
    /// message names the owning replica group as
    /// `owners=<addr>[,<addr>...];version=<map version>`; the connection
    /// stays open. Cluster-aware clients re-route to an owner (and refresh
    /// their shard map when the version advanced).
    NotMine,
    /// The hello's auth token was missing or wrong; the server closes the
    /// connection after this frame.
    Unauthorized,
}

impl WireStatus {
    /// The status tag as its wire byte.
    pub fn code(&self) -> u8 {
        match self {
            WireStatus::Ok => 0,
            WireStatus::InvalidRequest => 1,
            WireStatus::ShuttingDown => 2,
            WireStatus::UnsupportedVersion => 3,
            WireStatus::ShedLoad => 4,
            WireStatus::NotMine => 5,
            WireStatus::Unauthorized => 6,
        }
    }

    /// Decodes a status byte.
    pub fn from_code(code: u8) -> Option<WireStatus> {
        match code {
            0 => Some(WireStatus::Ok),
            1 => Some(WireStatus::InvalidRequest),
            2 => Some(WireStatus::ShuttingDown),
            3 => Some(WireStatus::UnsupportedVersion),
            4 => Some(WireStatus::ShedLoad),
            5 => Some(WireStatus::NotMine),
            6 => Some(WireStatus::Unauthorized),
            _ => None,
        }
    }
}

/// One decoded request frame: everything a client tells the server about
/// one inference, plus the client-chosen id the response will echo.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response frame
    /// (pipelined responses may complete out of submission order).
    pub id: u64,
    /// Which catalogue model to run (see [`ModelId::wire_code`]).
    pub model: ModelId,
    /// Uniform weight-sparsity override in permille, if any.
    pub sparsity_permille: Option<u16>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional queue-wait SLO in microseconds (`None` = server default).
    pub deadline_us: Option<u32>,
    /// Input features: one row per sample, `proxy_dim` columns.
    pub features: Matrix,
}

impl RequestFrame {
    /// Builds a frame from the in-process request type.
    pub fn from_request(id: u64, request: &InferRequest) -> Self {
        RequestFrame {
            id,
            model: request.model,
            sparsity_permille: crate::ModelKey::new(request.model, request.weight_sparsity)
                .sparsity_permille,
            priority: request.priority,
            // Clamped to >= 1: the wire encodes "no deadline" as 0, and a
            // sub-microsecond SLO must stay an (expired) SLO on the far
            // side, not silently become the server default.
            deadline_us: request
                .deadline
                .map(|d| d.as_micros().clamp(1, u128::from(u32::MAX)) as u32),
            features: request.features.clone(),
        }
    }

    /// Converts the frame into the in-process request type.
    pub fn into_request(self) -> InferRequest {
        let mut request = InferRequest::new(self.model, self.features).with_priority(self.priority);
        if let Some(permille) = self.sparsity_permille {
            request = request.with_weight_sparsity(f64::from(permille) / 1000.0);
        }
        if let Some(us) = self.deadline_us {
            request = request.with_deadline(std::time::Duration::from_micros(u64::from(us)));
        }
        request
    }

    /// Encodes the frame, envelope and checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_LEN + 32 + self.features.as_slice().len() * 4 + CHECKSUM_LEN);
        seal_into(&mut out, REQUEST_MAGIC, |body| {
            put_u64(body, self.id);
            body.push(self.model.wire_code());
            put_u16(body, self.sparsity_permille.unwrap_or(SPARSITY_NONE));
            body.push(self.priority.wire_code());
            put_u32(body, self.deadline_us.unwrap_or(0));
            put_matrix(body, &self.features);
        });
        out
    }

    /// Decodes one request body (the envelope already stripped and the
    /// checksum already verified by [`FrameDecoder`] / [`decode_frame`]).
    fn from_body(body: &[u8]) -> Result<Self, WireError> {
        let mut cursor = Cursor::new(body);
        let id = cursor.u64()?;
        let model = ModelId::from_wire_code(cursor.u8()?)
            .ok_or(WireError::Malformed("unknown model tag"))?;
        let sparsity = match cursor.u16()? {
            SPARSITY_NONE => None,
            p if p <= 1000 => Some(p),
            _ => return Err(WireError::Malformed("sparsity override above 1000 permille")),
        };
        let priority = Priority::from_wire_code(cursor.u8()?)
            .ok_or(WireError::Malformed("unknown priority tag"))?;
        let deadline_us = match cursor.u32()? {
            0 => None,
            us => Some(us),
        };
        let features = cursor.matrix()?;
        cursor.finish()?;
        Ok(RequestFrame { id, model, sparsity_permille: sparsity, priority, deadline_us, features })
    }
}

/// One decoded response frame: either the served output plus the server's
/// per-request measurements, or an error status with a message.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseFrame {
    /// The client-chosen id of the request this answers.
    pub id: u64,
    /// `Ok`, or why the request was rejected.
    pub status: WireStatus,
    /// The served payload (`None` on error frames).
    pub body: Option<ResponseBody>,
    /// Human-readable diagnosis (empty on `Ok` frames).
    pub message: String,
}

/// The measurements and output features of one served request.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseBody {
    /// Which model ran.
    pub model: ModelId,
    /// The priority the request was scheduled at.
    pub priority: Priority,
    /// Index of the pooled device that executed the batch.
    pub device: u16,
    /// How many requests were merged into the executing batch.
    pub batch_size: u16,
    /// Wall-clock queue wait, µs.
    pub queue_us: f64,
    /// Wall-clock batch execution time, µs.
    pub execute_us: f64,
    /// Modelled device time of the whole batch, µs.
    pub modelled_batch_us: f64,
    /// Amortised modelled latency of this request, µs.
    pub modelled_request_us: f64,
    /// Output features.
    pub output: Matrix,
}

impl ResponseFrame {
    /// Builds an `Ok` frame from the in-process response type.
    pub fn from_response(id: u64, response: &InferResponse) -> Self {
        ResponseFrame {
            id,
            status: WireStatus::Ok,
            body: Some(ResponseBody {
                model: response.model,
                priority: response.priority,
                device: response.device.min(usize::from(u16::MAX)) as u16,
                batch_size: response.batch_size.min(usize::from(u16::MAX)) as u16,
                queue_us: response.queue_us,
                execute_us: response.execute_us,
                modelled_batch_us: response.modelled_batch_us,
                modelled_request_us: response.modelled_request_us,
                output: response.output.clone(),
            }),
            message: String::new(),
        }
    }

    /// Unwraps the served payload: `Ok` frames yield their body, error
    /// frames become [`WireError::Rejected`].
    pub fn into_body(self) -> Result<ResponseBody, WireError> {
        if self.status != WireStatus::Ok {
            return Err(WireError::Rejected { status: self.status, message: self.message });
        }
        self.body.ok_or(WireError::Malformed("Ok response without a body"))
    }

    /// Builds an error frame.
    pub fn error(id: u64, status: WireStatus, message: impl Into<String>) -> Self {
        debug_assert!(status != WireStatus::Ok, "error frames carry a non-Ok status");
        ResponseFrame { id, status, body: None, message: message.into() }
    }

    /// Encodes the frame, envelope and checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.body {
            Some(ok) => seal_into(&mut out, RESPONSE_MAGIC, |body| {
                put_u64(body, self.id);
                body.push(self.status.code());
                body.push(ok.model.wire_code());
                body.push(ok.priority.wire_code());
                put_u16(body, ok.device);
                put_u16(body, ok.batch_size);
                put_f64(body, ok.queue_us);
                put_f64(body, ok.execute_us);
                put_f64(body, ok.modelled_batch_us);
                put_f64(body, ok.modelled_request_us);
                put_matrix(body, &ok.output);
            }),
            None => seal_into(&mut out, RESPONSE_MAGIC, |body| {
                put_u64(body, self.id);
                body.push(self.status.code());
                let message = self.message.as_bytes();
                put_u32(body, message.len().min(u32::MAX as usize) as u32);
                body.extend_from_slice(message);
            }),
        }
        out
    }

    /// Decodes one response body (envelope stripped, checksum verified).
    fn from_body(body: &[u8]) -> Result<Self, WireError> {
        let mut cursor = Cursor::new(body);
        let id = cursor.u64()?;
        let status = WireStatus::from_code(cursor.u8()?)
            .ok_or(WireError::Malformed("unknown status tag"))?;
        if status != WireStatus::Ok {
            let len = cursor.u32()? as usize;
            // Validate in place and copy once; `from_utf8(..to_vec())` would
            // allocate before knowing the bytes are even text.
            let message = std::str::from_utf8(cursor.take(len)?)
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?
                .to_owned();
            cursor.finish()?;
            return Ok(ResponseFrame { id, status, body: None, message });
        }
        let model = ModelId::from_wire_code(cursor.u8()?)
            .ok_or(WireError::Malformed("unknown model tag"))?;
        let priority = Priority::from_wire_code(cursor.u8()?)
            .ok_or(WireError::Malformed("unknown priority tag"))?;
        let device = cursor.u16()?;
        let batch_size = cursor.u16()?;
        let queue_us = cursor.f64()?;
        let execute_us = cursor.f64()?;
        let modelled_batch_us = cursor.f64()?;
        let modelled_request_us = cursor.f64()?;
        let output = cursor.matrix()?;
        cursor.finish()?;
        Ok(ResponseFrame {
            id,
            status,
            body: Some(ResponseBody {
                model,
                priority,
                device,
                batch_size,
                queue_us,
                execute_us,
                modelled_batch_us,
                modelled_request_us,
                output,
            }),
            message: String::new(),
        })
    }
}

/// One decoded hello frame: a client opening a cluster-aware connection,
/// optionally presenting a shared-secret auth token. The server answers
/// with a [`ShardMapFrame`] (or an `Unauthorized` error frame and a
/// close).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloFrame {
    /// The auth token, if the client presents one. `Some("")` is a
    /// present-but-empty token, distinct on the wire from `None`.
    pub token: Option<String>,
}

/// Hello-body flag bit: a token length + token follows.
const HELLO_HAS_TOKEN: u8 = 0b0000_0001;

impl HelloFrame {
    /// Encodes the frame, envelope and checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_hello_into(&mut out, self.token.as_deref());
        out
    }

    /// Decodes one hello body (envelope stripped, checksum verified).
    fn from_body(body: &[u8]) -> Result<Self, WireError> {
        let mut cursor = Cursor::new(body);
        let flags = cursor.u8()?;
        if flags & !HELLO_HAS_TOKEN != 0 {
            return Err(WireError::Malformed("unknown hello flags"));
        }
        let token = if flags & HELLO_HAS_TOKEN != 0 {
            let len = cursor.u32()? as usize;
            let token = std::str::from_utf8(cursor.take(len)?)
                .map_err(|_| WireError::Malformed("auth token is not UTF-8"))?
                .to_owned();
            Some(token)
        } else {
            None
        };
        cursor.finish()?;
        Ok(HelloFrame { token })
    }
}

/// One decoded shard-map frame: the versioned cluster membership a server
/// hands a client at hello time (see [`crate::cluster::ShardMap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMapFrame {
    /// The carried map.
    pub map: ShardMap,
}

impl ShardMapFrame {
    /// Encodes the frame, envelope and checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_shard_map_into(&mut out, &self.map);
        out
    }

    /// Decodes one shard-map body (envelope stripped, checksum verified).
    fn from_body(body: &[u8]) -> Result<Self, WireError> {
        let mut cursor = Cursor::new(body);
        let version = cursor.u64()?;
        let seed = cursor.u64()?;
        let vnodes = cursor.u16()?;
        let replication = cursor.u16()?;
        if vnodes == 0 || replication == 0 {
            return Err(WireError::Malformed("shard map with zero vnodes or replication"));
        }
        let count = cursor.u16()? as usize;
        if count == 0 {
            return Err(WireError::Malformed("shard map without members"));
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.u16()?;
            let alive = match cursor.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("node liveness is not 0 or 1")),
            };
            let len = cursor.u16()? as usize;
            let addr = std::str::from_utf8(cursor.take(len)?)
                .map_err(|_| WireError::Malformed("node address is not UTF-8"))?
                .to_owned();
            nodes.push(NodeEntry { id, addr, alive });
        }
        cursor.finish()?;
        Ok(ShardMapFrame { map: ShardMap { version, seed, vnodes, replication, nodes } })
    }
}

/// Serialises a hello frame directly into `out` — byte-identical to
/// `HelloFrame { token }.to_bytes()`.
pub fn encode_hello_into(out: &mut Vec<u8>, token: Option<&str>) {
    seal_into(out, HELLO_MAGIC, |body| match token {
        Some(token) => {
            body.push(HELLO_HAS_TOKEN);
            let token = token.as_bytes();
            put_u32(body, token.len().min(u32::MAX as usize) as u32);
            body.extend_from_slice(token);
        }
        None => body.push(0),
    });
}

/// Serialises a shard-map frame directly into `out` — byte-identical to
/// `ShardMapFrame { map }.to_bytes()`.
pub fn encode_shard_map_into(out: &mut Vec<u8>, map: &ShardMap) {
    seal_into(out, SHARD_MAP_MAGIC, |body| {
        put_u64(body, map.version);
        put_u64(body, map.seed);
        put_u16(body, map.vnodes);
        put_u16(body, map.replication);
        put_u16(body, map.nodes.len().min(usize::from(u16::MAX)) as u16);
        for node in map.nodes.iter().take(usize::from(u16::MAX)) {
            put_u16(body, node.id);
            body.push(u8::from(node.alive));
            let addr = node.addr.as_bytes();
            put_u16(body, addr.len().min(usize::from(u16::MAX)) as u16);
            body.extend_from_slice(&addr[..addr.len().min(usize::from(u16::MAX))]);
        }
    });
}

/// Either decoded frame direction (what [`FrameDecoder`] yields).
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A client → server frame.
    Request(RequestFrame),
    /// A server → client frame.
    Response(ResponseFrame),
    /// A client → server connection-opening handshake.
    Hello(HelloFrame),
    /// A server → client cluster-membership answer.
    ShardMap(ShardMapFrame),
}

/// Appends one sealed frame to `out`: writes the envelope, lets `fill`
/// append the body **in place**, then back-patches the length prefix and
/// checksums the written body slice. Byte-identical to building the body in
/// its own `Vec` and copying it into a fresh envelope, without either
/// allocation — the hot-path encoders below serialise straight into a
/// connection's outbound buffer through this.
fn seal_into(out: &mut Vec<u8>, magic: [u8; 4], fill: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&magic);
    put_u16(out, WIRE_VERSION);
    let length_at = out.len();
    put_u32(out, 0); // back-patched once the body length is known
    let body_start = out.len();
    fill(out);
    let body_len: u32 =
        (out.len() - body_start).try_into().expect("frame bodies are bounded well below 4 GiB");
    out[length_at..length_at + 4].copy_from_slice(&body_len.to_le_bytes());
    let checksum = fnv1a(&out[body_start..]);
    put_u64(out, checksum);
}

/// Serialises the request frame for `request` under the client-chosen `id`
/// directly into `out` — byte-identical to
/// `RequestFrame::from_request(id, request).to_bytes()` without cloning the
/// feature matrix or allocating an intermediate body.
pub fn encode_request_into(out: &mut Vec<u8>, id: u64, request: &InferRequest) {
    let sparsity = crate::ModelKey::new(request.model, request.weight_sparsity)
        .sparsity_permille
        .unwrap_or(SPARSITY_NONE);
    // Clamped to >= 1, mirroring `RequestFrame::from_request`: 0 is the "no
    // deadline" sentinel on the wire.
    let deadline_us =
        request.deadline.map_or(0, |d| d.as_micros().clamp(1, u128::from(u32::MAX)) as u32);
    out.reserve(HEADER_LEN + 24 + request.features.as_slice().len() * 4 + CHECKSUM_LEN);
    seal_into(out, REQUEST_MAGIC, |body| {
        put_u64(body, id);
        body.push(request.model.wire_code());
        put_u16(body, sparsity);
        body.push(request.priority.wire_code());
        put_u32(body, deadline_us);
        put_matrix(body, &request.features);
    });
}

/// Serialises the `Ok` response frame answering `id` directly into `out` —
/// byte-identical to `ResponseFrame::from_response(id, response).to_bytes()`
/// without cloning the output matrix or allocating an intermediate body.
pub fn encode_response_into(out: &mut Vec<u8>, id: u64, response: &InferResponse) {
    out.reserve(HEADER_LEN + 55 + response.output.as_slice().len() * 4 + CHECKSUM_LEN);
    seal_into(out, RESPONSE_MAGIC, |body| {
        put_u64(body, id);
        body.push(WireStatus::Ok.code());
        body.push(response.model.wire_code());
        body.push(response.priority.wire_code());
        put_u16(body, response.device.min(usize::from(u16::MAX)) as u16);
        put_u16(body, response.batch_size.min(usize::from(u16::MAX)) as u16);
        put_f64(body, response.queue_us);
        put_f64(body, response.execute_us);
        put_f64(body, response.modelled_batch_us);
        put_f64(body, response.modelled_request_us);
        put_matrix(body, &response.output);
    });
}

/// Serialises an error frame directly into `out` — byte-identical to
/// `ResponseFrame::error(id, status, message).to_bytes()`.
pub fn encode_error_into(out: &mut Vec<u8>, id: u64, status: WireStatus, message: &str) {
    debug_assert!(status != WireStatus::Ok, "error frames carry a non-Ok status");
    seal_into(out, RESPONSE_MAGIC, |body| {
        put_u64(body, id);
        body.push(status.code());
        let message = message.as_bytes();
        put_u32(body, message.len().min(u32::MAX as usize) as u32);
        body.extend_from_slice(message);
    });
}

/// Decodes exactly one frame from the front of `bytes`.
///
/// Returns `Ok(None)` when `bytes` is a (possibly empty) prefix of a valid
/// frame — the caller should read more. Returns the frame and its total
/// encoded length on success. `max_body_len` bounds the length prefix
/// *before* any allocation, so a hostile 4 GiB prefix is rejected from the
/// first ten bytes.
pub fn decode_frame(
    bytes: &[u8],
    max_body_len: usize,
) -> Result<Option<(Frame, usize)>, WireError> {
    const MAGICS: [[u8; 4]; 4] = [REQUEST_MAGIC, RESPONSE_MAGIC, HELLO_MAGIC, SHARD_MAP_MAGIC];
    if bytes.len() < HEADER_LEN {
        // An early bad magic is still reportable before the full header.
        let probe = bytes.len().min(4);
        if probe > 0 && MAGICS.iter().all(|magic| bytes[..probe] != magic[..probe]) {
            let mut found = [0u8; 4];
            found[..probe].copy_from_slice(&bytes[..probe]);
            return Err(WireError::BadMagic(found));
        }
        return Ok(None);
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if !MAGICS.contains(&magic) {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let body_len = u32::from_le_bytes(bytes[6..10].try_into().expect("4-byte slice")) as usize;
    if body_len > max_body_len {
        return Err(WireError::Oversized { declared: body_len, limit: max_body_len });
    }
    let total = HEADER_LEN + body_len + CHECKSUM_LEN;
    if bytes.len() < total {
        return Ok(None);
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    let declared =
        u64::from_le_bytes(bytes[HEADER_LEN + body_len..total].try_into().expect("8-byte slice"));
    if fnv1a(body) != declared {
        return Err(WireError::ChecksumMismatch);
    }
    let frame = match magic {
        REQUEST_MAGIC => Frame::Request(RequestFrame::from_body(body)?),
        RESPONSE_MAGIC => Frame::Response(ResponseFrame::from_body(body)?),
        HELLO_MAGIC => Frame::Hello(HelloFrame::from_body(body)?),
        _ => Frame::ShardMap(ShardMapFrame::from_body(body)?),
    };
    Ok(Some((frame, total)))
}

/// Incremental frame decoder over a raw byte stream.
///
/// Feed it whatever the socket produced — half a header, three pipelined
/// frames, anything in between — and pull complete frames out. A returned
/// error is sticky for the connection: framing has lost sync and the stream
/// cannot be trusted past it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buffer: Vec<u8>,
    /// Consumed prefix of `buffer`: frames decode at this offset, so
    /// pulling a frame is O(frame), not an O(buffer) `drain` memmove of
    /// everything still pending behind it. The prefix is reclaimed lazily —
    /// see `compact`.
    read_at: usize,
    max_body_len: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_body_len` on every frame's length prefix.
    pub fn new(max_body_len: usize) -> Self {
        FrameDecoder { buffer: Vec::new(), read_at: 0, max_body_len }
    }

    /// Appends freshly read bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match decode_frame(&self.buffer[self.read_at..], self.max_body_len)? {
            Some((frame, consumed)) => {
                self.read_at += consumed;
                self.compact();
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len() - self.read_at
    }

    /// Reclaims the consumed prefix — but only when it dominates the
    /// buffer, so a burst of pipelined frames pays one amortised memmove
    /// instead of one per frame. A fully drained buffer resets for free.
    fn compact(&mut self) {
        if self.read_at == self.buffer.len() {
            self.buffer.clear();
            self.read_at = 0;
        } else if self.read_at > self.buffer.len() / 2 {
            self.buffer.copy_within(self.read_at.., 0);
            self.buffer.truncate(self.buffer.len() - self.read_at);
            self.read_at = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian body primitives.
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u32(out, m.rows().try_into().expect("row count fits u32"));
    put_u32(out, m.cols().try_into().expect("column count fits u32"));
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over one frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn matrix(&mut self) -> Result<Matrix, WireError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        if rows == 0 || cols == 0 {
            return Err(WireError::Malformed("feature matrices are non-empty"));
        }
        let elements =
            rows.checked_mul(cols).ok_or(WireError::Malformed("matrix shape overflows"))?;
        // The body length already bounds the allocation; re-check so a lying
        // shape cannot request more than the body holds.
        let byte_len =
            elements.checked_mul(4).ok_or(WireError::Malformed("matrix shape overflows"))?;
        if byte_len > self.bytes.len().saturating_sub(self.pos) {
            return Err(WireError::Truncated);
        }
        // One bounds check for the whole payload, then a straight-line
        // chunked conversion the compiler can vectorise — the per-element
        // `take(4)` loop re-checked bounds on every element.
        let data = self
            .take(byte_len)?
            .chunks_exact(4)
            .map(|chunk| f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Rejects trailing garbage after the last field.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the last body field"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;
    use proptest::prelude::*;

    fn frame(seed: u64) -> RequestFrame {
        RequestFrame {
            id: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            model: ModelId::ALL[(seed % 6) as usize],
            sparsity_permille: if seed.is_multiple_of(3) {
                Some((seed % 1001) as u16)
            } else {
                None
            },
            priority: Priority::ALL[(seed % 3) as usize],
            deadline_us: if seed.is_multiple_of(2) {
                Some(1 + (seed % 10_000) as u32)
            } else {
                None
            },
            features: Matrix::random_sparse(
                1 + (seed % 5) as usize,
                1 + (seed % 67) as usize,
                0.4,
                SparsityPattern::Uniform,
                seed,
            ),
        }
    }

    fn decode_one(bytes: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        decode_frame(bytes, 1 << 24)
    }

    #[test]
    fn request_roundtrips_bit_for_bit() {
        for seed in 0..24 {
            let sent = frame(seed);
            let bytes = sent.to_bytes();
            let (decoded, consumed) = decode_one(&bytes).expect("decodes").expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, Frame::Request(sent));
        }
    }

    #[test]
    fn response_roundtrips_bit_for_bit() {
        let sent = ResponseFrame {
            id: 42,
            status: WireStatus::Ok,
            body: Some(ResponseBody {
                model: ModelId::BertBase,
                priority: Priority::High,
                device: 3,
                batch_size: 7,
                queue_us: 12.5,
                execute_us: 99.25,
                modelled_batch_us: 1234.5,
                modelled_request_us: 176.357,
                output: Matrix::random_sparse(4, 64, 0.3, SparsityPattern::Uniform, 9),
            }),
            message: String::new(),
        };
        let bytes = sent.to_bytes();
        let (decoded, _) = decode_one(&bytes).expect("decodes").expect("complete");
        assert_eq!(decoded, Frame::Response(sent));
    }

    #[test]
    fn error_frame_roundtrips_with_message() {
        let sent = ResponseFrame::error(7, WireStatus::InvalidRequest, "features have 9 columns");
        let bytes = sent.to_bytes();
        let (decoded, _) = decode_one(&bytes).expect("decodes").expect("complete");
        assert_eq!(decoded, Frame::Response(sent));
    }

    #[test]
    fn request_converts_to_infer_request_and_back() {
        let sent = frame(3);
        let request = sent.clone().into_request();
        assert_eq!(request.model, sent.model);
        assert_eq!(request.priority, sent.priority);
        assert_eq!(
            crate::ModelKey::new(request.model, request.weight_sparsity).sparsity_permille,
            sent.sparsity_permille
        );
        let back = RequestFrame::from_request(sent.id, &request);
        assert_eq!(back, sent);
    }

    #[test]
    fn sub_microsecond_deadline_stays_a_deadline_over_the_wire() {
        use std::time::Duration;
        let request = InferRequest::new(ModelId::RnnLm, Matrix::zeros(1, 8))
            .with_deadline(Duration::from_nanos(500));
        let frame = RequestFrame::from_request(0, &request);
        // Encoded as the minimum expressible SLO, never the 0 = "server
        // default" sentinel.
        assert_eq!(frame.deadline_us, Some(1));
        let bytes = frame.to_bytes();
        let (decoded, _) = decode_one(&bytes).expect("decodes").expect("complete");
        let Frame::Request(decoded) = decoded else { panic!("request frame") };
        assert_eq!(decoded.into_request().deadline, Some(Duration::from_micros(1)));
    }

    #[test]
    fn truncation_at_any_length_never_panics() {
        let bytes = frame(11).to_bytes();
        for len in 0..bytes.len() {
            match decode_one(&bytes[..len]) {
                Ok(None) => {}
                other => panic!("prefix of {len} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected_early() {
        assert!(matches!(decode_one(b"HTTP"), Err(WireError::BadMagic(_))));
        assert!(matches!(decode_one(b"GE"), Err(WireError::BadMagic(_))));
        // A correct prefix of any magic is "need more bytes", not an error.
        assert!(matches!(decode_one(b"DS"), Ok(None)));
        assert!(matches!(decode_one(b"DSR"), Ok(None)));
        assert!(matches!(decode_one(b"DSH"), Ok(None)));
        assert!(matches!(decode_one(b"DSM"), Ok(None)));
        // ...while a wrong fourth byte is rejected from four bytes.
        assert!(matches!(decode_one(b"DSRX"), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_and_size_bounds_are_enforced() {
        let mut bytes = frame(5).to_bytes();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(decode_one(&bytes), Err(WireError::UnsupportedVersion(_))));

        let bytes = frame(5).to_bytes();
        assert!(matches!(decode_frame(&bytes, 4), Err(WireError::Oversized { limit: 4, .. })));
    }

    #[test]
    fn flipped_body_byte_fails_the_checksum() {
        let mut bytes = frame(9).to_bytes();
        let body_byte = HEADER_LEN + 3;
        bytes[body_byte] ^= 0x40;
        assert!(matches!(decode_one(&bytes), Err(WireError::ChecksumMismatch)));
    }

    #[test]
    fn decoder_handles_pipelined_and_fragmented_frames() {
        let frames: Vec<RequestFrame> = (0..5).map(frame).collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_bytes());
        }
        // Feed in awkward 7-byte fragments.
        let mut decoder = FrameDecoder::new(1 << 24);
        let mut decoded = Vec::new();
        for chunk in stream.chunks(7) {
            decoder.feed(chunk);
            while let Some(f) = decoder.next_frame().expect("stream stays in sync") {
                decoded.push(f);
            }
        }
        assert_eq!(decoded.len(), frames.len());
        for (d, sent) in decoded.into_iter().zip(frames) {
            assert_eq!(d, Frame::Request(sent));
        }
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn decoder_read_offset_survives_single_burst_and_trailing_fragment() {
        // One big feed of many pipelined frames plus a partial trailer: the
        // read-offset cursor must hand back every frame without losing sync,
        // and the pending count must track the undecoded remainder exactly.
        let frames: Vec<RequestFrame> = (10..30).map(frame).collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_bytes());
        }
        let tail = frame(99).to_bytes();
        stream.extend_from_slice(&tail[..tail.len() - 3]);

        let mut decoder = FrameDecoder::new(1 << 24);
        decoder.feed(&stream);
        let mut decoded = Vec::new();
        while let Some(f) = decoder.next_frame().expect("in sync") {
            decoded.push(f);
        }
        assert_eq!(decoded.len(), frames.len());
        for (d, sent) in decoded.into_iter().zip(frames) {
            assert_eq!(d, Frame::Request(sent));
        }
        assert_eq!(decoder.pending_bytes(), tail.len() - 3);
        // The missing trailer completes the final frame.
        decoder.feed(&tail[tail.len() - 3..]);
        let last = decoder.next_frame().expect("in sync").expect("complete");
        assert_eq!(last, Frame::Request(frame(99)));
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn encode_request_into_matches_the_frame_builder_byte_for_byte() {
        for seed in 0..24 {
            let request = frame(seed).into_request();
            let id = seed * 31 + 7;
            let built = RequestFrame::from_request(id, &request).to_bytes();
            let mut direct = vec![0xAA; 5]; // must append, not clobber
            encode_request_into(&mut direct, id, &request);
            assert_eq!(&direct[..5], &[0xAA; 5]);
            assert_eq!(&direct[5..], &built[..], "seed {seed}");
        }
    }

    #[test]
    fn encode_response_into_matches_the_frame_builder_byte_for_byte() {
        let response = InferResponse {
            id: 4242,
            model: ModelId::BertBase,
            output: Matrix::random_sparse(3, 48, 0.3, SparsityPattern::Uniform, 21),
            queue_us: 17.25,
            execute_us: 310.5,
            modelled_batch_us: 88.875,
            modelled_request_us: 29.625,
            batch_size: 3,
            device: 1,
            encoding: dsstc_kernels::EncodingSpec::for_gpu(&dsstc_sim::GpuConfig::v100()),
            priority: Priority::High,
            trace: crate::telemetry::RequestTrace::new(),
        };
        let client_id = 9;
        let built = ResponseFrame::from_response(client_id, &response).to_bytes();
        let mut direct = Vec::new();
        encode_response_into(&mut direct, client_id, &response);
        assert_eq!(direct, built);
    }

    #[test]
    fn encode_error_into_matches_the_frame_builder_byte_for_byte() {
        for (status, message) in [
            (WireStatus::InvalidRequest, "features have 9 columns"),
            (WireStatus::ShuttingDown, ""),
            (WireStatus::UnsupportedVersion, "unsupported wire version 1, this peer speaks 2"),
            (WireStatus::ShedLoad, "load shed: projected queue delay 125000 us"),
            (WireStatus::NotMine, "owners=127.0.0.1:7401;version=3"),
            (WireStatus::Unauthorized, "hello token rejected"),
        ] {
            let built = ResponseFrame::error(17, status, message).to_bytes();
            let mut direct = Vec::new();
            encode_error_into(&mut direct, 17, status, message);
            assert_eq!(direct, built);
        }
    }

    #[test]
    fn every_wire_status_round_trips_and_unknown_codes_fail() {
        for status in [
            WireStatus::Ok,
            WireStatus::InvalidRequest,
            WireStatus::ShuttingDown,
            WireStatus::UnsupportedVersion,
            WireStatus::ShedLoad,
            WireStatus::NotMine,
            WireStatus::Unauthorized,
        ] {
            assert_eq!(WireStatus::from_code(status.code()), Some(status));
        }
        assert_eq!(WireStatus::ShedLoad.code(), 4, "wire byte is part of the protocol");
        for code in 7..=u8::MAX {
            assert_eq!(WireStatus::from_code(code), None);
        }
    }

    /// Append-only regression guard for the version-2 wire tables: the
    /// magics, version and status bytes below are the protocol. Any edit
    /// that changes an existing value (rather than appending a new one)
    /// breaks deployed peers and must bump `WIRE_VERSION` instead.
    #[test]
    fn wire_tables_are_append_only() {
        assert_eq!(WIRE_VERSION, 2, "version 2 added hello/shard-map + NotMine/Unauthorized");
        assert_eq!(REQUEST_MAGIC, *b"DSRQ");
        assert_eq!(RESPONSE_MAGIC, *b"DSRS");
        assert_eq!(HELLO_MAGIC, *b"DSHI");
        assert_eq!(SHARD_MAP_MAGIC, *b"DSMP");
        let table: [(WireStatus, u8); 7] = [
            (WireStatus::Ok, 0),
            (WireStatus::InvalidRequest, 1),
            (WireStatus::ShuttingDown, 2),
            (WireStatus::UnsupportedVersion, 3),
            (WireStatus::ShedLoad, 4),
            (WireStatus::NotMine, 5),
            (WireStatus::Unauthorized, 6),
        ];
        for (status, code) in table {
            assert_eq!(status.code(), code, "{status:?} moved in the status table");
        }
    }

    fn sample_map() -> ShardMap {
        ShardMap {
            version: 7,
            seed: 0xDEAD_BEEF,
            vnodes: 64,
            replication: 2,
            nodes: vec![
                NodeEntry { id: 0, addr: "127.0.0.1:7400".into(), alive: true },
                NodeEntry { id: 1, addr: "127.0.0.1:7401".into(), alive: false },
                NodeEntry { id: 2, addr: "[::1]:7402".into(), alive: true },
            ],
        }
    }

    #[test]
    fn hello_and_shard_map_frames_round_trip() {
        for token in [None, Some(String::new()), Some("open sesame".to_string())] {
            let sent = HelloFrame { token };
            let bytes = sent.to_bytes();
            let (decoded, consumed) = decode_one(&bytes).expect("decodes").expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, Frame::Hello(sent));
        }
        let sent = ShardMapFrame { map: sample_map() };
        let bytes = sent.to_bytes();
        let (decoded, consumed) = decode_one(&bytes).expect("decodes").expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, Frame::ShardMap(sent));
    }

    #[test]
    fn hello_and_shard_map_truncation_never_panics() {
        for bytes in [
            HelloFrame { token: Some("t".into()) }.to_bytes(),
            ShardMapFrame { map: sample_map() }.to_bytes(),
        ] {
            for len in 0..bytes.len() {
                match decode_one(&bytes[..len]) {
                    Ok(None) => {}
                    other => panic!("prefix of {len} bytes gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn malformed_hello_and_shard_map_bodies_are_rejected() {
        // Unknown hello flag bits.
        let mut out = Vec::new();
        seal_into(&mut out, HELLO_MAGIC, |body| body.push(0x02));
        assert!(matches!(decode_one(&out), Err(WireError::Malformed(_))));
        // A shard map with no members.
        let mut out = Vec::new();
        seal_into(&mut out, SHARD_MAP_MAGIC, |body| {
            put_u64(body, 1);
            put_u64(body, 0);
            put_u16(body, 64);
            put_u16(body, 2);
            put_u16(body, 0);
        });
        assert!(matches!(decode_one(&out), Err(WireError::Malformed(_))));
        // Liveness bytes other than 0/1.
        let mut out = Vec::new();
        seal_into(&mut out, SHARD_MAP_MAGIC, |body| {
            put_u64(body, 1);
            put_u64(body, 0);
            put_u16(body, 64);
            put_u16(body, 2);
            put_u16(body, 1);
            put_u16(body, 0);
            body.push(9);
            put_u16(body, 0);
        });
        assert!(matches!(decode_one(&out), Err(WireError::Malformed(_))));
    }

    #[test]
    fn a_shed_load_error_frame_round_trips() {
        let sent =
            ResponseFrame::error(88, WireStatus::ShedLoad, "load shed: projected queue delay");
        let bytes = sent.to_bytes();
        let (decoded, consumed) = decode_one(&bytes).expect("decodes").expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, Frame::Response(sent.clone()));
        match sent.into_body() {
            Err(WireError::Rejected { status, message }) => {
                assert_eq!(status, WireStatus::ShedLoad);
                assert!(message.contains("load shed"));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn any_request_roundtrips(seed in proptest::any::<u64>()) {
            let sent = frame(seed);
            let bytes = sent.to_bytes();
            let (decoded, consumed) = decode_one(&bytes).expect("decodes").expect("complete");
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, Frame::Request(sent));
        }

        #[test]
        fn any_truncation_is_need_more_not_panic(seed in proptest::any::<u64>(), cut in 0usize..=1) {
            let bytes = frame(seed).to_bytes();
            // Cut either within the envelope or within the body/checksum.
            let len = if cut == 0 { bytes.len().min(seed as usize % (HEADER_LEN + 1)) }
                      else { HEADER_LEN + (seed as usize % (bytes.len() - HEADER_LEN)) };
            prop_assert!(matches!(decode_one(&bytes[..len]), Ok(None)));
        }

        #[test]
        fn any_single_byte_corruption_is_an_error_not_a_panic(
            seed in proptest::any::<u64>(),
            flip in proptest::any::<u64>(),
            bit in 0u8..8,
        ) {
            let sent = frame(seed);
            let mut bytes = sent.to_bytes();
            let at = (flip % bytes.len() as u64) as usize;
            bytes[at] ^= 1 << bit;
            // Any outcome but a panic or a silently different frame is fine:
            // either an error, a request for more bytes (length prefix grew),
            // or — if the flip hit a don't-care encoding bit — the original.
            match decode_one(&bytes) {
                Err(_) | Ok(None) => {}
                Ok(Some((Frame::Request(decoded), _))) => prop_assert_eq!(decoded, sent),
                Ok(Some((Frame::Response(_), _))) => {
                    // The checksum covers the body only, so flipping the
                    // magic's Q<->S bit can legally re-type the frame; any
                    // other byte must not survive as a valid response.
                    prop_assert!(at == 3 && bit == 1, "byte {at} bit {bit} re-typed the frame");
                }
                Ok(Some((Frame::Hello(_) | Frame::ShardMap(_), _))) => {
                    // No single-bit flip of b"DSRQ" reaches b"DSHI" or
                    // b"DSMP" (each differs in at least two bits).
                    prop_assert!(false, "byte {at} bit {bit} re-typed a request to a handshake");
                }
            }
        }
    }
}
