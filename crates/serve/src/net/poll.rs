//! A minimal epoll readiness loop (Linux), in the spirit of `mio` but
//! dependency-free: the four syscalls the front-end needs are declared
//! directly against the C library the binary already links, so the
//! workspace stays registry-free (see the vendored-shims note in the root
//! manifest).
//!
//! The surface is deliberately tiny — level-triggered readiness over raw
//! fds, a [`Token`] per registration, and a [`Waker`] (an `eventfd`) so
//! other threads can interrupt a blocked [`Poller::wait`]. Each wire
//! reactor owns one `Poller` + `Waker` pair: its completion pump wakes it
//! per response, and the acceptor wakes peer reactors after handing off a
//! connection. Level-triggered readiness is what makes the hand-off safe —
//! a socket adopted with bytes already pending fires `EPOLLIN` on the
//! owner's next wait. Everything higher-level (buffers, framing,
//! connection state) lives in [`crate::net::server`].

use std::io;
use std::os::fd::RawFd;

/// Readiness on the registered fd: readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness on the registered fd: writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness on the registered fd: error condition.
pub const EPOLLERR: u32 = 0x008;
/// Readiness on the registered fd: hang-up.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness on the registered fd: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event` as the kernel ABI defines it. Packed on x86-64
/// (the kernel chose a 12-byte layout there); the natural layout elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// The C library the binary links anyway; no crate dependency involved.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Opaque per-registration identifier, echoed back on every readiness
/// event for that fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// The raw `EPOLL*` readiness bits.
    pub readiness: u32,
}

impl Event {
    /// The fd has bytes to read (or a pending accept), or the peer hung up
    /// (which reads as EOF).
    pub fn readable(&self) -> bool {
        self.readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd can accept more outbound bytes.
    pub fn writable(&self) -> bool {
        self.readiness & (EPOLLOUT | EPOLLERR) != 0
    }

    /// The peer is gone (error or hang-up).
    pub fn closed(&self) -> bool {
        self.readiness & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: Token) -> io::Result<()> {
        let mut event = EpollEvent { events: interest, data: token.0 };
        // SAFETY: `event` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Starts watching `fd` for `interest` readiness under `token`.
    pub fn register(&self, fd: RawFd, interest: u32, token: Token) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest set of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, interest: u32, token: Token) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent { events: 0, data: 0 };
        // A non-null event pointer keeps pre-2.6.9 kernels happy; harmless
        // everywhere else.
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (`None` = forever) for readiness events,
    /// appending them to `out`. Returns how many arrived. A signal-
    /// interrupted wait retries transparently.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        const CAPACITY: usize = 64;
        let mut buffer = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            // SAFETY: `buffer` is a valid array of CAPACITY events.
            let ret = unsafe {
                epoll_wait(
                    self.epfd,
                    buffer.as_mut_ptr(),
                    CAPACITY as i32,
                    timeout_ms.unwrap_or(-1),
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for event in &buffer[..n] {
            // A packed struct's fields must be copied out, not referenced.
            let (events, data) = (event.events, event.data);
            out.push(Event { token: Token(data), readiness: events });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wake-up for a blocked [`Poller::wait`]: an `eventfd`
/// registered like any other fd. `wake` is cheap and thread-safe; the
/// event loop calls `drain` when the waker's token surfaces.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        poller.register(fd, EPOLLIN, token)?;
        Ok(Waker { fd })
    }

    /// Makes the poller's next (or current) `wait` return.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value. An EAGAIN (counter
        // saturated) still leaves the eventfd readable, which is all wake()
        // promises.
        unsafe { write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
    }

    /// Clears the pending wake-up counter.
    pub fn drain(&self) {
        let mut counter = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        unsafe { read(self.fd, counter.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_unblocks_wait_across_threads() {
        let poller = Poller::new().expect("epoll");
        let waker = std::sync::Arc::new(Waker::new(&poller, Token(7)).expect("eventfd"));
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable());
        waker.drain();
        handle.join().unwrap();
        // Drained: a zero-timeout wait sees nothing.
        events.clear();
        let n = poller.wait(&mut events, Some(0)).expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_is_reported_with_its_token() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let poller = Poller::new().expect("epoll");
        poller.register(listener.as_raw_fd(), EPOLLIN, Token(1)).expect("register listener");
        // No pending connection: nothing is ready.
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(0)).expect("wait"), 0);
        // A connection makes the listener readable.
        let _client =
            std::net::TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(1));
        assert!(events[0].readable());
        // Accept, register the server end, and observe bytes arriving.
        let (server_end, _) = listener.accept().expect("accept");
        server_end.set_nonblocking(true).expect("nonblocking");
        poller.register(server_end.as_raw_fd(), EPOLLIN | EPOLLRDHUP, Token(2)).expect("register");
        let mut client = _client;
        client.write_all(b"ping").expect("write");
        events.clear();
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == Token(2) && e.readable()));
        poller.deregister(server_end.as_raw_fd()).expect("deregister");
    }
}
