//! Cluster-scale serving: consistent-hash model sharding over a small
//! fleet of wire servers.
//!
//! One process per node, each running the full serving stack; the
//! [`HashRing`] in [`ring`] deterministically assigns every
//! [`crate::ModelKey`] a **replica group** of nodes, so the catalogue and
//! the request rate both scale horizontally while any client and any node
//! that share a [`ShardMap`] agree on routing with no coordinator.
//!
//! The shard map is versioned and exchanged at connect time: clients open
//! with a `HELO` frame and the server answers with its current map. A node
//! that receives a request for a shard it does not own answers a
//! `NotMine` redirect naming the owners; clients follow redirects with
//! bounded retries and fail over to the next replica when a node dies
//! mid-request (inference is deterministic, so resends are idempotent).
//! Liveness is peer-observed: each node periodically pings its peers with
//! the same `HELO` exchange, and marking a peer dead (or alive again)
//! bumps the local map version so clients refresh.

pub mod ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::config::ClusterConfig;
use crate::stats::ClusterStats;

pub use ring::{shard_hash, shard_string, HashRing};

/// One member node as published in a [`ShardMap`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Stable node id (the ring hashes this, not the address).
    pub id: u16,
    /// The address clients dial, e.g. `127.0.0.1:7401`.
    pub addr: String,
    /// Whether the publishing node currently believes this peer is up.
    pub alive: bool,
}

/// The versioned cluster membership exchanged in shard-map frames.
///
/// Everything a client needs to route: the ring parameters (`seed`,
/// `vnodes`, `replication`) and the member list with liveness. Two peers
/// holding maps with equal `version` and equal contents route identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotonic map version; bumped on every liveness transition.
    pub version: u64,
    /// Ring seed (all nodes must agree; set in [`ClusterConfig`]).
    pub seed: u64,
    /// Virtual nodes per member.
    pub vnodes: u16,
    /// Replica-group size for every shard.
    pub replication: u16,
    /// All known members, dead or alive.
    pub nodes: Vec<NodeEntry>,
}

impl ShardMap {
    /// The single-node map a server without a [`ClusterConfig`] publishes:
    /// one alive member (id 0) at `addr`, so cluster-aware clients work
    /// unchanged against a standalone server.
    pub fn standalone(addr: String) -> Self {
        ShardMap {
            version: 1,
            seed: 0,
            vnodes: 1,
            replication: 1,
            nodes: vec![NodeEntry { id: 0, addr, alive: true }],
        }
    }

    /// Builds the initial map from a node's own config: every configured
    /// member starts alive at version 1.
    pub fn from_config(config: &ClusterConfig, local_addr: &str) -> Self {
        let mut nodes = vec![NodeEntry {
            id: config.node_id,
            addr: if config.advertise.is_empty() {
                local_addr.to_string()
            } else {
                config.advertise.clone()
            },
            alive: true,
        }];
        for (id, addr) in &config.peers {
            nodes.push(NodeEntry { id: *id, addr: addr.clone(), alive: true });
        }
        nodes.sort_by_key(|node| node.id);
        nodes.dedup_by_key(|node| node.id);
        ShardMap {
            version: 1,
            seed: config.seed,
            vnodes: config.vnodes.max(1).min(u16::MAX as usize) as u16,
            replication: config.replication.max(1).min(u16::MAX as usize) as u16,
            nodes,
        }
    }

    /// The ring over the map's **alive** members. Dead nodes own nothing;
    /// their shards fall to the next replica on the ring.
    pub fn ring(&self) -> HashRing {
        let alive: Vec<u16> =
            self.nodes.iter().filter(|node| node.alive).map(|node| node.id).collect();
        HashRing::build(&alive, self.vnodes as usize, self.seed)
    }

    /// The address of node `id`, if the map knows it.
    pub fn addr_of(&self, id: u16) -> Option<&str> {
        self.nodes.iter().find(|node| node.id == id).map(|node| node.addr.as_str())
    }

    /// Count of members currently marked alive.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|node| node.alive).count()
    }
}

/// Shared cluster state on a serving node: the current map + ring behind a
/// lock, and lock-free counters feeding `dsstc_cluster_*` telemetry.
#[derive(Debug)]
pub struct ClusterState {
    /// Local node id (requests whose replica group excludes it redirect).
    node_id: u16,
    map: RwLock<(ShardMap, HashRing)>,
    redirects: AtomicU64,
    failover_serves: AtomicU64,
    hellos: AtomicU64,
    auth_failures: AtomicU64,
    peer_probes: AtomicU64,
    peer_failures: AtomicU64,
}

impl ClusterState {
    /// Wraps an initial map for `node_id`.
    pub fn new(node_id: u16, map: ShardMap) -> Self {
        let ring = map.ring();
        ClusterState {
            node_id,
            map: RwLock::new((map, ring)),
            redirects: AtomicU64::new(0),
            failover_serves: AtomicU64::new(0),
            hellos: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
            peer_probes: AtomicU64::new(0),
            peer_failures: AtomicU64::new(0),
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> u16 {
        self.node_id
    }

    /// A clone of the current shard map (what hello replies carry).
    pub fn map(&self) -> ShardMap {
        self.map.read().expect("cluster map lock").0.clone()
    }

    /// Routes `hash`: the replica group (primary first) under the current
    /// map, plus the map version it was computed under.
    pub fn route(&self, hash: u64) -> (Vec<u16>, u64) {
        let guard = self.map.read().expect("cluster map lock");
        (guard.1.replicas(hash, guard.0.replication as usize), guard.0.version)
    }

    /// Flips peer `id`'s liveness. Returns `true` (after bumping the map
    /// version and rebuilding the ring) if that actually changed the map.
    pub fn set_alive(&self, id: u16, alive: bool) -> bool {
        let mut guard = self.map.write().expect("cluster map lock");
        let Some(node) = guard.0.nodes.iter_mut().find(|node| node.id == id) else {
            return false;
        };
        if node.alive == alive {
            return false;
        }
        node.alive = alive;
        guard.0.version += 1;
        guard.1 = guard.0.ring();
        true
    }

    /// Counts a request redirected because this node does not own it.
    pub fn record_redirect(&self) {
        self.redirects.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request served as a non-primary replica (failover serve).
    pub fn record_failover_serve(&self) {
        self.failover_serves.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hello handshake answered.
    pub fn record_hello(&self) {
        self.hellos.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hello rejected for a bad or missing auth token.
    pub fn record_auth_failure(&self) {
        self.auth_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one peer liveness probe, failed or not.
    pub fn record_peer_probe(&self, failed: bool) {
        self.peer_probes.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.peer_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot for [`crate::ServerStats::cluster`].
    pub fn snapshot(&self) -> ClusterStats {
        let (shard_map_version, peers_alive, peers_total) = {
            let guard = self.map.read().expect("cluster map lock");
            (guard.0.version, guard.0.alive_count() as u64, guard.0.nodes.len() as u64)
        };
        ClusterStats {
            node_id: self.node_id as u64,
            shard_map_version,
            peers_alive,
            peers_total,
            redirects: self.redirects.load(Ordering::Relaxed),
            failover_serves: self.failover_serves.load(Ordering::Relaxed),
            hellos: self.hellos.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            peer_probes: self.peer_probes.load(Ordering::Relaxed),
            peer_failures: self.peer_failures.load(Ordering::Relaxed),
        }
    }
}

/// Constant-time equality for auth tokens: scans both inputs fully so the
/// comparison's timing leaks neither the mismatch position nor (beyond
/// equality) the lengths.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config() -> ClusterConfig {
        ClusterConfig {
            node_id: 0,
            advertise: "127.0.0.1:7400".into(),
            peers: vec![(1, "127.0.0.1:7401".into()), (2, "127.0.0.1:7402".into())],
            replication: 2,
            vnodes: 64,
            seed: 11,
            ping_interval: Duration::from_millis(200),
            ping_failures: 2,
        }
    }

    #[test]
    fn map_from_config_lists_every_member_alive_and_sorted() {
        let map = ShardMap::from_config(&config(), "0.0.0.0:0");
        assert_eq!(map.version, 1);
        assert_eq!(map.nodes.len(), 3);
        assert!(map.nodes.iter().all(|node| node.alive));
        assert_eq!(
            map.nodes.iter().map(|node| node.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "members are sorted by id"
        );
        assert_eq!(map.addr_of(0), Some("127.0.0.1:7400"));
        assert_eq!(map.addr_of(7), None);
    }

    #[test]
    fn standalone_map_routes_everything_to_the_one_node() {
        let map = ShardMap::standalone("127.0.0.1:9000".into());
        let ring = map.ring();
        for probe in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(ring.replicas(probe, map.replication as usize), vec![0]);
        }
    }

    #[test]
    fn liveness_transition_bumps_version_and_shrinks_the_ring() {
        let state = ClusterState::new(0, ShardMap::from_config(&config(), "0.0.0.0:0"));
        let before = state.map();
        assert_eq!(before.version, 1);
        assert_eq!(before.alive_count(), 3);

        assert!(state.set_alive(2, false), "first death changes the map");
        assert!(!state.set_alive(2, false), "repeat death is a no-op");
        let during = state.map();
        assert_eq!(during.version, 2);
        assert_eq!(during.alive_count(), 2);
        // The dead node owns nothing: every replica group avoids it.
        for probe in 0..64u64 {
            let (owners, version) = state.route(probe.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(version, 2);
            assert!(!owners.contains(&2), "dead node 2 still owns {owners:?}");
            assert_eq!(owners.len(), 2, "replication 2 still satisfied by survivors");
        }

        assert!(state.set_alive(2, true), "recovery changes the map again");
        assert_eq!(state.map().version, 3);
        assert!(!state.set_alive(9, false), "unknown peers never change the map");
    }

    #[test]
    fn counters_land_in_the_snapshot() {
        let state = ClusterState::new(4, ShardMap::standalone("127.0.0.1:1".into()));
        state.record_redirect();
        state.record_redirect();
        state.record_failover_serve();
        state.record_hello();
        state.record_auth_failure();
        state.record_peer_probe(false);
        state.record_peer_probe(true);
        let snap = state.snapshot();
        assert_eq!(snap.node_id, 4);
        assert_eq!(snap.redirects, 2);
        assert_eq!(snap.failover_serves, 1);
        assert_eq!(snap.hellos, 1);
        assert_eq!(snap.auth_failures, 1);
        assert_eq!(snap.peer_probes, 2);
        assert_eq!(snap.peer_failures, 1);
        assert_eq!(snap.shard_map_version, 1);
        assert_eq!(snap.peers_alive, 1);
        assert_eq!(snap.peers_total, 1);
    }

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"sesame", b"sesame"));
        assert!(!constant_time_eq(b"sesame", b"Sesame"));
        assert!(!constant_time_eq(b"sesame", b"sesame!"));
        assert!(!constant_time_eq(b"sesame", b""));
    }
}
