//! Completion-time-aware batch-to-device dispatch.
//!
//! Every device in the pool carries its own [`BatchTimingModel`] and a
//! modelled clock: the instant (in modelled microseconds since server
//! start) at which the work already assigned to it will have finished.
//! Assigning a batch prices it on each candidate device and routes it to
//! the one that would **complete** it first — so a slower V100 still
//! absorbs traffic whenever the faster A100's backlog outweighs its speed
//! advantage, and the pool's modelled makespan stays near the optimum a
//! greedy list scheduler can reach. A round-robin policy is kept as the
//! baseline the benchmarks compare against.

use std::sync::{Arc, Mutex};

use dsstc_kernels::EncodingSpec;

use crate::config::DevicePool;
use crate::request::ModelKey;
use crate::timing::BatchTimingModel;

/// How released batches are assigned to pooled devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Price the batch on every device and pick the one minimising modelled
    /// completion time (modelled backlog + modelled batch time).
    MinCompletionTime,
    /// Rotate through devices regardless of their speed or backlog
    /// (baseline).
    RoundRobin,
}

/// One dispatch decision.
#[derive(Clone, Copy, Debug)]
pub struct DeviceAssignment {
    /// Index of the chosen device in the pool.
    pub device: usize,
    /// Modelled time of this batch on the chosen device, µs.
    pub modelled_batch_us: f64,
    /// Modelled instant (µs since start) at which the chosen device will
    /// have finished this batch.
    pub modelled_finish_us: f64,
}

/// A planned (not yet committed) dispatch decision: the chosen device and
/// its modelled batch time, with the modelled clock untouched. Lets the
/// caller attempt a bounded hand-off first and re-plan on a different
/// device if the chosen one is backed up.
#[derive(Clone, Copy, Debug)]
pub struct DevicePlan {
    /// Index of the chosen device in the pool.
    pub device: usize,
    /// Modelled time of the batch on that device, µs.
    pub modelled_batch_us: f64,
}

#[derive(Debug)]
struct DispatchState {
    /// Per-device modelled backlog horizon, µs since start.
    busy_until_us: Vec<f64>,
    /// Next device under round-robin.
    next_rr: usize,
}

/// Routes batches onto a (possibly heterogeneous) device pool.
#[derive(Debug)]
pub struct DeviceDispatcher {
    timings: Vec<Arc<BatchTimingModel>>,
    names: Vec<String>,
    specs: Vec<EncodingSpec>,
    policy: DispatchPolicy,
    state: Mutex<DispatchState>,
}

impl DeviceDispatcher {
    /// Builds one timing model (and one encoding spec — the device's native
    /// tiling) per pooled device.
    pub fn new(pool: &DevicePool, policy: DispatchPolicy) -> Self {
        let timings =
            pool.devices().iter().map(|d| Arc::new(BatchTimingModel::new(d.clone()))).collect();
        let specs = pool.devices().iter().map(EncodingSpec::for_gpu).collect();
        DeviceDispatcher {
            timings,
            names: pool.names(),
            specs,
            policy,
            state: Mutex::new(DispatchState { busy_until_us: vec![0.0; pool.len()], next_rr: 0 }),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.timings.len()
    }

    /// Always `false`: dispatchers are built from non-empty pools.
    pub fn is_empty(&self) -> bool {
        self.timings.is_empty()
    }

    /// Device names, in pool order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The dispatch policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The timing model of one device.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn timing(&self, device: usize) -> &Arc<BatchTimingModel> {
        &self.timings[device]
    }

    /// The encoding spec one device's batches must execute (its native
    /// tiling) — what the worker pool keys its repository lookups by.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn spec(&self, device: usize) -> EncodingSpec {
        self.specs[device]
    }

    /// Per-device encoding specs, in pool order.
    pub fn specs(&self) -> &[EncodingSpec] {
        &self.specs
    }

    /// Prices a batch of `batch` requests of `key`'s model on every device
    /// marked `eligible` and returns the plan minimising modelled
    /// completion time (or the rotation target under round-robin), without
    /// advancing the modelled clock. Returns `None` when no device is
    /// eligible.
    ///
    /// Pricing uses the timing caches, falling back to the key's layer
    /// table (never the encode cache) for cold buckets — a cold model's
    /// slow prune+encode cannot head-of-line block dispatch, and on the
    /// steady-state hot path no layer table is built at all.
    ///
    /// # Panics
    /// Panics if `batch` is zero or `eligible` does not match the pool
    /// size.
    pub fn plan(&self, key: ModelKey, batch: usize, eligible: &[bool]) -> Option<DevicePlan> {
        assert_eq!(eligible.len(), self.timings.len(), "one eligibility flag per device");
        // Built at most once per plan, and only when a device's bucket is
        // not priced yet.
        let mut network = None;
        let mut price = |device: usize| {
            self.timings[device].cached_batched_us(key, batch).unwrap_or_else(|| {
                let network = network.get_or_insert_with(|| key.network());
                self.timings[device].batched_us_for(key, network, batch)
            })
        };
        let state = self.state.lock().expect("dispatch mutex poisoned");
        match self.policy {
            DispatchPolicy::RoundRobin => {
                let n = self.timings.len();
                let device =
                    (0..n).map(|offset| (state.next_rr + offset) % n).find(|&d| eligible[d])?;
                Some(DevicePlan { device, modelled_batch_us: price(device) })
            }
            DispatchPolicy::MinCompletionTime => (0..self.timings.len())
                .filter(|&d| eligible[d])
                .map(|d| (d, price(d)))
                .min_by(|(da, ca), (db, cb)| {
                    let fa = state.busy_until_us[*da] + ca;
                    let fb = state.busy_until_us[*db] + cb;
                    fa.partial_cmp(&fb).expect("modelled times are finite")
                })
                .map(|(device, modelled_batch_us)| DevicePlan { device, modelled_batch_us }),
        }
    }

    /// Commits a plan: advances the chosen device's modelled clock (and the
    /// round-robin rotation) and returns the final assignment.
    pub fn commit(&self, plan: DevicePlan) -> DeviceAssignment {
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        if self.policy == DispatchPolicy::RoundRobin {
            state.next_rr = plan.device + 1;
        }
        state.busy_until_us[plan.device] += plan.modelled_batch_us;
        DeviceAssignment {
            device: plan.device,
            modelled_batch_us: plan.modelled_batch_us,
            modelled_finish_us: state.busy_until_us[plan.device],
        }
    }

    /// Plans and immediately commits over the whole pool: the single-step
    /// assignment used when no hand-off fallback is needed.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn assign(&self, key: ModelKey, batch: usize) -> DeviceAssignment {
        let plan =
            self.plan(key, batch, &vec![true; self.timings.len()]).expect("non-empty device pool");
        self.commit(plan)
    }

    /// Per-device modelled backlog horizons, µs since start.
    pub fn busy_until_us(&self) -> Vec<f64> {
        self.state.lock().expect("dispatch mutex poisoned").busy_until_us.clone()
    }

    /// Modelled makespan of everything assigned so far: the latest device
    /// backlog horizon, µs.
    pub fn makespan_us(&self) -> f64 {
        self.busy_until_us().into_iter().fold(0.0, f64::max)
    }

    /// Modelled microseconds one request of `key` costs on the fastest
    /// pooled device (batch of one): the admission controller's unit price
    /// for turning queue depth into projected queue delay. Same pricing as
    /// [`Self::plan`] — timing caches first, the key's layer table for
    /// cold buckets — so the admission decision is deterministic and never
    /// consults a wall clock.
    pub fn unit_cost_us(&self, key: ModelKey) -> f64 {
        let mut network = None;
        self.timings
            .iter()
            .map(|timing| {
                timing.cached_batched_us(key, 1).unwrap_or_else(|| {
                    let network = network.get_or_insert_with(|| key.network());
                    timing.batched_us_for(key, network, 1)
                })
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Aggregate timing-cache hit rate across the pool's models.
    pub fn timing_hit_rate(&self) -> f64 {
        let hits: u64 = self.timings.iter().map(|t| t.hit_count()).sum();
        let misses: u64 = self.timings.iter().map(|t| t.miss_count()).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use dsstc_sim::GpuConfig;

    fn mixed_pool() -> DevicePool {
        DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()])
    }

    fn bert() -> ModelKey {
        ModelKey::new(ModelId::BertBase, None)
    }

    #[test]
    fn per_device_specs_follow_the_native_tilings() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::MinCompletionTime);
        assert_eq!(d.spec(0).tiling, GpuConfig::v100().native_tiling());
        assert_eq!(d.spec(1).tiling, GpuConfig::a100().native_tiling());
        assert_ne!(d.spec(0), d.spec(1), "heterogeneous devices carry distinct encodings");
        assert_eq!(d.specs().len(), d.len());
    }

    #[test]
    fn a100_models_faster_than_v100() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::MinCompletionTime);
        let key = bert();
        let network = key.network();
        let v100 = d.timing(0).batched_us_for(key, &network, 4);
        let a100 = d.timing(1).batched_us_for(key, &network, 4);
        assert!(a100 < v100, "A100 {a100} us should beat V100 {v100} us");
    }

    #[test]
    fn round_robin_alternates_devices() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::RoundRobin);
        let devices: Vec<usize> = (0..4).map(|_| d.assign(bert(), 2).device).collect();
        assert_eq!(devices, vec![0, 1, 0, 1]);
    }

    #[test]
    fn min_completion_time_prefers_the_less_backlogged_faster_device() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::MinCompletionTime);
        // Full VGG-16 batches show the widest modelled V100/A100 gap, so
        // the balanced split is visibly asymmetric.
        let key = ModelKey::new(ModelId::Vgg16, None);
        // Empty pool: both finish at their own batch cost; the faster A100
        // wins. Its backlog then grows until the idle V100 becomes the
        // earlier finisher, so both devices end up utilised.
        let mut seen = [0usize; 2];
        for _ in 0..12 {
            seen[d.assign(key, 8).device] += 1;
        }
        assert!(seen[0] > 0, "V100 absorbed no work: {seen:?}");
        assert!(seen[1] > seen[0], "A100 should take the larger share: {seen:?}");
        let busy = d.busy_until_us();
        assert!(d.makespan_us() >= busy[0].max(busy[1]) - 1e-9);
    }

    #[test]
    fn plan_respects_eligibility_and_only_commit_advances_the_clock() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::MinCompletionTime);
        let key = bert();
        let plan = d.plan(key, 2, &[true, true]).expect("some device");
        assert_eq!(d.makespan_us(), 0.0, "planning must not advance the modelled clock");
        // Excluding the planned device forces the fallback to the other.
        let only_other: Vec<bool> = (0..2).map(|i| i != plan.device).collect();
        let fallback = d.plan(key, 2, &only_other).expect("other device");
        assert_ne!(fallback.device, plan.device);
        assert!(d.plan(key, 2, &[false, false]).is_none(), "no eligible device, no plan");
        let committed = d.commit(plan);
        assert_eq!(committed.device, plan.device);
        assert!(committed.modelled_finish_us > 0.0);
        assert!(d.makespan_us() > 0.0);
    }

    #[test]
    fn round_robin_rotation_skips_ineligible_devices() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::RoundRobin);
        let key = bert();
        // Device 0 is the rotation target but ineligible: the plan falls
        // through to device 1, and committing it keeps the rotation moving.
        let plan = d.plan(key, 2, &[false, true]).expect("device 1 eligible");
        assert_eq!(plan.device, 1);
        d.commit(plan);
        assert_eq!(d.assign(key, 2).device, 0, "rotation resumes after the committed device");
    }

    #[test]
    fn assignments_advance_the_modelled_clock() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::RoundRobin);
        let a = d.assign(bert(), 2);
        assert!(a.modelled_batch_us > 0.0);
        assert!((a.modelled_finish_us - a.modelled_batch_us).abs() < 1e-9);
        let b = d.assign(bert(), 2);
        let c = d.assign(bert(), 2);
        assert_eq!(c.device, a.device);
        assert!(c.modelled_finish_us > a.modelled_finish_us);
        assert!(b.modelled_finish_us > 0.0);
        assert!(d.timing_hit_rate() > 0.0, "repeat pricing hits the cache");
    }

    #[test]
    fn unit_cost_is_the_fastest_devices_single_request_price_and_is_stable() {
        let d = DeviceDispatcher::new(&mixed_pool(), DispatchPolicy::MinCompletionTime);
        let key = bert();
        let network = key.network();
        let unit = d.unit_cost_us(key);
        assert!(unit > 0.0 && unit.is_finite());
        let v100 = d.timing(0).batched_us_for(key, &network, 1);
        let a100 = d.timing(1).batched_us_for(key, &network, 1);
        assert!((unit - v100.min(a100)).abs() < 1e-9, "min over devices");
        // Pure pricing: repeated calls agree and never advance the
        // modelled clock (nothing to drain, nothing time-dependent).
        assert_eq!(d.unit_cost_us(key), unit);
        assert_eq!(d.makespan_us(), 0.0);
        // Heavier models price strictly higher.
        let vgg = d.unit_cost_us(ModelKey::new(ModelId::Vgg16, None));
        assert!(vgg > unit, "VGG-16 {vgg} us should out-price BERT {unit} us");
    }
}
