//! Layer and network descriptors.

use dsstc_tensor::{ConvShape, GemmShape};

/// What kind of computation a layer performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A 2-D convolution (lowered to GEMM via im2col at run time).
    Conv(ConvShape),
    /// A plain matrix multiplication (fully-connected, attention or LSTM
    /// gate matrices).
    Gemm(GemmShape),
}

impl LayerKind {
    /// Multiply-accumulate count of the dense layer.
    pub fn macs(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.macs(),
            LayerKind::Gemm(g) => g.macs(),
        }
    }

    /// The GEMM the layer maps onto the Tensor Cores (identity for GEMM
    /// layers, the im2col-lowered shape for convolutions).
    pub fn lowered_gemm(&self) -> GemmShape {
        match self {
            LayerKind::Conv(c) => c.lowered_gemm(),
            LayerKind::Gemm(g) => *g,
        }
    }

    /// Whether this is a convolution layer.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv(_))
    }
}

/// One network layer with its measured sparsity ratios.
#[derive(Clone, Debug, PartialEq)]
pub struct Layer {
    /// Layer name as plotted in Fig. 22 (e.g. `"conv3-2"`, `"FFN-1"`).
    pub name: String,
    /// Computation shape.
    pub kind: LayerKind,
    /// Fraction of zero weights after pruning.
    pub weight_sparsity: f64,
    /// Fraction of zero input activations (ReLU-induced for CNNs/RNNs,
    /// near-zero for GELU-based BERT).
    pub activation_sparsity: f64,
}

impl Layer {
    /// Creates a convolution layer.
    ///
    /// # Panics
    /// Panics if a sparsity is outside `[0, 1]`.
    pub fn conv(
        name: &str,
        shape: ConvShape,
        weight_sparsity: f64,
        activation_sparsity: f64,
    ) -> Self {
        Self::validate(weight_sparsity, activation_sparsity);
        Layer {
            name: name.to_string(),
            kind: LayerKind::Conv(shape),
            weight_sparsity,
            activation_sparsity,
        }
    }

    /// Creates a GEMM layer.
    ///
    /// # Panics
    /// Panics if a sparsity is outside `[0, 1]`.
    pub fn gemm(
        name: &str,
        shape: GemmShape,
        weight_sparsity: f64,
        activation_sparsity: f64,
    ) -> Self {
        Self::validate(weight_sparsity, activation_sparsity);
        Layer {
            name: name.to_string(),
            kind: LayerKind::Gemm(shape),
            weight_sparsity,
            activation_sparsity,
        }
    }

    fn validate(w: f64, a: f64) {
        assert!((0.0..=1.0).contains(&w), "weight sparsity must be in [0,1]");
        assert!((0.0..=1.0).contains(&a), "activation sparsity must be in [0,1]");
    }

    /// Dense multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.kind.macs()
    }

    /// MACs that remain when both operand sparsities are exploited
    /// perfectly (the loose theoretical bound Fig. 22 plots).
    pub fn effective_macs(&self) -> u64 {
        let keep = (1.0 - self.weight_sparsity) * (1.0 - self.activation_sparsity);
        (self.macs() as f64 * keep).ceil() as u64
    }
}

/// A whole network: an ordered list of layers.
#[derive(Clone, Debug, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from its layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty.
    pub fn new(name: &str, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Network { name: name.to_string(), layers }
    }

    /// Network name ("VGG-16", "BERT-base encoder", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Whether the network contains convolution layers (decides whether the
    /// Fig. 22 comparison uses the five conv schemes or the three GEMM
    /// schemes).
    pub fn has_conv_layers(&self) -> bool {
        self.layers.iter().any(|l| l.kind.is_conv())
    }

    /// Total dense MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Average weight sparsity weighted by layer MACs.
    pub fn mean_weight_sparsity(&self) -> f64 {
        let total = self.total_macs() as f64;
        self.layers.iter().map(|l| l.weight_sparsity * l.macs() as f64).sum::<f64>() / total
    }

    /// Average activation sparsity weighted by layer MACs.
    pub fn mean_activation_sparsity(&self) -> f64 {
        let total = self.total_macs() as f64;
        self.layers.iter().map(|l| l.activation_sparsity * l.macs() as f64).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        Layer::conv("c1", ConvShape::square(56, 64, 64, 3, 1, 1), 0.8, 0.5)
    }

    #[test]
    fn layer_macs_and_lowered_shape() {
        let l = conv_layer();
        assert_eq!(l.macs(), l.kind.lowered_gemm().macs());
        assert!(l.kind.is_conv());
        let g = Layer::gemm("fc", GemmShape::new(64, 1000, 4096), 0.9, 0.0);
        assert!(!g.kind.is_conv());
        assert_eq!(g.macs(), 64 * 1000 * 4096);
    }

    #[test]
    fn effective_macs_scale_with_both_sparsities() {
        let l = conv_layer();
        let keep = 0.2 * 0.5;
        let expected = (l.macs() as f64 * keep).ceil() as u64;
        assert_eq!(l.effective_macs(), expected);
    }

    #[test]
    #[should_panic(expected = "weight sparsity")]
    fn invalid_sparsity_panics() {
        let _ = Layer::conv("bad", ConvShape::square(8, 1, 1, 3, 1, 1), 1.2, 0.0);
    }

    #[test]
    fn network_aggregates() {
        let n = Network::new(
            "toy",
            vec![conv_layer(), Layer::gemm("fc", GemmShape::new(64, 10, 64), 0.5, 0.0)],
        );
        assert_eq!(n.name(), "toy");
        assert_eq!(n.layers().len(), 2);
        assert!(n.has_conv_layers());
        assert_eq!(n.total_macs(), n.layers()[0].macs() + n.layers()[1].macs());
        assert!(n.mean_weight_sparsity() > 0.5 && n.mean_weight_sparsity() < 0.9);
        assert!(n.mean_activation_sparsity() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = Network::new("empty", vec![]);
    }
}
