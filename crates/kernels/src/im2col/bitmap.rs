//! Bitmap-based, outer-product-friendly sparse im2col (paper Section IV,
//! Fig. 10b/11).
//!
//! The feature map lives in the [`BitmapFeatureMap`] encoding. The lowering
//! works on the *bitmap*: for every kernel row it takes the packed bit row,
//! masks out the window, uses a population count to learn how many non-zeros
//! fall inside, and turns the prefix popcount plus the stored row offset
//! into the address of the condensed values — no data-dependent index loads.
//! The output can be produced directly in condensed (bitmap-encoded) form,
//! which is what lets the implicit SpCONV feed the outer-product SpGEMM from
//! registers.

use dsstc_formats::{BitmapFeatureMap, BitmapMatrix, VectorLayout};
use dsstc_tensor::{ConvShape, FeatureMap, Matrix};

use super::Im2colCost;

/// Bitmap-based sparse im2col lowering.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitmapIm2col;

impl BitmapIm2col {
    /// Creates the lowering.
    pub fn new() -> Self {
        BitmapIm2col
    }

    /// Encodes a dense feature map into the bitmap form this lowering
    /// consumes.
    pub fn encode(&self, input: &FeatureMap) -> BitmapFeatureMap {
        BitmapFeatureMap::encode(input)
    }

    /// Produces the dense lowered matrix (`out_h*out_w x K*K*C`) from the
    /// bitmap encoding, following the mask / shift / popcount procedure of
    /// Fig. 11b.
    ///
    /// # Panics
    /// Panics if the encoding does not match `shape`.
    pub fn lower(&self, encoded: &BitmapFeatureMap, shape: &ConvShape) -> Matrix {
        assert!(encoded.matches_shape(shape), "encoded feature map does not match the shape");
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = Matrix::zeros(oh * ow, shape.k * shape.k * shape.c);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                for c in 0..shape.c {
                    for ky in 0..shape.k {
                        let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                        if iy < 0 || iy as usize >= shape.h {
                            continue;
                        }
                        let iy = iy as usize;
                        for kx in 0..shape.k {
                            let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                            if ix < 0 || ix as usize >= shape.w {
                                continue;
                            }
                            let ix = ix as usize;
                            if encoded.bit(c, iy, ix) {
                                // Prefix popcount within the bit row gives the
                                // offset of this pixel's value within the
                                // row's condensed values (whose start comes
                                // from the stored row offset).
                                let rank = prefix_popcount(encoded.row_bits(c, iy), ix);
                                out[(row, (c * shape.k + ky) * shape.k + kx)] =
                                    encoded.row_values(c, iy)[rank];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Produces the lowered matrix already in bitmap (condensed) encoding
    /// with the column-major layout the outer-product SpGEMM consumes as its
    /// A operand.
    pub fn lower_encoded(&self, encoded: &BitmapFeatureMap, shape: &ConvShape) -> BitmapMatrix {
        BitmapMatrix::encode(&self.lower(encoded, shape), VectorLayout::ColumnMajor)
    }

    /// Cost of the implicit bitmap lowering: per lowered bitmap word a
    /// shift+mask+accumulate triple, one POPC per word, and one address add
    /// per non-zero actually fetched. Nothing is written back to DRAM.
    pub fn implicit_cost(&self, encoded: &BitmapFeatureMap, shape: &ConvShape) -> Im2colCost {
        let lowered = shape.lowered_elements();
        let lowered_words = lowered.div_ceil(32);
        let density = 1.0 - encoded.sparsity();
        let touched_nnz = (lowered as f64 * density) as u64;
        Im2colCost {
            scalar_ops: lowered_words * 3 + touched_nnz,
            popc_ops: lowered_words,
            dram_bytes_read: 0,
            dram_bytes_written: 0,
        }
    }

    /// Cost of running the same procedure as a standalone (explicit) kernel,
    /// used by the Table III comparison: the encoding is read once and the
    /// condensed lowered output is written back.
    pub fn explicit_cost(&self, encoded: &BitmapFeatureMap, shape: &ConvShape) -> Im2colCost {
        let mut cost = self.implicit_cost(encoded, shape);
        let lowered = shape.lowered_elements();
        let density = 1.0 - encoded.sparsity();
        let touched_nnz = (lowered as f64 * density) as u64;
        cost.dram_bytes_read = encoded.storage().total();
        cost.dram_bytes_written = touched_nnz * 2 + lowered.div_ceil(8);
        cost
    }
}

/// Counts the set bits strictly before bit `pos` in a packed bit row.
fn prefix_popcount(words: &[u64], pos: usize) -> usize {
    let full = pos / 64;
    let mut count: usize = words[..full].iter().map(|w| w.count_ones() as usize).sum();
    let rem = pos % 64;
    if rem > 0 {
        count += (words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::dense::DenseIm2col;
    use dsstc_tensor::Matrix as M;

    fn paper_input() -> FeatureMap {
        FeatureMap::from_channels(&[M::from_rows(&[
            &[0.0, 4.0, 0.0, 2.0, 3.0, 0.0],
            &[0.0, 0.0, 5.0, 0.0, 0.0, 2.0],
            &[6.0, 0.0, 0.0, 0.0, 3.0, 0.0],
        ])])
    }

    #[test]
    fn paper_figure11_lowering_matches_dense() {
        let shape = ConvShape::new(3, 6, 1, 1, 3, 1, 0);
        let b = BitmapIm2col::new();
        let lowered = b.lower(&b.encode(&paper_input()), &shape);
        let reference = DenseIm2col::new().lower(&paper_input(), &shape);
        assert_eq!(lowered, reference);
        // Fig. 11a highlights the first columns of the lowered map coming
        // from the first feature-map row: check the first lowered row.
        assert_eq!(lowered.row(0), &[0.0, 4.0, 0.0, 0.0, 0.0, 5.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn bitmap_lowering_matches_dense_across_sparsities_and_channels() {
        for &sparsity in &[0.0, 0.3, 0.7, 0.95] {
            let shape = ConvShape::square(9, 4, 2, 3, 1, 1);
            let input = FeatureMap::random_sparse(&shape, sparsity, 21);
            let b = BitmapIm2col::new();
            let lowered = b.lower(&b.encode(&input), &shape);
            assert_eq!(lowered, DenseIm2col::new().lower(&input, &shape), "sparsity {sparsity}");
        }
    }

    #[test]
    fn strided_lowering_matches_dense() {
        let shape = ConvShape::square(12, 3, 2, 3, 2, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 22);
        let b = BitmapIm2col::new();
        assert_eq!(b.lower(&b.encode(&input), &shape), DenseIm2col::new().lower(&input, &shape));
    }

    #[test]
    fn lower_encoded_roundtrips_to_the_same_matrix() {
        let shape = ConvShape::square(8, 2, 2, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.6, 23);
        let b = BitmapIm2col::new();
        let enc = b.encode(&input);
        let condensed = b.lower_encoded(&enc, &shape);
        assert_eq!(condensed.decode(), b.lower(&enc, &shape));
        assert_eq!(condensed.layout(), VectorLayout::ColumnMajor);
    }

    #[test]
    fn implicit_cost_has_no_dram_traffic_and_uses_popc() {
        let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 24);
        let b = BitmapIm2col::new();
        let cost = b.implicit_cost(&b.encode(&input), &shape);
        assert_eq!(cost.dram_bytes_read, 0);
        assert_eq!(cost.dram_bytes_written, 0);
        assert!(cost.popc_ops > 0);
    }

    #[test]
    fn bitmap_cost_sits_between_dense_and_csr() {
        use crate::im2col::csr::CsrIm2col;
        let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
        let input = FeatureMap::random_sparse(&shape, 0.5, 25);
        let bitmap = BitmapIm2col::new();
        let csr = CsrIm2col::new();
        let bitmap_ops = bitmap.explicit_cost(&bitmap.encode(&input), &shape).scalar_ops;
        let csr_ops = csr.explicit_cost(&csr.encode(&input), &shape).scalar_ops;
        let dense_ops = DenseIm2col::new().explicit_cost(&shape).scalar_ops;
        assert!(bitmap_ops < csr_ops, "bitmap {bitmap_ops} should beat CSR {csr_ops}");
        assert!(bitmap_ops < dense_ops * 2, "bitmap {bitmap_ops} vs dense {dense_ops}");
    }

    #[test]
    fn cost_shrinks_as_sparsity_grows() {
        let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
        let b = BitmapIm2col::new();
        let dense_in = FeatureMap::random_sparse(&shape, 0.0, 26);
        let sparse_in = FeatureMap::random_sparse(&shape, 0.99, 26);
        let c_dense = b.explicit_cost(&b.encode(&dense_in), &shape);
        let c_sparse = b.explicit_cost(&b.encode(&sparse_in), &shape);
        assert!(c_sparse.scalar_ops < c_dense.scalar_ops);
        assert!(c_sparse.dram_bytes_written < c_dense.dram_bytes_written);
    }

    #[test]
    fn prefix_popcount_counts_before_position() {
        let words = [0b1011u64, 0b1];
        assert_eq!(prefix_popcount(&words, 0), 0);
        assert_eq!(prefix_popcount(&words, 1), 1);
        assert_eq!(prefix_popcount(&words, 2), 2);
        assert_eq!(prefix_popcount(&words, 4), 3);
        assert_eq!(prefix_popcount(&words, 64), 3);
        assert_eq!(prefix_popcount(&words, 65), 4);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let shape = ConvShape::square(8, 2, 1, 3, 1, 1);
        let input = FeatureMap::zeros(1, 8, 8);
        let b = BitmapIm2col::new();
        let _ = b.lower(&b.encode(&input), &shape);
    }
}
