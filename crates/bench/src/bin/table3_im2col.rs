//! Regenerates **Table III**: normalised im2col time of the dense, CSR and
//! bitmap encodings on the ResNet-18 convolution layer (feature map 56x56,
//! 3x3 filter, 128 in/out channels) across feature-map sparsity ratios.
//!
//! Like the paper's Table III (measured on the PyTorch ATen CPU kernels),
//! this is a *software* micro-benchmark: the three Rust implementations are
//! timed directly and normalised to the dense case.
//!
//! Run with `cargo run --release -p dsstc-bench --bin table3_im2col`.

use dsstc_bench::time_min_ms;
use dsstc_kernels::im2col::{BitmapIm2col, CsrIm2col, DenseIm2col};
use dsstc_models::activation_feature_map;
use dsstc_tensor::ConvShape;

fn main() {
    // Table III's layer: H/W = 56, filter 3x3, 128 channels in and out.
    let shape = ConvShape::square(56, 128, 128, 3, 1, 1);
    let sparsities = [0.0, 0.25, 0.50, 0.75, 0.99, 0.999];
    let repeats = 3;

    println!("Table III: normalised im2col time (ResNet-18 layer: 56x56, 3x3, 128 channels)");
    println!("{:<18}{:>12}{:>12}{:>12}", "Sparsity (%)", "Dense", "CSR", "Bitmap");

    for &sparsity in &sparsities {
        let input = activation_feature_map(&shape, sparsity, 42);

        let dense = DenseIm2col::new();
        let dense_ms = time_min_ms(repeats, || {
            std::hint::black_box(dense.lower(&input, &shape));
        });

        let csr = CsrIm2col::new();
        let csr_encoded = csr.encode(&input);
        let csr_ms = time_min_ms(repeats, || {
            std::hint::black_box(csr.lower(&csr_encoded, &shape));
        });

        let bitmap = BitmapIm2col::new();
        let bitmap_encoded = bitmap.encode(&input);
        let bitmap_ms = time_min_ms(repeats, || {
            std::hint::black_box(bitmap.lower(&bitmap_encoded, &shape));
        });

        println!(
            "{:<18}{:>12.2}{:>12.2}{:>12.2}",
            format!("{:.1}", sparsity * 100.0),
            1.0,
            csr_ms / dense_ms,
            bitmap_ms / dense_ms,
        );
    }
    println!();
    println!(
        "(paper Table III reference: CSR 101.3 / 45.2 / 1.2 and Bitmap 8.31 / 4.73 / 1.1 at 0% / 50% / 99.9%)"
    );
}
