//! The consistent-hash ring assigning [`crate::ModelKey`]s to nodes.
//!
//! Each member node contributes `vnodes` **virtual nodes**: points on a
//! `u64` circle at `fnv1a(seed ‖ node_id ‖ vnode_index)`. A key lives at
//! `fnv1a` of its filesystem-safe shard string (the same
//! [`crate::ModelId::slug`] + sparsity-permille identity the encode store
//! names artifacts with), and is owned by the first virtual node at or
//! clockwise after it; replicas keep walking clockwise collecting the next
//! *distinct* nodes. The construction is fully determined by
//! `(members, vnodes, seed)`, so every node and every client that agree on
//! a [`super::ShardMap`] agree on every routing decision without further
//! coordination.
//!
//! The two properties serving cares about are property-tested below:
//! **balance** (with enough virtual nodes no member owns a pathological
//! share of the key space) and **minimal disruption** (adding a member
//! moves a key only *to* that member — never between survivors — so a
//! membership change remaps ~K/N of K keys, not all of them).

use dsstc_formats::serialize::fnv1a;

use crate::request::ModelKey;

/// A seeded consistent-hash ring over `u16` node ids.
#[derive(Clone, Debug, Default)]
pub struct HashRing {
    /// Virtual nodes, sorted by ring position: `(point, node_id)`.
    points: Vec<(u64, u16)>,
    /// Distinct member count (bounds how many replicas a walk can find).
    members: usize,
}

impl HashRing {
    /// Builds the ring for `members` with `vnodes` virtual nodes per
    /// member under `seed`. An empty member list yields an empty ring
    /// (every lookup returns no replicas).
    pub fn build(members: &[u16], vnodes: usize, seed: u64) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for &node in members {
            for index in 0..vnodes {
                points.push((vnode_point(seed, node, index as u32), node));
            }
        }
        // Ties (astronomically unlikely with 64-bit points, but the ring
        // must stay deterministic even then) break on node id.
        points.sort_unstable();
        let mut distinct: Vec<u16> = members.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        HashRing { points, members: distinct.len() }
    }

    /// Number of distinct member nodes.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// The first `replicas` distinct nodes clockwise from `hash`: the
    /// shard's **replica group**, primary first. Returns fewer when the
    /// ring has fewer distinct members.
    pub fn replicas(&self, hash: u64, replicas: usize) -> Vec<u16> {
        let want = replicas.min(self.members);
        let mut owners: Vec<u16> = Vec::with_capacity(want);
        if want == 0 {
            return owners;
        }
        let start = self.points.partition_point(|&(point, _)| point < hash);
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !owners.contains(&node) {
                owners.push(node);
                if owners.len() == want {
                    break;
                }
            }
        }
        owners
    }

    /// The primary owner of `hash`, if the ring has any member.
    pub fn primary(&self, hash: u64) -> Option<u16> {
        self.replicas(hash, 1).first().copied()
    }
}

/// The ring position of one virtual node.
fn vnode_point(seed: u64, node: u16, index: u32) -> u64 {
    let mut bytes = [0u8; 14];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..10].copy_from_slice(&node.to_le_bytes());
    bytes[10..].copy_from_slice(&index.to_le_bytes());
    fnv1a(&bytes)
}

/// The stable shard hash of a model key: FNV-1a over the same
/// filesystem-safe identity the encode store names artifacts with
/// (`<slug>-s<permille>`, `snone` for the published table), so the wire
/// routing key and the on-disk artifact identity can never drift apart.
pub fn shard_hash(key: &ModelKey) -> u64 {
    fnv1a(shard_string(key).as_bytes())
}

/// The human-readable shard identity behind [`shard_hash`].
pub fn shard_string(key: &ModelKey) -> String {
    match key.sparsity_permille {
        Some(permille) => format!("{}-s{permille}", key.model.slug()),
        None => format!("{}-snone", key.model.slug()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use proptest::prelude::*;

    fn key_hashes(count: u64) -> Vec<u64> {
        (0..count).map(|i| fnv1a(format!("key-{i}").as_bytes())).collect()
    }

    #[test]
    fn ring_is_deterministic_and_seed_sensitive() {
        let a = HashRing::build(&[0, 1, 2], 64, 7);
        let b = HashRing::build(&[0, 1, 2], 64, 7);
        let c = HashRing::build(&[0, 1, 2], 64, 8);
        let hashes = key_hashes(64);
        let owners = |ring: &HashRing| -> Vec<Option<u16>> {
            hashes.iter().map(|&h| ring.primary(h)).collect()
        };
        assert_eq!(owners(&a), owners(&b), "same (members, vnodes, seed) = same routing");
        assert_ne!(owners(&a), owners(&c), "the seed perturbs the whole ring");
    }

    #[test]
    fn empty_ring_owns_nothing_and_walks_return_distinct_nodes() {
        let empty = HashRing::build(&[], 64, 1);
        assert!(empty.is_empty());
        assert_eq!(empty.replicas(42, 3), Vec::<u16>::new());
        assert_eq!(empty.primary(42), None);

        let ring = HashRing::build(&[5, 9, 13], 32, 1);
        assert_eq!(ring.len(), 3);
        for &hash in &key_hashes(32) {
            let owners = ring.replicas(hash, 2);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1], "replica groups hold distinct nodes");
            // Asking for more replicas than members caps at the member count.
            assert_eq!(ring.replicas(hash, 16).len(), 3);
        }
    }

    #[test]
    fn shard_hash_matches_the_fs_safe_identity() {
        let published = ModelKey::new(ModelId::BertBase, None);
        let pruned = ModelKey::new(ModelId::BertBase, Some(0.9));
        assert_eq!(shard_string(&published), "bertbase-snone");
        assert_eq!(shard_string(&pruned), "bertbase-s900");
        assert_ne!(shard_hash(&published), shard_hash(&pruned));
        assert_eq!(shard_hash(&pruned), fnv1a(b"bertbase-s900"));
    }

    #[test]
    fn virtual_nodes_balance_the_key_space() {
        // 128 vnodes keep per-node shares within a small factor of the
        // mean; the bound below is loose enough to be deterministic-safe
        // (consistent-hashing share stddev ~ 1/sqrt(vnodes) ≈ 9%).
        let members: Vec<u16> = (0..8).collect();
        let ring = HashRing::build(&members, 128, 3);
        let hashes = key_hashes(8192);
        let mut counts = [0usize; 8];
        for &hash in &hashes {
            counts[ring.primary(hash).expect("non-empty ring") as usize] += 1;
        }
        let mean = hashes.len() / members.len();
        for (node, &count) in counts.iter().enumerate() {
            assert!(
                count > mean / 3 && count < mean * 3,
                "node {node} owns {count} of {} keys (mean {mean})",
                hashes.len()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Adding a member moves a key only *to* that member: survivors
        /// never trade keys among themselves. This is the structural form
        /// of the minimal-disruption property — the moved count below is
        /// its corollary.
        #[test]
        fn membership_growth_only_moves_keys_to_the_new_node(
            seed in proptest::any::<u64>(),
            existing in 1usize..=7,
            new_node in 8u16..=15,
        ) {
            let members: Vec<u16> = (0..existing as u16).collect();
            let before = HashRing::build(&members, 64, seed);
            let mut grown = members.clone();
            grown.push(new_node);
            let after = HashRing::build(&grown, 64, seed);
            for &hash in &key_hashes(256) {
                let old = before.primary(hash).expect("non-empty");
                let new = after.primary(hash).expect("non-empty");
                prop_assert!(
                    new == old || new == new_node,
                    "key {hash:#x} moved {old} -> {new}, not to the new node {new_node}"
                );
            }
        }

        /// A membership change remaps ~K/N of K keys, not all of them:
        /// the moved share stays within a small multiple of the fair
        /// 1/(N+1) share (plus slack for hashing variance).
        #[test]
        fn membership_growth_remaps_about_k_over_n_keys(
            seed in proptest::any::<u64>(),
            existing in 1usize..=7,
        ) {
            let members: Vec<u16> = (0..existing as u16).collect();
            let before = HashRing::build(&members, 64, seed);
            let mut grown = members.clone();
            grown.push(99);
            let after = HashRing::build(&grown, 64, seed);
            let hashes = key_hashes(512);
            let moved = hashes
                .iter()
                .filter(|&&h| before.primary(h) != after.primary(h))
                .count();
            let fair = hashes.len() / (existing + 1);
            let bound = fair * 3 + 32;
            prop_assert!(
                moved <= bound,
                "{moved} of {} keys remapped; fair share is {fair} (bound {bound})",
                hashes.len()
            );
        }

        /// Replica walks always return the requested distinct count (capped
        /// by membership) and the primary is the walk's first element.
        #[test]
        fn replica_walks_are_distinct_and_primary_prefixed(
            seed in proptest::any::<u64>(),
            members in 1usize..=9,
            replicas in 1usize..=4,
            probe in proptest::any::<u64>(),
        ) {
            let ids: Vec<u16> = (0..members as u16).map(|i| i * 3 + 1).collect();
            let ring = HashRing::build(&ids, 48, seed);
            let group = ring.replicas(probe, replicas);
            prop_assert_eq!(group.len(), replicas.min(members));
            let mut unique = group.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(unique.len(), group.len(), "replica group repeats a node");
            prop_assert_eq!(ring.primary(probe), group.first().copied());
        }
    }
}
