//! Modelled GPU latency of a batched network execution.
//!
//! Responses report the dual-side sparse Tensor Core time of the **real**
//! network (not the functional proxy) at the executing batch's size: every
//! layer's lowered GEMM has its M dimension scaled by the number of
//! batched requests and is charged through the same synthetic-profile path
//! `dsstc::InferenceEstimator` uses. Because the profile is deterministic
//! for a `(model, sparsity, batch)` triple, results are memoised — the
//! latency cache sits next to the encode cache as the second artifact the
//! serving layer amortises across requests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dsstc_kernels::bitmap_spgemm::{BitmapSpGemm, SyntheticGemmSpec};
use dsstc_models::Network;
use dsstc_sim::{GpuConfig, GpuTimingModel};
use dsstc_tensor::GemmShape;

use crate::repository::EncodedModel;
use crate::request::ModelKey;

/// How many M-dimension warp-tile rows each layer's synthetic profile
/// samples. 64 rows keep the per-batch-size pricing under a millisecond per
/// layer while staying within a few percent of the exact profile (the
/// per-tile statistics are i.i.d. across rows).
const M_SAMPLE_TILES: usize = 64;

/// Estimates (and memoises) the modelled time of batched network runs.
#[derive(Debug)]
pub struct BatchTimingModel {
    kernel: BitmapSpGemm,
    model: GpuTimingModel,
    cache: Mutex<HashMap<(ModelKey, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BatchTimingModel {
    /// Creates the model for one GPU configuration. Batches are priced on
    /// the device's **native** kernel tiling
    /// ([`GpuConfig::native_tiling`]) — the same tiling the device's
    /// encoded weights follow.
    pub fn new(gpu: GpuConfig) -> Self {
        BatchTimingModel {
            kernel: BitmapSpGemm::for_device(gpu.clone()),
            model: GpuTimingModel::new(gpu),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Modelled dual-side time, in µs, of running `model`'s real network at
    /// batch size `batch` (each layer's lowered-GEMM M dimension scales with
    /// the batch).
    ///
    /// Batch sizes are **bucketed to the next power of two** for pricing —
    /// the profile is computed at the bucket size and interpolated linearly
    /// down to `batch` — so a server only ever prices
    /// `log2(max_batch) + 1` distinct shapes per model and the cache
    /// converges after the first few batches regardless of traffic shape.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn batched_us(&self, model: &EncodedModel, batch: usize) -> f64 {
        self.batched_us_for(model.key, &model.network, batch)
    }

    /// Like [`Self::batched_us`], but priced from the key's layer table
    /// alone — no encoded weights required, so the dispatcher can price a
    /// cold model without paying (or waiting on) its prune+encode.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn batched_us_for(&self, key: ModelKey, network: &Network, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be non-empty");
        let bucket = batch.next_power_of_two();
        let bucket_us = self.bucket_us(key, network, bucket);
        bucket_us * batch as f64 / bucket as f64
    }

    /// Cache-only lookup: the modelled batched time if this `(key, batch)`
    /// bucket is already priced, `None` otherwise (no profiling is
    /// performed). Lets the dispatcher skip building the layer table
    /// entirely on the steady-state hot path.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn cached_batched_us(&self, key: ModelKey, batch: usize) -> Option<f64> {
        assert!(batch > 0, "batch must be non-empty");
        let bucket = batch.next_power_of_two();
        let us = *self.cache.lock().expect("timing mutex poisoned").get(&(key, bucket))?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(us * batch as f64 / bucket as f64)
    }

    /// Prices one power-of-two bucket, memoised.
    fn bucket_us(&self, key: ModelKey, network: &Network, bucket: usize) -> f64 {
        let cache_key = (key, bucket);
        if let Some(&us) = self.cache.lock().expect("timing mutex poisoned").get(&cache_key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return us;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut total = 0.0;
        for (i, layer) in network.layers().iter().enumerate() {
            let base = layer.kind.lowered_gemm();
            let shape = GemmShape::new(base.m * bucket, base.n, base.k);
            let spec = SyntheticGemmSpec::oriented(
                shape,
                layer.activation_sparsity,
                layer.weight_sparsity,
                None,
                None,
                timing_seed(key, i, bucket),
            );
            let (profile, _) = self.kernel.profile_synthetic_capped(&spec, M_SAMPLE_TILES);
            total += self.model.estimate(&profile).time_us();
        }
        self.cache.lock().expect("timing mutex poisoned").insert(cache_key, total);
        total
    }

    /// Pre-prices every power-of-two bucket up to `max_batch` so no request
    /// pays a pricing miss (used by server warm-up).
    pub fn warm(&self, model: &EncodedModel, max_batch: usize) {
        let mut bucket = 1;
        loop {
            let _ = self.bucket_us(model.key, &model.network, bucket);
            if bucket >= max_batch {
                break;
            }
            bucket *= 2;
        }
    }

    /// Latency-cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Latency-cache misses so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hit_count();
        let total = hits + self.miss_count();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Deterministic seed for a layer's synthetic profile at one batch size.
fn timing_seed(key: ModelKey, layer_index: usize, batch: usize) -> u64 {
    let mut seed: u64 = 0xBA7C_4ED0;
    for b in key.model.name().bytes() {
        seed = seed.rotate_left(5) ^ u64::from(b).wrapping_mul(0x9E37_79B9);
    }
    seed ^ ((layer_index as u64) << 32)
        ^ ((batch as u64) << 16)
        ^ u64::from(key.sparsity_permille.map_or(0xFFFF, |p| p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::ModelRepository;
    use crate::request::{ModelId, ModelKey};

    fn bert() -> (ModelRepository, BatchTimingModel) {
        (ModelRepository::new(GpuConfig::v100(), 32), BatchTimingModel::new(GpuConfig::v100()))
    }

    #[test]
    fn batched_time_grows_sublinearly_with_batch() {
        let (repo, timing) = bert();
        let m = repo.get(ModelKey::new(ModelId::BertBase, None));
        let one = timing.batched_us(&m, 1);
        let four = timing.batched_us(&m, 4);
        assert!(one > 0.0);
        assert!(four > one, "batch 4 ({four}) should cost more than batch 1 ({one})");
        // Batching amortises weight traffic: 4x the work costs < 4x the time.
        assert!(four < one * 4.0, "batch 4 ({four}) vs 4 x batch 1 ({one})");
    }

    #[test]
    fn repeated_lookups_hit_the_cache_and_agree() {
        let (repo, timing) = bert();
        let m = repo.get(ModelKey::new(ModelId::BertBase, None));
        let a = timing.batched_us(&m, 2);
        let b = timing.batched_us(&m, 2);
        assert_eq!(a, b);
        assert_eq!((timing.hit_count(), timing.miss_count()), (1, 1));
        assert!((timing.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_power_of_two_batches_share_their_bucket() {
        let (repo, timing) = bert();
        let m = repo.get(ModelKey::new(ModelId::BertBase, None));
        let five = timing.batched_us(&m, 5);
        let eight = timing.batched_us(&m, 8);
        // 5 is priced off the 8-bucket (one miss total) and interpolated.
        assert_eq!(timing.miss_count(), 1);
        assert!((five - eight * 5.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn warm_prices_every_bucket_up_front() {
        let (repo, timing) = bert();
        let m = repo.get(ModelKey::new(ModelId::BertBase, None));
        timing.warm(&m, 8);
        assert_eq!(timing.miss_count(), 4); // buckets 1, 2, 4, 8
        for batch in 1..=8 {
            let _ = timing.batched_us(&m, batch);
        }
        assert_eq!(timing.miss_count(), 4, "warmed buckets absorb all traffic");
    }

    #[test]
    fn cached_lookup_hits_only_after_pricing() {
        let (_, timing) = bert();
        let key = ModelKey::new(ModelId::BertBase, None);
        assert_eq!(timing.cached_batched_us(key, 3), None);
        assert_eq!(timing.hit_count(), 0, "a cache-only miss is not counted");
        let priced = timing.batched_us_for(key, &key.network(), 3);
        let cached = timing.cached_batched_us(key, 3).expect("bucket now priced");
        assert_eq!(priced, cached);
        assert_eq!((timing.hit_count(), timing.miss_count()), (1, 1));
    }

    #[test]
    fn key_only_pricing_agrees_with_encoded_model_pricing() {
        let (repo, timing) = bert();
        let key = ModelKey::new(ModelId::BertBase, Some(0.9));
        // Price from the layer table alone (no encoded weights)...
        let from_key = timing.batched_us_for(key, &key.network(), 4);
        assert_eq!(timing.miss_count(), 1);
        // ...then through the encoded model: same cache entry, same value.
        let m = repo.get(key);
        let from_model = timing.batched_us(&m, 4);
        assert_eq!(from_key, from_model);
        assert_eq!((timing.hit_count(), timing.miss_count()), (1, 1));
    }

    #[test]
    fn sparser_weights_run_faster() {
        let (repo, timing) = bert();
        let dense_ish = repo.get(ModelKey::new(ModelId::RnnLm, Some(0.5)));
        let sparse = repo.get(ModelKey::new(ModelId::RnnLm, Some(0.95)));
        assert!(timing.batched_us(&sparse, 2) < timing.batched_us(&dense_ish, 2));
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn zero_batch_panics() {
        let (repo, timing) = bert();
        let m = repo.get(ModelKey::new(ModelId::BertBase, None));
        let _ = timing.batched_us(&m, 0);
    }
}
