//! Dense im2col — the baseline of Table III and the lowering used by the
//! dense convolution schemes.
//!
//! The explicit variant materialises the full lowered matrix (paying the
//! `K*K`-fold data expansion in memory); the implicit variant only pays the
//! address-conversion arithmetic because the GEMM reads the original feature
//! map through the cache hierarchy (cuDNN's approach).

use dsstc_tensor::{ConvShape, FeatureMap, Matrix};

use super::Im2colCost;

/// Dense im2col lowering.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseIm2col;

impl DenseIm2col {
    /// Creates the lowering.
    pub fn new() -> Self {
        DenseIm2col
    }

    /// Produces the lowered matrix (`out_h*out_w x K*K*C`).
    ///
    /// # Panics
    /// Panics if the feature map does not match `shape`.
    pub fn lower(&self, input: &FeatureMap, shape: &ConvShape) -> Matrix {
        assert_eq!(
            (input.channels(), input.height(), input.width()),
            (shape.c, shape.h, shape.w),
            "input does not match the convolution shape"
        );
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = Matrix::zeros(oh * ow, shape.k * shape.k * shape.c);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                for c in 0..shape.c {
                    for ky in 0..shape.k {
                        for kx in 0..shape.k {
                            let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                            let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                            let v = input.get_padded(c, iy, ix);
                            if v != 0.0 {
                                out[(row, (c * shape.k + ky) * shape.k + kx)] = v;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Cost of the explicit lowering: every lowered element is read from the
    /// feature map and written back to DRAM.
    pub fn explicit_cost(&self, shape: &ConvShape) -> Im2colCost {
        let lowered = shape.lowered_elements();
        Im2colCost {
            scalar_ops: 2 * lowered,
            popc_ops: 0,
            dram_bytes_read: shape.input_elements() * 2,
            dram_bytes_written: lowered * 2,
        }
    }

    /// Cost of the implicit lowering: only the fused address conversion per
    /// lowered element; no data is materialised.
    pub fn implicit_cost(&self, shape: &ConvShape) -> Im2colCost {
        Im2colCost {
            scalar_ops: shape.lowered_elements(),
            popc_ops: 0,
            dram_bytes_read: 0,
            dram_bytes_written: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::Matrix as M;

    fn paper_input() -> FeatureMap {
        FeatureMap::from_channels(&[M::from_rows(&[
            &[0.0, 4.0, 0.0, 2.0, 3.0, 0.0],
            &[0.0, 0.0, 5.0, 0.0, 0.0, 2.0],
            &[6.0, 0.0, 0.0, 0.0, 3.0, 0.0],
        ])])
    }

    #[test]
    fn paper_figure10_lowered_shape() {
        // 3x6 input, 3x3 kernel, no padding: 1x4 output positions, 9-wide
        // rows (paper Fig. 10a shows the 4x9 lowered feature map).
        let shape = ConvShape::new(3, 6, 1, 1, 3, 1, 0);
        let lowered = DenseIm2col::new().lower(&paper_input(), &shape);
        assert_eq!(lowered.rows(), 4);
        assert_eq!(lowered.cols(), 9);
        // First lowered row is the first 3x3 window, row-major:
        // [0 4 0 | 0 0 5 | 6 0 0].
        assert_eq!(lowered.row(0), &[0.0, 4.0, 0.0, 0.0, 0.0, 5.0, 6.0, 0.0, 0.0]);
        // Second window shifts by one column.
        assert_eq!(lowered.row(1), &[4.0, 0.0, 2.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn lowering_preserves_nonzero_count_for_interior_windows() {
        // With no padding and stride 1 every input pixel of the middle
        // column region appears in K*K windows; simply check the lowered
        // matrix against direct window extraction.
        let shape = ConvShape::new(3, 6, 1, 1, 3, 1, 0);
        let input = paper_input();
        let lowered = DenseIm2col::new().lower(&input, &shape);
        for (row, ox) in (0..4).enumerate() {
            for ky in 0..3 {
                for kx in 0..3 {
                    assert_eq!(
                        lowered[(row, ky * 3 + kx)],
                        input.get(0, ky, ox + kx),
                        "window {row} ({ky},{kx})"
                    );
                }
            }
        }
    }

    #[test]
    fn padding_produces_zero_border_entries() {
        let shape = ConvShape::square(4, 1, 1, 3, 1, 1);
        let mut input = FeatureMap::zeros(1, 4, 4);
        input.set(0, 0, 0, 9.0);
        let lowered = DenseIm2col::new().lower(&input, &shape);
        assert_eq!(lowered.rows(), 16);
        // Output pixel (0,0): the window's centre is (0,0) so the input
        // value appears at kernel position (1,1).
        #[allow(clippy::identity_op)] // written as ky * k + kx for clarity
        let centre = 1 * 3 + 1;
        assert_eq!(lowered[(0, centre)], 9.0);
        // Kernel position (0,0) falls outside the image: zero.
        assert_eq!(lowered[(0, 0)], 0.0);
    }

    #[test]
    fn explicit_cost_includes_expansion_writeback() {
        let shape = ConvShape::square(56, 128, 128, 3, 1, 1);
        let c = DenseIm2col::new().explicit_cost(&shape);
        assert_eq!(c.dram_bytes_written, shape.lowered_elements() * 2);
        assert!(c.dram_bytes_written > 8 * c.dram_bytes_read / 2);
        let i = DenseIm2col::new().implicit_cost(&shape);
        assert_eq!(i.dram_bytes_written, 0);
        assert!(i.scalar_ops < c.scalar_ops);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let shape = ConvShape::square(8, 2, 1, 3, 1, 1);
        let input = FeatureMap::zeros(1, 8, 8);
        let _ = DenseIm2col::new().lower(&input, &shape);
    }
}
