//! The hierarchical two-level bitmap encoding (paper Fig. 9).
//!
//! The matrix is partitioned into warp tiles (`TM x TK` for the A operand,
//! `TK x TN` for B). The **warp-bitmap** holds one bit per tile — a `0`
//! means the whole tile is empty so the corresponding warp-level SpGEMM step
//! can be skipped outright. Each non-empty tile stores its own
//! **element-bitmap** plus condensed values, so every non-zero of a partial
//! matrix produced from that tile lands inside the Tensor Core's local
//! accumulation buffer rather than scattering across global memory
//! (Fig. 8b).

use dsstc_tensor::Matrix;

use crate::bit_matrix::BitMatrix;
use crate::bitmap::{BitmapMatrix, VectorLayout};
use crate::StorageFootprint;

/// A sparse matrix in two-level (warp-bitmap + element-bitmap) encoding.
///
/// # Example
/// ```
/// use dsstc_tensor::{Matrix, SparsityPattern};
/// use dsstc_formats::{TwoLevelBitmapMatrix, VectorLayout};
///
/// let dense = Matrix::random_sparse(64, 64, 0.95, SparsityPattern::BlockUneven, 3);
/// let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
/// assert_eq!(enc.decode(), dense);
/// // With block-uneven sparsity some warp tiles are usually empty.
/// assert!(enc.empty_tiles() <= enc.tile_count());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TwoLevelBitmapMatrix {
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    layout: VectorLayout,
    /// One bit per warp tile; set = tile contains at least one non-zero.
    warp_bitmap: BitMatrix,
    /// Element-level encodings for non-empty tiles only, in row-major tile
    /// order. `tile_index[t]` gives the position in `tiles` (or `None`).
    tiles: Vec<BitmapMatrix>,
    tile_index: Vec<Option<usize>>,
}

impl TwoLevelBitmapMatrix {
    /// Encodes a dense matrix using `tile_rows x tile_cols` warp tiles.
    ///
    /// # Panics
    /// Panics if either tile dimension is zero.
    pub fn encode(
        dense: &Matrix,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
    ) -> Self {
        Self::encode_impl(dense, tile_rows, tile_cols, layout, false)
    }

    /// Encodes a dense matrix with FP16 value rounding fused into the tile
    /// encoder: bit-identical to `encode(&dense.to_f16_precision(), ..)`
    /// without materialising the rounded matrix. This is the per-batch
    /// encode the serve hot path pays, so the whole-matrix rounding pass it
    /// removes is measured in `BENCH_kernels.json`'s `serve_hot_path` cell.
    ///
    /// # Panics
    /// Panics if either tile dimension is zero.
    pub fn encode_f16(
        dense: &Matrix,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
    ) -> Self {
        Self::encode_impl(dense, tile_rows, tile_cols, layout, true)
    }

    fn encode_impl(
        dense: &Matrix,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
        round_f16: bool,
    ) -> Self {
        assert!(tile_rows > 0 && tile_cols > 0, "tile dimensions must be non-zero");
        let rows = dense.rows();
        let cols = dense.cols();
        let grid_rows = rows.div_ceil(tile_rows);
        let grid_cols = cols.div_ceil(tile_cols);
        let mut warp_bitmap = BitMatrix::new(grid_rows, grid_cols);
        let mut tiles = Vec::new();
        let mut tile_index = vec![None; grid_rows * grid_cols];
        for tr in 0..grid_rows {
            for tc in 0..grid_cols {
                // Encode straight out of the parent rows; no dense tile is
                // materialised (see `BitmapMatrix::encode_tile`).
                let encode_tile = if round_f16 {
                    BitmapMatrix::encode_tile_f16
                } else {
                    BitmapMatrix::encode_tile
                };
                let tile = encode_tile(
                    dense,
                    tr * tile_rows,
                    tc * tile_cols,
                    tile_rows,
                    tile_cols,
                    layout,
                );
                if tile.nnz() > 0 {
                    warp_bitmap.set(tr, tc, true);
                    tile_index[tr * grid_cols + tc] = Some(tiles.len());
                    tiles.push(tile);
                }
            }
        }
        TwoLevelBitmapMatrix {
            rows,
            cols,
            tile_rows,
            tile_cols,
            layout,
            warp_bitmap,
            tiles,
            tile_index,
        }
    }

    /// Logical (dense) row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical (dense) column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Warp-tile height.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Warp-tile width.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// The condensed-vector layout of the per-tile encodings.
    pub fn layout(&self) -> VectorLayout {
        self.layout
    }

    /// Number of tile rows in the warp-bitmap grid.
    pub fn grid_rows(&self) -> usize {
        self.warp_bitmap.rows()
    }

    /// Number of tile columns in the warp-bitmap grid.
    pub fn grid_cols(&self) -> usize {
        self.warp_bitmap.cols()
    }

    /// Total number of warp tiles.
    pub fn tile_count(&self) -> usize {
        self.grid_rows() * self.grid_cols()
    }

    /// Number of warp tiles with no non-zeros (skippable as a whole).
    pub fn empty_tiles(&self) -> usize {
        self.tile_count() - self.tiles.len()
    }

    /// The warp-level bitmap (one bit per tile).
    pub fn warp_bitmap(&self) -> &BitMatrix {
        &self.warp_bitmap
    }

    /// The element-level encoding of tile `(tile_row, tile_col)`, or `None`
    /// if that tile is empty.
    ///
    /// # Panics
    /// Panics if the tile coordinates are outside the grid.
    pub fn tile(&self, tile_row: usize, tile_col: usize) -> Option<&BitmapMatrix> {
        assert!(
            tile_row < self.grid_rows() && tile_col < self.grid_cols(),
            "tile index out of bounds"
        );
        self.tile_index[tile_row * self.grid_cols() + tile_col].map(|i| &self.tiles[i])
    }

    /// Total number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.tiles.iter().map(BitmapMatrix::nnz).sum()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for tr in 0..self.grid_rows() {
            for tc in 0..self.grid_cols() {
                if let Some(tile) = self.tile(tr, tc) {
                    let dense_tile = tile.decode();
                    // set_tile clips to bounds, trimming tile padding.
                    m.set_tile(tr * self.tile_rows, tc * self.tile_cols, &dense_tile);
                }
            }
        }
        m
    }

    /// Rebuilds an encoding from its warp bitmap and the non-empty tiles in
    /// row-major set-bit order (the serialiser's constructor). The tile
    /// index is recomputed from the warp bitmap; fails on any
    /// inconsistency between the grid, the bitmap and the tiles.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        tile_rows: usize,
        tile_cols: usize,
        layout: VectorLayout,
        warp_bitmap: BitMatrix,
        tiles: Vec<BitmapMatrix>,
    ) -> Result<Self, &'static str> {
        if rows == 0 || cols == 0 {
            return Err("matrix dimensions must be non-zero");
        }
        if tile_rows == 0 || tile_cols == 0 {
            return Err("tile dimensions must be non-zero");
        }
        let grid_rows = rows.div_ceil(tile_rows);
        let grid_cols = cols.div_ceil(tile_cols);
        if (warp_bitmap.rows(), warp_bitmap.cols()) != (grid_rows, grid_cols) {
            return Err("warp bitmap does not match the tile grid");
        }
        if warp_bitmap.count_ones() != tiles.len() {
            return Err("tile count does not match the warp bitmap population");
        }
        let mut tile_index = vec![None; grid_rows * grid_cols];
        let mut next = 0usize;
        for tr in 0..grid_rows {
            for tc in 0..grid_cols {
                if !warp_bitmap.get(tr, tc) {
                    continue;
                }
                let tile = &tiles[next];
                if (tile.rows(), tile.cols()) != (tile_rows, tile_cols) {
                    return Err("tile shape does not match the declared tiling");
                }
                if tile.layout() != layout {
                    return Err("tile layout does not match the declared layout");
                }
                if tile.nnz() == 0 {
                    return Err("warp bitmap marks an empty tile as non-empty");
                }
                // Edge tiles are padded to the full tile shape; the padding
                // past the logical matrix bound must stay empty or nnz()
                // would disagree with decode().
                let valid_r = tile_rows.min(rows - tr * tile_rows);
                let valid_c = tile_cols.min(cols - tc * tile_cols);
                if valid_r < tile_rows || valid_c < tile_cols {
                    for r in 0..tile_rows {
                        for c in 0..tile_cols {
                            if (r >= valid_r || c >= valid_c) && tile.bitmap().get(r, c) {
                                return Err("tile has non-zeros past the matrix bound");
                            }
                        }
                    }
                }
                tile_index[tr * grid_cols + tc] = Some(next);
                next += 1;
            }
        }
        Ok(TwoLevelBitmapMatrix {
            rows,
            cols,
            tile_rows,
            tile_cols,
            layout,
            warp_bitmap,
            tiles,
            tile_index,
        })
    }

    /// The non-empty tiles in row-major set-bit order of the warp bitmap —
    /// exposed for the binary serialiser.
    pub(crate) fn tiles(&self) -> &[BitmapMatrix] {
        &self.tiles
    }

    /// Storage footprint: per-tile values and element bitmaps, plus the
    /// warp-bitmap (1 bit per tile, padded to words).
    pub fn storage(&self) -> StorageFootprint {
        let mut total =
            StorageFootprint { value_bytes: 0, metadata_bytes: self.warp_bitmap.storage_bytes() };
        for t in &self.tiles {
            let s = t.storage();
            total.value_bytes += s.value_bytes;
            total.metadata_bytes += s.metadata_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    #[test]
    fn encode_decode_roundtrip_exact_tiles() {
        let dense = Matrix::random_sparse(64, 96, 0.7, SparsityPattern::Uniform, 21);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
        assert_eq!(enc.grid_rows(), 2);
        assert_eq!(enc.grid_cols(), 3);
        assert_eq!(enc.decode(), dense);
        assert_eq!(enc.nnz(), dense.nnz());
    }

    #[test]
    fn encode_decode_roundtrip_ragged_tiles() {
        // 50x70 with 32x32 tiles: ragged right and bottom edges.
        let dense = Matrix::random_sparse(50, 70, 0.8, SparsityPattern::Uniform, 22);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::RowMajor);
        assert_eq!(enc.grid_rows(), 2);
        assert_eq!(enc.grid_cols(), 3);
        assert_eq!(enc.decode(), dense);
    }

    #[test]
    fn empty_tiles_are_skipped_in_storage() {
        // Only the top-left 16x16 corner is non-zero.
        let mut dense = Matrix::zeros(64, 64);
        for r in 0..16 {
            for c in 0..16 {
                dense[(r, c)] = 1.0;
            }
        }
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
        assert_eq!(enc.tile_count(), 4);
        assert_eq!(enc.empty_tiles(), 3);
        assert!(enc.warp_bitmap().get(0, 0));
        assert!(!enc.warp_bitmap().get(1, 1));
        assert!(enc.tile(1, 1).is_none());
        assert!(enc.tile(0, 0).is_some());
        // Storage only pays element bitmaps for the single non-empty tile.
        let one_tile_bitmap_bytes = 32 * 8; // 32 rows x 1 word
        assert_eq!(
            enc.storage().metadata_bytes,
            enc.warp_bitmap().storage_bytes() + one_tile_bitmap_bytes
        );
    }

    #[test]
    fn all_zero_matrix_has_all_empty_tiles() {
        let dense = Matrix::zeros(64, 64);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
        assert_eq!(enc.empty_tiles(), 4);
        assert_eq!(enc.nnz(), 0);
        assert_eq!(enc.decode(), dense);
        assert!((enc.sparsity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tile_encoding_matches_direct_tile_encode() {
        let dense = Matrix::random_sparse(64, 64, 0.5, SparsityPattern::Uniform, 30);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
        let direct = BitmapMatrix::encode(&dense.tile(32, 0, 32, 32), VectorLayout::ColumnMajor);
        assert_eq!(enc.tile(1, 0), Some(&direct));
    }

    #[test]
    fn fused_f16_encode_matches_rounding_then_encoding() {
        // Random values at mixed magnitudes, plus every boundary the fused
        // threshold has to get right: exactly 2^-24 (smallest FP16
        // subnormal, kept), just below (flushed to zero, bit must clear),
        // 2^-25 (flushed), negatives of each, signed zeros, values past the
        // FP16 normal range (round to inf, kept), and NaN (kept).
        let tiny = 2.0f32.powi(-24);
        let mut dense = Matrix::random_sparse(40, 24, 0.6, SparsityPattern::Uniform, 77);
        let specials: &[f32] = &[
            tiny,
            -tiny,
            f32::from_bits(tiny.to_bits() - 1),
            2.0f32.powi(-25),
            -2.0f32.powi(-25),
            0.0,
            -0.0,
            1.0e-7,
            70000.0,
            -70000.0,
            f32::NAN,
            1.5,
        ];
        for (i, &x) in specials.iter().enumerate() {
            dense[(i, 3)] = x;
        }
        for layout in [VectorLayout::ColumnMajor, VectorLayout::RowMajor] {
            let fused = TwoLevelBitmapMatrix::encode_f16(&dense, 16, 16, layout);
            let reference = TwoLevelBitmapMatrix::encode(&dense.to_f16_precision(), 16, 16, layout);
            // NaN breaks PartialEq on values; compare structure and bits.
            assert_eq!(fused.warp_bitmap(), reference.warp_bitmap(), "{layout:?}");
            for tr in 0..fused.grid_rows() {
                for tc in 0..fused.grid_cols() {
                    match (fused.tile(tr, tc), reference.tile(tr, tc)) {
                        (None, None) => {}
                        (Some(f), Some(r)) => {
                            assert_eq!(f.bitmap(), r.bitmap(), "tile ({tr},{tc}) {layout:?}");
                            assert_eq!(f.values().len(), r.values().len());
                            for (a, b) in f.values().iter().zip(r.values()) {
                                assert!(
                                    a == b || (a.is_nan() && b.is_nan()),
                                    "tile ({tr},{tc}) {layout:?}: {a} vs {b}"
                                );
                            }
                        }
                        _ => panic!("tile presence mismatch at ({tr},{tc}) {layout:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn block_uneven_distribution_produces_skippable_tiles_at_high_sparsity() {
        let dense = Matrix::random_sparse(256, 256, 0.99, SparsityPattern::BlockUneven, 5);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 32, 32, VectorLayout::ColumnMajor);
        // Not a strict guarantee, but at 99% sparsity with uneven blocks some
        // whole 32x32 tiles should be empty with overwhelming probability.
        assert!(enc.empty_tiles() > 0, "expected some empty warp tiles");
        assert_eq!(enc.decode(), dense);
    }

    #[test]
    #[should_panic(expected = "tile dimensions")]
    fn zero_tile_size_panics() {
        let dense = Matrix::zeros(4, 4);
        let _ = TwoLevelBitmapMatrix::encode(&dense, 0, 32, VectorLayout::ColumnMajor);
    }

    #[test]
    #[should_panic(expected = "tile index out of bounds")]
    fn tile_out_of_bounds_panics() {
        let dense = Matrix::zeros(4, 4);
        let enc = TwoLevelBitmapMatrix::encode(&dense, 4, 4, VectorLayout::ColumnMajor);
        let _ = enc.tile(1, 0);
    }
}
