//! Black-box tests of the serving runtime's contract: batching invariants,
//! encode-cache behaviour (both tiers), device-native encodings on a
//! heterogeneous pool, and exactly-once delivery under a multi-threaded
//! worker pool.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dsstc_serve::{
    DevicePool, DispatchPolicy, InferRequest, InferenceServer, ModelId, ModelKey, ModelRepository,
    Priority, ServeConfig,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

fn features(seed: u64) -> Matrix {
    Matrix::random_sparse(2, 32, 0.4, SparsityPattern::Uniform, seed)
}

fn config() -> ServeConfig {
    ServeConfig::default().with_proxy_dim(32).with_max_queue_wait(Duration::from_millis(2))
}

/// A unique, self-cleaning temp directory for encode-cache tests.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dsstc-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn two_device_pool_serves_device_native_encodings_bit_for_bit() {
    // A mixed V100 + A100 pool under round-robin dispatch: every response
    // must carry the encoding native to the device that executed it, and
    // its output must equal the single-device baseline of that device type
    // **bit for bit**.
    let pool = DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]);
    let inputs: Vec<Matrix> = (0..12).map(features).collect();

    // Single-device baselines, one per device type, batches of one.
    let mut baselines: Vec<Vec<Matrix>> = Vec::new();
    for gpu in pool.devices() {
        let server = InferenceServer::start(
            config().with_devices(DevicePool::homogeneous(gpu.clone(), 1)).with_max_batch(1),
        );
        baselines.push(
            inputs
                .iter()
                .map(|f| {
                    server
                        .infer(InferRequest::new(ModelId::ResNet18, f.clone()))
                        .expect("baseline response")
                        .output
                })
                .collect(),
        );
    }

    let server = InferenceServer::start(
        config()
            .with_devices(pool.clone())
            .with_max_batch(4)
            .with_dispatch(DispatchPolicy::RoundRobin),
    );
    let pending: Vec<_> = inputs
        .iter()
        .map(|f| server.submit(InferRequest::new(ModelId::ResNet18, f.clone())).expect("queued"))
        .collect();
    let mut devices_seen = HashSet::new();
    for (i, p) in pending.into_iter().enumerate() {
        let response = p.wait().expect("response");
        let device = response.device;
        devices_seen.insert(device);
        // The executed encoding's tiling matches the chosen device's native
        // kernel tiling.
        assert_eq!(
            response.encoding.tiling,
            pool.devices()[device].native_tiling(),
            "request {i} on device {device} ran a foreign encoding"
        );
        // Bit-for-bit equality with that device type's baseline (exact
        // float equality, not approx).
        assert_eq!(
            response.output, baselines[device][i],
            "request {i} on device {device} diverged from the single-device baseline"
        );
    }
    assert!(devices_seen.len() == 2, "round-robin must exercise both devices: {devices_seen:?}");
    let stats = server.stats();
    assert!(stats.per_device.iter().all(|d| d.batches > 0), "both devices executed batches");
}

#[test]
fn restart_with_populated_cache_dir_skips_prune_and_encode() {
    let dir = TempDir::new("warm-restart");
    let run = |expect_warm: bool| {
        let server = InferenceServer::start(
            config().with_workers(1).with_max_batch(2).with_encode_cache_dir(dir.path()),
        );
        let cold_ms = server.warm_model(ModelId::BertBase, None);
        for i in 0..4 {
            server.infer(InferRequest::new(ModelId::BertBase, features(i))).expect("response");
        }
        let stats = server.stats();
        if expect_warm {
            assert_eq!(stats.encode_fresh, 0, "a warm restart must not prune+encode");
            assert!(stats.encode_disk_loads >= 1, "the artifact must come from disk");
            assert!(stats.encode_disk_ms >= 0.0);
        } else {
            assert!(stats.encode_fresh >= 1, "the first run pays the encode");
            assert!(stats.encode_fresh_ms > 0.0);
        }
        cold_ms
    };
    let cold_ms = run(false);
    // "Restart": a new server process over the same cache directory. The
    // stats assertions inside `run` are the contract (0 fresh encodes,
    // >= 1 disk restore); the timing comparison is a sanity check kept
    // loose enough that disk jitter cannot flake it — the tight <= 10%
    // bound lives in `warm_restore_is_at_most_a_tenth_of_a_cold_encode`,
    // which measures best-of-several restores.
    let warm_ms = run(true);
    assert!(
        warm_ms < cold_ms,
        "disk restore ({warm_ms:.2} ms) should be under a fresh encode ({cold_ms:.2} ms)"
    );
}

#[test]
fn warm_restore_is_at_most_a_tenth_of_a_cold_encode() {
    // Repository-level cold/warm comparison on a heavy artifact (VGG-16 at
    // a 128-wide proxy: 16 layers of 128x128 prune+encode), where the
    // constant costs of either path are negligible.
    let dir = TempDir::new("cold-warm-ratio");
    let key = ModelKey::new(ModelId::Vgg16, None);
    let cold_repo = ModelRepository::new(GpuConfig::v100(), 128).with_disk_cache(dir.path());
    let cold = cold_repo.get(key);
    assert!(!cold.from_disk);
    // Best of three restores (each through a fresh repository, so the
    // disk-tier path runs every time): one transient I/O hiccup on a
    // loaded CI runner must not flake the ratio.
    let mut warm: Option<std::sync::Arc<dsstc_serve::EncodedModel>> = None;
    for _ in 0..3 {
        let warm_repo = ModelRepository::new(GpuConfig::v100(), 128).with_disk_cache(dir.path());
        let candidate = warm_repo.get(key);
        assert!(candidate.from_disk);
        if warm.as_ref().is_none_or(|best| candidate.encode_ms < best.encode_ms) {
            warm = Some(candidate);
        }
    }
    let warm = warm.expect("three restores ran");
    eprintln!(
        "cold encode {:.3} ms, warm restore {:.3} ms (ratio {:.4})",
        cold.encode_ms,
        warm.encode_ms,
        warm.encode_ms / cold.encode_ms
    );
    assert!(
        warm.encode_ms <= cold.encode_ms * 0.10,
        "warm restore {:.2} ms must be <= 10% of cold encode {:.2} ms",
        warm.encode_ms,
        cold.encode_ms
    );
    // And the restored artifact is the same artifact.
    for (c, w) in cold.layers.iter().zip(&warm.layers) {
        assert_eq!(c.weights, w.weights, "{}", c.name);
    }
}

#[test]
fn batches_never_exceed_max_batch() {
    let max_batch = 3;
    let server = InferenceServer::start(config().with_workers(2).with_max_batch(max_batch));
    let pending: Vec<_> = (0..20)
        .map(|i| server.submit(InferRequest::new(ModelId::BertBase, features(i))).expect("queued"))
        .collect();
    for p in pending {
        let response = p.wait().expect("response");
        assert!(response.batch_size <= max_batch, "batch of {}", response.batch_size);
    }
    let stats = server.stats();
    assert!(stats.max_batch_size <= max_batch);
    assert_eq!(stats.completed_requests, 20);
    // 20 requests in batches of <= 3 means at least 7 batches.
    assert!(stats.executed_batches >= 7);
}

#[test]
fn a_lone_request_flushes_on_the_deadline() {
    let wait = Duration::from_millis(20);
    let server = InferenceServer::start(
        config().with_workers(1).with_max_batch(64).with_max_queue_wait(wait),
    );
    // Warm the encode cache so the measured wait is queue time, not encode
    // time.
    server.infer(InferRequest::new(ModelId::RnnLm, features(0))).expect("warm-up");
    let t0 = Instant::now();
    let response = server.infer(InferRequest::new(ModelId::RnnLm, features(1))).expect("response");
    let elapsed = t0.elapsed();
    assert_eq!(response.batch_size, 1);
    assert!(elapsed >= wait, "answered after {elapsed:?}, deadline {wait:?}");
    assert!(elapsed < wait * 50, "answered after {elapsed:?}");
}

#[test]
fn encode_cache_hits_after_the_first_request() {
    let server = InferenceServer::start(config().with_workers(1).with_max_batch(1));
    for i in 0..4 {
        server.infer(InferRequest::new(ModelId::BertBase, features(i))).expect("response");
    }
    let stats = server.stats();
    // Four single-request batches against one model: one encode, three hits.
    assert_eq!(stats.encode_misses, 1);
    assert_eq!(stats.encode_hits, 3);
    assert!((stats.encode_hit_rate - 0.75).abs() < 1e-12);
    // Same model at a different sparsity is a different artifact.
    server
        .infer(InferRequest::new(ModelId::BertBase, features(9)).with_weight_sparsity(0.5))
        .expect("response");
    assert_eq!(server.stats().encode_misses, 2);
}

#[test]
fn every_request_is_answered_exactly_once_across_workers() {
    let server = InferenceServer::start(config().with_workers(3).with_max_batch(4));
    let models = [ModelId::BertBase, ModelId::RnnLm];
    let pending: Vec<_> = (0..60)
        .map(|i| {
            let model = models[i as usize % models.len()];
            server.submit(InferRequest::new(model, features(i))).expect("queued")
        })
        .collect();
    let mut seen = HashSet::new();
    for p in pending {
        let expected_id = p.id();
        let response = p.wait().expect("response");
        assert_eq!(response.id, expected_id);
        assert!(seen.insert(response.id), "duplicate response for {}", response.id);
        assert_eq!(response.output.rows(), 2);
        assert_eq!(response.output.cols(), 32);
    }
    assert_eq!(seen.len(), 60);
    let stats = server.stats();
    assert_eq!(stats.completed_requests, 60);
    assert_eq!(
        stats.batch_histogram.iter().enumerate().map(|(i, n)| (i as u64 + 1) * n).sum::<u64>(),
        60,
        "histogram accounts for every request"
    );
}

#[test]
fn batched_outputs_match_unbatched_outputs() {
    // The same request must produce identical features whether it ran alone
    // or merged into a batch (batching must not change results).
    let solo_server = InferenceServer::start(config().with_workers(1).with_max_batch(1));
    let batch_server = InferenceServer::start(config().with_workers(1).with_max_batch(8));
    let inputs: Vec<Matrix> = (0..6).map(features).collect();

    let solo: Vec<Matrix> = inputs
        .iter()
        .map(|f| {
            solo_server
                .infer(InferRequest::new(ModelId::ResNet50, f.clone()))
                .expect("response")
                .output
        })
        .collect();

    let pending: Vec<_> = inputs
        .iter()
        .map(|f| {
            batch_server.submit(InferRequest::new(ModelId::ResNet50, f.clone())).expect("queued")
        })
        .collect();
    for (p, reference) in pending.into_iter().zip(solo) {
        let response = p.wait().expect("response");
        assert!(response.output.approx_eq(&reference, 1e-4));
    }
}

#[test]
fn mixed_traffic_reports_modelled_latency_per_model() {
    let server = InferenceServer::start(config().with_workers(2).with_max_batch(4));
    let bert =
        server.infer(InferRequest::new(ModelId::BertBase, features(1))).expect("bert response");
    let rnn = server.infer(InferRequest::new(ModelId::RnnLm, features(2))).expect("rnn response");
    assert!(bert.modelled_batch_us > 0.0);
    assert!(rnn.modelled_batch_us > 0.0);
    // The RNN's six 1024x6000x1500 GEMMs dwarf BERT's encoder block.
    assert!(rnn.modelled_batch_us > bert.modelled_batch_us);
}

#[test]
fn every_completed_request_carries_a_full_monotonic_trace() {
    let server = InferenceServer::start(config().with_workers(2).with_max_batch(4));
    const N: u64 = 24;
    let pending: Vec<_> = (0..N)
        .map(|i| {
            let priority = if i % 3 == 0 { Priority::High } else { Priority::Normal };
            server
                .submit(InferRequest::new(ModelId::RnnLm, features(i)).with_priority(priority))
                .expect("queued")
        })
        .collect();
    for p in pending {
        let response = p.wait().expect("answered");
        let trace = &response.trace;
        assert!(trace.is_complete(), "stages missing on {trace:?}");
        assert!(trace.is_monotonic(), "stage timestamps regress on {trace:?}");
        assert!(!trace.is_wire(), "in-process requests must not carry wire stamps");
        assert_eq!(trace.id, response.id);
        assert_eq!(trace.model, Some(response.model));
        assert_eq!(trace.device, Some(response.device), "trace names the executing device");
        assert!(trace.cache.is_some(), "cache outcome resolved on {trace:?}");
    }
    // The worker records each trace just after handing the response back:
    // give the last recording a moment, then the totals must agree.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.telemetry().traces_recorded() < N && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.telemetry().traces_recorded(), N);
    let recent = server.telemetry().sink().recent();
    assert_eq!(recent.len() as u64, N);
    assert!(recent.iter().all(|t| t.is_complete() && t.is_monotonic()));
}

#[test]
fn trace_out_streams_chrome_events_for_each_completed_request() {
    let dir = TempDir::new("trace-out");
    std::fs::create_dir_all(dir.path()).expect("temp dir");
    let path = dir.path().join("trace.jsonl");
    let server = InferenceServer::start(config().with_workers(1).with_trace_out(&path));
    const N: u64 = 6;
    let pending: Vec<_> = (0..N)
        .map(|i| server.submit(InferRequest::new(ModelId::BertBase, features(i))).expect("queued"))
        .collect();
    for p in pending {
        p.wait().expect("answered");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.telemetry().traces_recorded() < N && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    server.telemetry().sink().flush();
    let body = std::fs::read_to_string(&path).expect("trace file written");
    let lines: Vec<&str> = body.lines().collect();
    // Five spans per in-process request: queue, schedule, cache, execute,
    // respond (no wire stages).
    assert_eq!(lines.len() as u64, N * 5, "unexpected event count:\n{body}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"ph\":\"X\""), "not a complete event: {line}");
        assert!(line.contains("\"model\":\"bertbase\""), "model missing: {line}");
    }
    for span in ["\"queue\"", "\"schedule\"", "\"cache\"", "\"execute\"", "\"respond\""] {
        assert!(body.contains(span), "span {span} missing from:\n{body}");
    }
    assert!(!body.contains("wire_decode"), "in-process trace must not emit wire spans");
}
