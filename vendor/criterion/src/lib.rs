//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without network access, so this vendored shim
//! implements the API subset the `dsstc-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`] and [`criterion_main!`] — on top of
//! a plain wall-clock timer. It reports the minimum and mean iteration time
//! per benchmark instead of criterion's full statistical analysis; the
//! harness binaries (`cargo bench`) therefore still produce useful numbers
//! while the bench sources stay byte-compatible with the real crate.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handed to the closure under test; [`Bencher::iter`] runs and times
/// the workload.
pub struct Bencher {
    /// Measured per-iteration times in nanoseconds.
    samples: Vec<f64>,
    /// How many timed iterations to run.
    iterations: usize,
}

impl Bencher {
    fn new(iterations: usize) -> Self {
        Bencher { samples: Vec::new(), iterations }
    }

    /// Runs `f` repeatedly (one warm-up plus the configured sample count)
    /// and records each timed call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        for _ in 0..self.iterations {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!("{label:<60} min {:>12} mean {:>12}", format_ns(min), format_ns(mean));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Bundles benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warm-up + samples
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
