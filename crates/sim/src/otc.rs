//! Cost model of the Outer-product Tensor Core (OTC) warp step.
//!
//! A warp-level SpWMMA covers a `32 x 32 x K` tile. Each `k` step consumes
//! one condensed column of Av and one condensed row of Bv; the 32x32 output
//! is covered by `ceil(32/8) x ceil(32/16) = 8` OHMMA instructions in dense
//! mode (paper Fig. 5/15). In sparse mode, population counts of the two
//! bitmap vectors decide how many of those eight instructions must actually
//! be issued — the rest are skipped by predication. The partial-matrix
//! non-zeros produced by the step then have to be merged into the
//! accumulation buffer.

use crate::config::OtcConfig;

/// Cost of one `32 x 32 x 1` outer-product step on condensed operands.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OtcStepCost {
    /// OHMMA instructions issued.
    pub ohmma_issued: u64,
    /// OHMMA instructions skipped through predication.
    pub ohmma_skipped: u64,
    /// Binary (bitmap) outer-product instructions issued.
    pub bohmma: u64,
    /// Population-count instructions issued.
    pub popc: u64,
    /// Non-zero elements of the produced partial matrix that the merge
    /// stage must accumulate.
    pub partial_nnz: u64,
    /// Cycles the 128-way merge pipeline needs for those non-zeros
    /// (excluding bank conflicts).
    pub merge_cycles: u64,
}

impl OtcStepCost {
    /// Computes the cost of one outer-product step given the non-zero counts
    /// of the condensed A column (`a_nnz`, out of `warp_dim`) and B row
    /// (`b_nnz`), for the given OTC configuration and warp-tile dimension.
    ///
    /// # Panics
    /// Panics if `a_nnz` or `b_nnz` exceeds `warp_dim`.
    pub fn for_vectors(a_nnz: usize, b_nnz: usize, warp_dim: usize, otc: &OtcConfig) -> Self {
        assert!(a_nnz <= warp_dim && b_nnz <= warp_dim, "nnz cannot exceed the warp dimension");
        let dense_total = Self::dense_ohmma_count(warp_dim, otc);
        if a_nnz == 0 || b_nnz == 0 {
            // The whole step is skipped; only the POPC that discovered the
            // empty vector is charged.
            return OtcStepCost {
                ohmma_issued: 0,
                ohmma_skipped: dense_total,
                bohmma: 0,
                popc: 2,
                partial_nnz: 0,
                merge_cycles: 0,
            };
        }
        let a_groups = a_nnz.div_ceil(otc.tile_m) as u64;
        let b_groups = b_nnz.div_ceil(otc.tile_n) as u64;
        let issued = a_groups * b_groups;
        let partial_nnz = (a_nnz * b_nnz) as u64;
        OtcStepCost {
            ohmma_issued: issued,
            ohmma_skipped: dense_total - issued,
            bohmma: 1,
            popc: 2,
            partial_nnz,
            merge_cycles: partial_nnz.div_ceil(otc.accum_parallelism as u64),
        }
    }

    /// OHMMA instructions a fully dense step needs.
    pub fn dense_ohmma_count(warp_dim: usize, otc: &OtcConfig) -> u64 {
        (warp_dim.div_ceil(otc.tile_m) * warp_dim.div_ceil(otc.tile_n)) as u64
    }

    /// Adds another step's cost.
    pub fn accumulate(&mut self, other: &OtcStepCost) {
        self.ohmma_issued += other.ohmma_issued;
        self.ohmma_skipped += other.ohmma_skipped;
        self.bohmma += other.bohmma;
        self.popc += other.popc;
        self.partial_nnz += other.partial_nnz;
        self.merge_cycles += other.merge_cycles;
    }
}

/// Aggregated cost of a whole warp tile (`32 x 32 x K`), i.e. `K` steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarpTileCost {
    /// Summed step costs.
    pub steps: OtcStepCost,
    /// Number of `k` steps the tile covered.
    pub k_steps: u64,
    /// Steps that were skipped entirely (either vector empty).
    pub skipped_steps: u64,
}

impl WarpTileCost {
    /// Accumulates the costs of all `k` steps of a warp tile given the
    /// per-step condensed non-zero counts of A columns and B rows.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn from_step_nnz(
        a_nnz: &[usize],
        b_nnz: &[usize],
        warp_dim: usize,
        otc: &OtcConfig,
    ) -> Self {
        assert_eq!(a_nnz.len(), b_nnz.len(), "A and B must supply the same number of k steps");
        let mut tile = WarpTileCost { k_steps: a_nnz.len() as u64, ..Default::default() };
        for (&a, &b) in a_nnz.iter().zip(b_nnz) {
            let step = OtcStepCost::for_vectors(a, b, warp_dim, otc);
            if step.ohmma_issued == 0 {
                tile.skipped_steps += 1;
            }
            tile.steps.accumulate(&step);
        }
        tile
    }

    /// The dense OHMMA count the same tile would have cost, for speedup
    /// accounting.
    pub fn dense_ohmma(&self, warp_dim: usize, otc: &OtcConfig) -> u64 {
        self.k_steps * OtcStepCost::dense_ohmma_count(warp_dim, otc)
    }

    /// Fraction of OHMMA instructions skipped relative to dense execution.
    pub fn skip_ratio(&self, warp_dim: usize, otc: &OtcConfig) -> f64 {
        let dense = self.dense_ohmma(warp_dim, otc);
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.steps.ohmma_issued as f64 / dense as f64
    }

    /// Adds another tile's cost (used when accumulating a whole kernel).
    pub fn accumulate(&mut self, other: &WarpTileCost) {
        self.steps.accumulate(&other.steps);
        self.k_steps += other.k_steps;
        self.skipped_steps += other.skipped_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn otc() -> OtcConfig {
        OtcConfig::paper()
    }

    #[test]
    fn dense_step_needs_eight_ohmmas() {
        assert_eq!(OtcStepCost::dense_ohmma_count(32, &otc()), 8);
        let step = OtcStepCost::for_vectors(32, 32, 32, &otc());
        assert_eq!(step.ohmma_issued, 8);
        assert_eq!(step.ohmma_skipped, 0);
        assert_eq!(step.bohmma, 1);
        assert_eq!(step.partial_nnz, 1024);
        assert_eq!(step.merge_cycles, 8);
    }

    #[test]
    fn paper_figure5_example_skips_five_of_eight() {
        // Av column has 20 non-zeros, Bv row has 11 (paper Fig. 5).
        let step = OtcStepCost::for_vectors(20, 11, 32, &otc());
        assert_eq!(step.ohmma_issued, 3);
        assert_eq!(step.ohmma_skipped, 5);
    }

    #[test]
    fn paper_figure15_example_set4() {
        // POPC results 20 (A) and 12 (B): 3 x 1 OHMMAs enabled.
        let step = OtcStepCost::for_vectors(20, 12, 32, &otc());
        assert_eq!(step.ohmma_issued, 3);
    }

    #[test]
    fn empty_vector_skips_whole_step() {
        let step = OtcStepCost::for_vectors(0, 17, 32, &otc());
        assert_eq!(step.ohmma_issued, 0);
        assert_eq!(step.ohmma_skipped, 8);
        assert_eq!(step.bohmma, 0);
        assert_eq!(step.partial_nnz, 0);
        let step = OtcStepCost::for_vectors(17, 0, 32, &otc());
        assert_eq!(step.ohmma_issued, 0);
    }

    #[test]
    fn sparsity_quantisation_levels() {
        // The A side benefits at 25% granularity, the B side at 50%
        // (paper Section III-B3).
        let full = OtcStepCost::for_vectors(32, 32, 32, &otc()).ohmma_issued;
        assert_eq!(OtcStepCost::for_vectors(24, 32, 32, &otc()).ohmma_issued, full / 4 * 3);
        assert_eq!(OtcStepCost::for_vectors(16, 32, 32, &otc()).ohmma_issued, full / 2);
        assert_eq!(OtcStepCost::for_vectors(8, 32, 32, &otc()).ohmma_issued, full / 4);
        assert_eq!(OtcStepCost::for_vectors(32, 16, 32, &otc()).ohmma_issued, full / 2);
        // 17 non-zeros on the B side still needs both column groups.
        assert_eq!(OtcStepCost::for_vectors(32, 17, 32, &otc()).ohmma_issued, full);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn nnz_larger_than_warp_dim_panics() {
        let _ = OtcStepCost::for_vectors(33, 0, 32, &otc());
    }

    #[test]
    fn warp_tile_accumulates_steps() {
        let a = vec![32, 20, 0, 8];
        let b = vec![32, 11, 16, 16];
        let tile = WarpTileCost::from_step_nnz(&a, &b, 32, &otc());
        assert_eq!(tile.k_steps, 4);
        assert_eq!(tile.skipped_steps, 1);
        // 8 + 3 + 0 + 1 = 12 issued of 32 dense.
        assert_eq!(tile.steps.ohmma_issued, 12);
        assert_eq!(tile.dense_ohmma(32, &otc()), 32);
        assert!((tile.skip_ratio(32, &otc()) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn dense_tile_has_zero_skip_ratio() {
        let a = vec![32; 16];
        let b = vec![32; 16];
        let tile = WarpTileCost::from_step_nnz(&a, &b, 32, &otc());
        assert_eq!(tile.skip_ratio(32, &otc()), 0.0);
        assert_eq!(tile.steps.ohmma_issued, 128);
    }

    #[test]
    fn merge_cycles_track_partial_nnz() {
        let step = OtcStepCost::for_vectors(16, 16, 32, &otc());
        assert_eq!(step.partial_nnz, 256);
        assert_eq!(step.merge_cycles, 2); // 256 / 128-way accumulators
    }

    #[test]
    fn tile_accumulate_combines() {
        let a = WarpTileCost::from_step_nnz(&[32], &[32], 32, &otc());
        let mut b = WarpTileCost::from_step_nnz(&[0], &[32], 32, &otc());
        b.accumulate(&a);
        assert_eq!(b.k_steps, 2);
        assert_eq!(b.skipped_steps, 1);
        assert_eq!(b.steps.ohmma_issued, 8);
    }
}
