//! Criterion bench behind Figure 21: modelled SpGEMM cost-evaluation across
//! schemes, plus the functional warp-level SpGEMM kernel itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc::DualSideSparseTensorCore;
use dsstc_kernels::bitmap_spgemm::BitmapSpGemm;
use dsstc_kernels::dense_gemm::DenseGemm;
use dsstc_sim::GpuConfig;
use dsstc_tensor::{GemmShape, Matrix, SparsityPattern};
use std::hint::black_box;

fn bench_scheme_estimation(c: &mut Criterion) {
    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(2048, 2048, 2048);
    let mut group = c.benchmark_group("fig21_estimation");
    group.sample_size(10);
    for &(a, b) in &[(0.0, 0.0), (0.5, 0.5), (0.9, 0.99)] {
        group.bench_with_input(
            BenchmarkId::new("dual_side_estimate", format!("a{a}_b{b}")),
            &(a, b),
            |bench, &(a, b)| bench.iter(|| black_box(engine.estimate_spgemm(shape, a, b))),
        );
    }
    group.finish();
}

fn bench_functional_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_spgemm_256");
    group.sample_size(10);
    let dense_kernel = DenseGemm::new(GpuConfig::v100());
    let bitmap_kernel = BitmapSpGemm::new(GpuConfig::v100());
    for &sparsity in &[0.5, 0.9, 0.99] {
        let a = Matrix::random_sparse(256, 256, sparsity, SparsityPattern::Uniform, 1);
        let b = Matrix::random_sparse(256, 256, sparsity, SparsityPattern::Uniform, 2);
        group.bench_with_input(
            BenchmarkId::new("dense_reference", sparsity),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(dense_kernel.execute(a, b))),
        );
        group.bench_with_input(
            BenchmarkId::new("bitmap_outer_product", sparsity),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(bitmap_kernel.execute(a, b))),
        );
    }
    group.finish();
}

/// The retained scalar reference against the word-parallel execution path
/// over identical pre-built encodings — the perf claim `BENCH_kernels.json`
/// tracks per commit, kept honest here under Criterion's statistics.
fn bench_word_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_word_vs_scalar_512");
    group.sample_size(10);
    let kernel = BitmapSpGemm::new(GpuConfig::v100());
    for &(a_sparsity, b_sparsity) in &[(0.5, 0.5), (0.9, 0.9)] {
        let a = Matrix::random_sparse(512, 512, a_sparsity, SparsityPattern::Uniform, 21);
        let b = Matrix::random_sparse(512, 512, b_sparsity, SparsityPattern::Uniform, 42);
        let a_enc = kernel.encode_a(&a);
        let b_enc = kernel.encode_b(&b);
        group.bench_with_input(
            BenchmarkId::new("scalar_reference", format!("a{a_sparsity}_b{b_sparsity}")),
            &(&a_enc, &b_enc),
            |bench, (a_enc, b_enc)| {
                bench.iter(|| black_box(kernel.execute_encoded_scalar(a_enc, b_enc)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("word_parallel", format!("a{a_sparsity}_b{b_sparsity}")),
            &(&a_enc, &b_enc),
            |bench, (a_enc, b_enc)| bench.iter(|| black_box(kernel.execute_encoded(a_enc, b_enc))),
        );
    }
    group.finish();
}

/// The serve hot path — per-batch encode-A plus execute against resident
/// encoded weights, exactly what a `dsstc-serve` worker pays per batch.
fn bench_serve_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_hot_path_256x64x64");
    group.sample_size(10);
    let kernel = BitmapSpGemm::new(GpuConfig::v100());
    let a = Matrix::random_sparse(256, 64, 0.4, SparsityPattern::Uniform, 21);
    let b = Matrix::random_sparse(64, 64, 0.8, SparsityPattern::Uniform, 42);
    let b_enc = kernel.encode_b(&b);
    group.bench_function("encode_a_plus_scalar", |bench| {
        bench.iter(|| {
            let a_enc = kernel.encode_a(&a);
            black_box(kernel.execute_encoded_scalar(&a_enc, &b_enc))
        })
    });
    group.bench_function("encode_a_plus_word", |bench| {
        bench.iter(|| {
            let a_enc = kernel.encode_a(&a);
            black_box(kernel.execute_encoded(&a_enc, &b_enc))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheme_estimation,
    bench_functional_spgemm,
    bench_word_vs_scalar,
    bench_serve_hot_path
);
criterion_main!(benches);
