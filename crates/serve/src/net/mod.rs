//! The network front-end: a dependency-free, epoll-based TCP server (and a
//! small blocking client) speaking a length-prefixed, checksummed wire
//! protocol over the serving runtime.
//!
//! * [`frame`] — the codec: `DSRQ` request / `DSRS` response frames,
//!   incremental [`FrameDecoder`], error frames,
//!   versioning. Byte-level spec in `docs/WIRE_PROTOCOL.md`.
//! * [`poll`] — a minimal mio-style epoll readiness loop (raw syscalls
//!   against the already-linked C library; no tokio, no crates).
//! * [`server`] — the [`WireServer`]: N sharded epoll reactors (accept on
//!   one listener, hand off to the least-loaded peer), decode, submit
//!   through [`crate::InferenceServer::submit_with`], stream responses back
//!   as batches complete; pipelining, connection limits, graceful drain.
//! * [`client`] — the blocking [`WireClient`] used by tests, the
//!   `serve_client` example and the `serve_throughput --wire` sweep, and
//!   the shard-aware [`ClusterClient`] layered on top of it.

pub mod client;
pub mod frame;
pub mod poll;
pub mod server;

pub use client::{ClusterClient, WireClient, DEFAULT_MAX_REDIRECTS};
pub use frame::{
    encode_error_into, encode_hello_into, encode_request_into, encode_response_into,
    encode_shard_map_into, Frame, FrameDecoder, HelloFrame, RequestFrame, ResponseBody,
    ResponseFrame, ShardMapFrame, WireError, WireStatus, POISON_ID, WIRE_VERSION,
};
pub use server::{WireServer, DRAIN_TIMEOUT};
