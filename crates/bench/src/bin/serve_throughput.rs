//! Serving-throughput sweep for the `dsstc-serve` runtime.
//!
//! Two modes:
//!
//! * **closed-loop** (default): one burst of mixed ResNet-50 / BERT traffic
//!   per (workers x max_batch) cell, measuring requests/second and latency
//!   percentiles at whatever rate the server sustains. Shows dynamic
//!   batching amortising per-layer work into larger-M GEMMs and the worker
//!   pool spreading batches across cores.
//! * **open-loop** (`--open-loop`): seeded Poisson arrivals drive each
//!   (max_batch x device-mix) cell at a grid of offered loads, producing a
//!   latency-vs-offered-load curve — the behaviour a closed-loop driver
//!   cannot see, because open-loop arrivals keep coming no matter how far
//!   behind the server falls.
//!
//! Run with `cargo run --release -p dsstc-bench --bin serve_throughput`
//! (append `-- --open-loop` for the open-loop sweep, `--smoke` for the
//! CI-sized grid).

use std::time::{Duration, Instant};

use dsstc_serve::{
    DevicePool, InferRequest, InferenceServer, ModelId, PoissonArrivals, Priority, ServeConfig,
    ServerStats,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

const REQUESTS: u64 = 96;

/// Seed of the open-loop arrival process (fixed: cells are reproducible).
const ARRIVAL_SEED: u64 = 0x0A_11_2E_ED;

/// Drives one burst of mixed traffic and returns wall time + final stats.
fn run_cell(workers: usize, max_batch: usize) -> (f64, ServerStats) {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_queue_wait(Duration::from_millis(2))
            .with_proxy_dim(64),
    );
    // Warm both models so every cell measures steady-state serving: the
    // one-time encode and bucket-pricing costs are exactly what the
    // repository and timing caches amortise away in a long-running server.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let started = Instant::now();
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server.submit(InferRequest::new(model, features)).expect("queued")
        })
        .collect();
    for p in pending {
        p.wait().expect("response");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (elapsed, stats)
}

fn closed_loop(smoke: bool) {
    let (worker_grid, batch_grid): (&[usize], &[usize]) =
        if smoke { (&[2], &[1, 8]) } else { (&[1, 2, 4], &[1, 4, 8, 16]) };
    println!("dsstc-serve throughput sweep: {REQUESTS} mixed ResNet-50/BERT requests per cell\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "workers", "max_batch", "req/s", "mean batch", "queue p99 ms", "exec p99 ms"
    );
    for &workers in worker_grid {
        for &max_batch in batch_grid {
            let (elapsed, stats) = run_cell(workers, max_batch);
            println!(
                "{workers:>8} {max_batch:>10} {:>12.1} {:>12.2} {:>14.2} {:>14.2}",
                REQUESTS as f64 / elapsed,
                stats.mean_batch_size,
                stats.queue_p99_us / 1e3,
                stats.execute_p99_us / 1e3,
            );
        }
    }
    println!(
        "\n(modelled GPU latency per request is reported by the server itself; see\n examples/serve_demo.rs for the metrics surface)"
    );
}

/// One open-loop cell: Poisson arrivals at `offered_rps` against a pool,
/// mixed-priority mixed-model traffic. Returns final stats + achieved rate.
fn run_open_loop_cell(
    pool: DevicePool,
    max_batch: usize,
    offered_rps: f64,
    requests: u64,
) -> (f64, ServerStats) {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_devices(pool)
            .with_max_batch(max_batch)
            .with_max_queue_wait(Duration::from_millis(2))
            .with_proxy_dim(64),
    );
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let mut arrivals = PoissonArrivals::new(offered_rps, ARRIVAL_SEED);
    let started = Instant::now();
    let mut next_arrival = started;
    let pending: Vec<_> = (0..requests)
        .map(|i| {
            next_arrival += arrivals.next_gap();
            // Open loop: wait for the arrival instant even if the server is
            // behind; never wait for the server itself.
            if let Some(sleep) = next_arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let priority = if i % 4 == 0 { Priority::High } else { Priority::Normal };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server
                .submit(InferRequest::new(model, features).with_priority(priority))
                .expect("queued")
        })
        .collect();
    for p in pending {
        p.wait().expect("response");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (requests as f64 / elapsed, stats)
}

fn open_loop(smoke: bool) {
    let (loads, requests): (&[f64], u64) =
        if smoke { (&[200.0, 800.0], 32) } else { (&[100.0, 200.0, 400.0, 800.0, 1600.0], 96) };
    type PoolMaker = fn() -> DevicePool;
    let pools: &[(&str, PoolMaker)] = &[
        ("2x V100", || DevicePool::homogeneous(GpuConfig::v100(), 2)),
        ("V100+A100", || DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()])),
    ];
    println!(
        "dsstc-serve open-loop sweep: seeded Poisson arrivals, {requests} mixed \
         ResNet-50/BERT requests per cell (1 in 4 high priority)\n"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "pool",
        "max_batch",
        "offered r/s",
        "achieved",
        "queue p50 ms",
        "queue p99 ms",
        "hi-pri p99 ms",
        "mean batch",
        "model ms"
    );
    for (name, make_pool) in pools {
        for &max_batch in &[4usize, 8] {
            for &load in loads {
                let (achieved, stats) = run_open_loop_cell(make_pool(), max_batch, load, requests);
                println!(
                    "{name:>10} {max_batch:>10} {load:>12.0} {achieved:>12.1} {:>14.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
                    stats.queue_p50_us / 1e3,
                    stats.queue_p99_us / 1e3,
                    stats.for_priority(Priority::High).queue_p99_us / 1e3,
                    stats.mean_batch_size,
                    stats.modelled_makespan_us / 1e3,
                );
            }
            println!();
        }
    }
    println!(
        "(wall-clock queue latency grows with offered load as the open-loop arrivals outpace\n \
         the host-bound proxy execution, which runs at the same real speed on every modelled\n \
         device; the modelled-makespan column is where the device pool shows — completion-time\n \
         dispatch shifts batches toward the A100, so the mixed pool finishes the same trace in\n \
         less modelled time than 2x V100)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let open = args.iter().any(|a| a == "--open-loop");
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(unknown) =
        args.iter().find(|a| a.as_str() != "--open-loop" && a.as_str() != "--smoke")
    {
        eprintln!("unknown flag {unknown}; supported: [--open-loop] [--smoke]");
        std::process::exit(2);
    }
    if open {
        open_loop(smoke);
    } else {
        closed_loop(smoke);
    }
}
