//! Serving demo: mixed-priority ResNet-50 / BERT traffic through the
//! SLO-aware, multi-device inference server with a pre-encoded model
//! repository.
//!
//! 120 requests (one in three high priority) are submitted in one burst,
//! dynamically batched per model with priority-aware extraction, dispatched
//! onto a heterogeneous V100 + A100 device pool by modelled completion
//! time, executed by pinned worker threads on the dual-side SpGEMM kernel,
//! and answered with output features plus the modelled device latency of
//! the real network at each batch's size. The run ends with the server's
//! metrics: throughput, aggregate and per-priority queue/execute
//! percentiles, the batch-size histogram, per-device utilisation and the
//! encode-cache hit rate (one encode per model, everything after is a hit).
//!
//! Run with `cargo run --release -p dsstc --example serve_demo`. Pass
//! `--encode-cache-dir DIR` to persist encoded weights across runs (the
//! server walks the store at boot and restores every artifact into the
//! memory tier, so a second run starts warm), and `--expect-warm` to
//! additionally assert the run was a pure warm start — the boot warmer
//! restored artifacts and zero fresh encodes were paid, so even the first
//! request hit the cache (the CI warm-start smoke runs the demo twice this
//! way). `--store-budget-bytes N` caps the on-disk store: warm boot GCs
//! least-recently-restored artifacts until the store fits (the CI GC
//! negative case doctors an oversized store this way and asserts it
//! shrinks).
//!
//! Pass `--listen ADDR` to serve over TCP instead of driving in-process
//! traffic: the demo boots the wire front-end, warms the catalogue, prints
//! the bound address, serves until `--wire-requests N` (default 48)
//! responses have gone out (printing a one-line stats heartbeat roughly
//! every 5 s along the way), then drains gracefully and asserts the wire
//! counters. `--reactors N` shards the front-end across N event loops
//! (0 = one per host core). `examples/serve_client.rs` is the matching
//! driver; the CI wire smoke runs the two against each other.
//!
//! Cluster knobs (see `docs/CLUSTER.md`): `--cluster-node ID` joins the
//! listener to a consistent-hash serving cluster, `--cluster-peer ID=ADDR`
//! (repeatable) names the other members, `--cluster-replication N` sizes
//! each shard's replica group, and `--auth-token TOKEN` requires clients to
//! present the shared secret in their `HELO` frame. The CI cluster smoke
//! boots three of these on loopback and kills one under load.
//!
//! Observability knobs (see `docs/OBSERVABILITY.md`): `--trace-out PATH`
//! streams one chrome-trace JSON line per completed request, and
//! `--metrics-addr ADDR` (with `--listen`) binds a Prometheus-text scrape
//! endpoint next to the wire listener.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

use dsstc::serve::{
    CacheBudget, ClusterConfig, DevicePool, InferRequest, InferenceServer, ModelId, Priority,
    ServeConfig,
};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};

const USAGE: &str = "usage: serve_demo [--encode-cache-dir DIR] [--expect-warm] \
[--store-budget-bytes N] [--trace-out PATH] \
[--listen ADDR [--wire-requests N] [--reactors N] [--metrics-addr ADDR] \
[--auth-token TOKEN] [--cluster-node ID] [--cluster-peer ID=ADDR]... \
[--cluster-replication N]]";

fn usage_error(message: &str) -> ! {
    eprintln!("serve_demo: {message}\n{USAGE}");
    std::process::exit(2);
}

/// `--listen` mode: expose the pool over TCP, serve `wire_requests`
/// responses, drain and report. (The epoll front-end is Linux-only;
/// `--listen` is rejected elsewhere.)
#[cfg(target_os = "linux")]
fn run_listen(config: ServeConfig, wire_requests: u64) {
    use dsstc::serve::net::WireServer;
    let mut server = WireServer::start(config).expect("bind listen address");
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        let encode_ms = server.server().warm_model(model, None);
        println!("warmed {model}: encoded weights obtained in {encode_ms:.1} ms");
    }
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on http://{addr}/metrics");
    }
    println!("wire front-end sharded across {} reactor(s)", server.reactors());
    // The line clients (and the CI smoke) wait for before connecting.
    println!("listening on {}", server.local_addr());
    let mut last_heartbeat = std::time::Instant::now();
    loop {
        let wire = server.wire_stats();
        if wire.frames_sent + wire.error_frames_sent >= wire_requests {
            break;
        }
        // A one-line liveness pulse roughly every 5 s while serving.
        if last_heartbeat.elapsed() >= Duration::from_secs(5) {
            last_heartbeat = std::time::Instant::now();
            let stats = server.stats();
            println!(
                "heartbeat: {} requests ({:.1} req/s, queue p99 {:.0} us) | {} conns open, \
                 frames {} in / {} out, {} in flight",
                stats.completed_requests,
                stats.throughput_rps,
                stats.queue_p99_us,
                wire.open_connections(),
                wire.frames_received,
                wire.frames_sent,
                wire.in_flight,
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.stats();
    println!("{}", stats.render());
    let wire = stats.wire.clone().expect("wire counters attached");
    server.shutdown();
    assert!(wire.frames_received >= wire_requests, "expected {wire_requests} request frames");
    assert_eq!(wire.decode_errors, 0, "clean clients must not trip framing errors");
    assert!(wire.connections_accepted >= 1, "at least one client connected");
    println!(
        "ok: served {} wire responses to {} connections ({} B in, {} B out)",
        wire.frames_sent, wire.connections_accepted, wire.bytes_received, wire.bytes_sent
    );
}

fn main() {
    const REQUESTS: u64 = 120;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut encode_cache_dir: Option<PathBuf> = None;
    let mut expect_warm = false;
    let mut store_budget_bytes: Option<u64> = None;
    let mut listen: Option<std::net::SocketAddr> = None;
    let mut wire_requests: u64 = 48;
    let mut reactors: Option<usize> = None;
    let mut metrics_addr: Option<std::net::SocketAddr> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut auth_token: Option<String> = None;
    let mut cluster_node: Option<u16> = None;
    let mut cluster_peers: Vec<(u16, String)> = Vec::new();
    let mut cluster_replication: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--encode-cache-dir" => {
                encode_cache_dir = iter.next().filter(|v| !v.starts_with("--")).map(PathBuf::from);
                if encode_cache_dir.is_none() {
                    usage_error("--encode-cache-dir needs a directory path");
                }
            }
            "--expect-warm" => expect_warm = true,
            "--store-budget-bytes" => {
                match iter.next().and_then(|v| v.parse().ok()).filter(|&n: &u64| n > 0) {
                    Some(n) => store_budget_bytes = Some(n),
                    None => usage_error("--store-budget-bytes needs a positive byte count"),
                }
            }
            "--listen" => match iter.next().map(|v| v.parse()) {
                Some(Ok(addr)) => listen = Some(addr),
                _ => usage_error("--listen needs an ADDR:PORT listen address"),
            },
            "--wire-requests" => {
                match iter.next().and_then(|v| v.parse().ok()).filter(|&n: &u64| n > 0) {
                    Some(n) => wire_requests = n,
                    None => usage_error("--wire-requests needs a positive integer"),
                }
            }
            "--reactors" => {
                // 0 is meaningful (one reactor per host core), so only a
                // missing or non-numeric value is rejected.
                match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => reactors = Some(n),
                    None => usage_error("--reactors needs a non-negative integer"),
                }
            }
            "--metrics-addr" => match iter.next().map(|v| v.parse()) {
                Some(Ok(addr)) => metrics_addr = Some(addr),
                _ => usage_error("--metrics-addr needs an ADDR:PORT scrape address"),
            },
            "--trace-out" => {
                trace_out = iter.next().filter(|v| !v.starts_with("--")).map(PathBuf::from);
                if trace_out.is_none() {
                    usage_error("--trace-out needs a file path");
                }
            }
            "--auth-token" => {
                auth_token = iter.next().filter(|v| !v.starts_with("--")).cloned();
                if auth_token.is_none() {
                    usage_error("--auth-token needs a shared-secret value");
                }
            }
            "--cluster-node" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(id) => cluster_node = Some(id),
                None => usage_error("--cluster-node needs a numeric node id"),
            },
            "--cluster-peer" => {
                // ID=ADDR, repeatable — one flag per peer in the cluster.
                let peer = iter.next().and_then(|v| {
                    let (id, addr) = v.split_once('=')?;
                    Some((id.parse().ok()?, addr.to_string()))
                });
                match peer {
                    Some(p) => cluster_peers.push(p),
                    None => usage_error("--cluster-peer needs ID=ADDR (e.g. 1=127.0.0.1:7101)"),
                }
            }
            "--cluster-replication" => {
                match iter.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0) {
                    Some(n) => cluster_replication = Some(n),
                    None => usage_error("--cluster-replication needs a positive replica count"),
                }
            }
            unknown => usage_error(&format!("unknown flag {unknown}")),
        }
    }
    let mut config = ServeConfig::default()
        .with_devices(DevicePool::new(vec![
            GpuConfig::v100(),
            GpuConfig::v100(),
            GpuConfig::a100(),
            GpuConfig::a100(),
        ]))
        .with_max_batch(8)
        .with_max_queue_wait(Duration::from_millis(2))
        .with_proxy_dim(64);
    if let Some(dir) = &encode_cache_dir {
        config = config.with_encode_cache_dir(dir.clone());
        println!("persistent encode cache: {}", dir.display());
    }
    if let Some(bytes) = store_budget_bytes {
        if encode_cache_dir.is_none() {
            usage_error("--store-budget-bytes needs --encode-cache-dir (it caps the disk store)");
        }
        config = config
            .with_encode_store_budget(CacheBudget { max_entries: usize::MAX, max_bytes: bytes });
        println!("encode store budget: {bytes} B");
    }
    if let Some(path) = &trace_out {
        config = config.with_trace_out(path.clone());
        println!("chrome-trace output: {}", path.display());
    }
    if metrics_addr.is_some() && listen.is_none() {
        usage_error("--metrics-addr needs --listen (the scrape endpoint rides the wire front-end)");
    }
    if let Some(addr) = metrics_addr {
        config = config.with_metrics_addr(addr);
    }
    if reactors.is_some() && listen.is_none() {
        usage_error("--reactors needs --listen (it shards the wire front-end)");
    }
    if listen.is_none()
        && (auth_token.is_some()
            || cluster_node.is_some()
            || !cluster_peers.is_empty()
            || cluster_replication.is_some())
    {
        usage_error("--auth-token and --cluster-* need --listen (they configure the wire server)");
    }
    if cluster_node.is_none() && (!cluster_peers.is_empty() || cluster_replication.is_some()) {
        usage_error("--cluster-peer/--cluster-replication need --cluster-node ID");
    }
    if let Some(addr) = listen {
        if expect_warm {
            usage_error("--expect-warm applies to the in-process demo, not --listen");
        }
        #[cfg(target_os = "linux")]
        {
            let mut config = config.with_listen(addr);
            if let Some(n) = reactors {
                config = config.with_reactors(n);
            }
            if let Some(token) = auth_token {
                config = config.with_auth_token(token);
            }
            if let Some(node_id) = cluster_node {
                // Advertise the listen address itself: the demo cluster is a
                // loopback topology where clients share the node's namespace.
                let mut cluster = ClusterConfig::new(node_id, addr.to_string(), cluster_peers);
                if let Some(r) = cluster_replication {
                    cluster = cluster.with_replication(r);
                }
                println!(
                    "cluster member: node {node_id}, {} peer(s), replication {}",
                    cluster.peers.len(),
                    cluster.replication
                );
                config = config.with_cluster(cluster);
            }
            run_listen(config, wire_requests);
            return;
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (addr, wire_requests, auth_token, cluster_node, cluster_replication);
            usage_error("--listen needs the epoll front-end, which is Linux-only");
        }
    }
    let mut server = InferenceServer::start(config);
    println!(
        "== dsstc-serve demo: {REQUESTS} mixed ResNet-50/BERT requests, {} pooled devices ({}), batches of up to {} ==\n",
        server.config().workers(),
        server.config().devices.names().join(", "),
        server.config().max_batch
    );
    if encode_cache_dir.is_some() {
        // The boot-time store state, before any traffic touches the cache:
        // what the warmer restored/healed and what GC removed to fit the
        // budget. The CI GC negative case greps this line.
        let boot = server.stats();
        println!(
            "boot store: {} artifacts / {} B, warm boot restored {} + re-encoded {} + healed {}, \
             gc removed {}\n",
            boot.store_entries,
            boot.store_bytes,
            boot.encode_warm_restored,
            boot.encode_warm_reencoded,
            boot.encode_warm_healed,
            boot.store_gc_removed,
        );
    }

    // Deploy-time warm-up: obtain both models' encoded weights for every
    // pooled device tiling (fresh prune+encode on a cold start, restored
    // from the persistent store on a warm one) and pre-price the batch
    // buckets, before traffic arrives.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        let encode_ms = server.warm_model(model, None);
        println!("warmed {model}: encoded weights obtained in {encode_ms:.1} ms");
    }
    println!();

    // One burst of mixed traffic: even ids are ResNet-50 images, odd ids are
    // BERT token windows; every third request is latency-critical.
    // Submitting faster than the workers drain the queue is what gives the
    // scheduler something to batch — and the priorities something to jump.
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let priority = if i % 3 == 0 { Priority::High } else { Priority::Normal };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server
                .submit(InferRequest::new(model, features).with_priority(priority))
                .expect("server accepts requests")
        })
        .collect();

    let mut ids = HashSet::new();
    let mut devices_seen = HashSet::new();
    let mut per_model: Vec<(ModelId, u64, f64)> = Vec::new();
    for p in pending {
        let response = p.wait().expect("every request is answered");
        assert!(ids.insert(response.id), "duplicate response id {}", response.id);
        devices_seen.insert(response.device);
        match per_model.iter_mut().find(|(m, _, _)| *m == response.model) {
            Some((_, count, modelled)) => {
                *count += 1;
                *modelled += response.modelled_request_us;
            }
            None => per_model.push((response.model, 1, response.modelled_request_us)),
        }
    }
    assert_eq!(ids.len() as u64, REQUESTS, "every request answered exactly once");

    for (model, count, modelled) in &per_model {
        println!(
            "{model:<20} {count:>4} responses   mean modelled latency {:>9.1} us/request",
            modelled / *count as f64
        );
    }
    println!("devices that executed batches: {}\n", devices_seen.len());

    let stats = server.stats();
    println!("{}", stats.render());
    server.shutdown();

    // The properties this demo exists to demonstrate.
    assert!(devices_seen.len() >= 2, "expected >= 2 active devices");
    assert!(stats.mean_batch_size > 1.0, "expected dynamic batching to engage");
    assert!(stats.encode_hit_rate > 0.0, "expected encode-cache hits after the first batch");
    assert!(
        stats.for_priority(Priority::High).completed > 0,
        "expected high-priority traffic in the mix"
    );
    if expect_warm {
        // A populated --encode-cache-dir makes the restart a pure warm
        // start: the boot warmer restores every artifact into the memory
        // tier before traffic arrives, nothing prune+encodes, and the
        // first request is already a cache hit.
        assert_eq!(
            stats.encode_fresh, 0,
            "--expect-warm: {} artifacts were freshly encoded ({:.1} ms wasted)",
            stats.encode_fresh, stats.encode_fresh_ms
        );
        assert!(stats.encode_disk_loads > 0, "--expect-warm: nothing was restored from disk");
        assert!(
            stats.encode_warm_restored > 0,
            "--expect-warm: the boot warmer restored nothing at startup"
        );
        println!(
            "warm start confirmed: {} artifacts restored from disk in {:.1} ms ({} at boot), \
             0 fresh encodes",
            stats.encode_disk_loads, stats.encode_disk_ms, stats.encode_warm_restored
        );
    }
    println!(
        "ok: {REQUESTS} requests answered exactly once by {} devices, mean batch {:.2}, encode-cache hit rate {:.0}%",
        devices_seen.len(),
        stats.mean_batch_size,
        stats.encode_hit_rate * 100.0
    );
}
