//! A small blocking client for the wire protocol, used by the tests, the
//! `serve_client` example and the `serve_throughput --wire` sweep.
//!
//! One [`WireClient`] wraps one TCP connection. Requests **pipeline**: any
//! number may be sent before the first response is read, and responses
//! arrive in *completion* order (the server batches across connections), so
//! callers correlate by the echoed id. [`WireClient::infer`] is the
//! one-shot convenience doing a single send + receive.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::net::frame::{
    encode_request_into, Frame, FrameDecoder, RequestFrame, ResponseBody, ResponseFrame, WireError,
    WireStatus, RESPONSE_HEADROOM,
};
use crate::request::InferRequest;

/// A blocking connection to a [`crate::net::WireServer`].
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
    /// Reused per [`WireClient::send`]: the request frame is encoded in
    /// place, so steady-state sends allocate nothing.
    encode_buf: Vec<u8>,
    next_id: u64,
    /// Request-side frame bound; the response decoder allows
    /// [`RESPONSE_HEADROOM`] on top (a response to a legal request is that
    /// much larger than the request, never more).
    max_frame_len: usize,
}

impl WireClient {
    /// Connects to `addr`, expecting the server's default
    /// `max_frame_len`. A server configured with a larger bound needs
    /// [`WireClient::with_max_frame_len`] to match, or its largest legal
    /// responses would trip the client's own decoder.
    pub fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        let max_frame_len = crate::config::ServeConfig::default().max_frame_len;
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(WireClient {
            stream,
            decoder: FrameDecoder::new(max_frame_len + RESPONSE_HEADROOM),
            scratch: vec![0u8; 64 * 1024],
            encode_buf: Vec::new(),
            next_id: 0,
            max_frame_len,
        })
    }

    /// Matches the client to a server running a non-default
    /// `max_frame_len`. Call right after connecting (it resets the
    /// response decoder, discarding any buffered bytes).
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.max_frame_len = max_frame_len;
        self.decoder = FrameDecoder::new(max_frame_len + RESPONSE_HEADROOM);
        self
    }

    /// A second handle on the same connection with its own (empty) decoder
    /// and id counter — the pattern for full-duplex use: one handle sends,
    /// the clone receives, concurrently from two threads. Two handles that
    /// both *read* would split frames between their decoders, and two that
    /// both *send* would duplicate ids; give each clone one direction.
    pub fn try_clone(&self) -> std::io::Result<WireClient> {
        Ok(WireClient {
            stream: self.stream.try_clone()?,
            decoder: FrameDecoder::new(self.max_frame_len + RESPONSE_HEADROOM),
            scratch: vec![0u8; 64 * 1024],
            encode_buf: Vec::new(),
            next_id: 0,
            max_frame_len: self.max_frame_len,
        })
    }

    /// Connects to `addr`, retrying until `timeout` elapses — for drivers
    /// racing a server that is still binding its listener (the CI smoke
    /// starts `serve_demo --listen` and `serve_client` concurrently).
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> std::io::Result<WireClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match WireClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request frame; returns the id the response will echo.
    /// Does not wait for the response — requests pipeline freely. The
    /// frame is encoded straight from the borrowed request into a reused
    /// buffer (no intermediate feature copy).
    pub fn send(&mut self, request: &InferRequest) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.encode_buf.clear();
        encode_request_into(&mut self.encode_buf, id, request);
        self.stream.write_all(&self.encode_buf)?;
        Ok(id)
    }

    /// Sends an explicit pre-built frame (tests use this to craft hostile
    /// input; [`WireClient::send`] is the normal path).
    pub fn send_frame(&mut self, frame: &RequestFrame) -> Result<(), WireError> {
        self.stream.write_all(&frame.to_bytes())?;
        Ok(())
    }

    /// Sends raw bytes verbatim (protocol-violation tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Blocks for the next response frame, in completion order.
    pub fn recv(&mut self) -> Result<ResponseFrame, WireError> {
        loop {
            match self.decoder.next_frame()? {
                Some(Frame::Response(response)) => return Ok(response),
                Some(Frame::Request(_)) => {
                    return Err(WireError::Malformed("server sent a request frame"))
                }
                None => {}
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(WireError::Truncated);
            }
            self.decoder.feed(&self.scratch[..n]);
        }
    }

    /// Sends one request and blocks for its served response; an error
    /// frame (any non-`Ok` status) surfaces as [`WireError::Rejected`].
    ///
    /// Only sound on a connection with no other pipelined requests
    /// outstanding (the next arriving response is assumed to be this one).
    pub fn infer(&mut self, request: &InferRequest) -> Result<ResponseBody, WireError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        debug_assert!(
            response.status != WireStatus::Ok || response.id == id,
            "no pipelining inside infer()"
        );
        response.into_body()
    }

    /// Half-closes the write side, telling the server no more requests are
    /// coming; pending responses can still be read.
    pub fn finish_sending(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
