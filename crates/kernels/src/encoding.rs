//! The explicit identity of a two-level bitmap encoding.
//!
//! The paper encodes pruned weights offline because weight sparsity is
//! static — but an encoded artifact is only executable on a kernel whose
//! warp tiling and condensed-vector layouts it was built for. An
//! [`EncodingSpec`] names that contract explicitly: the [`GemmTiling`] the
//! warp tiles follow plus the [`VectorLayout`] of each operand's condensed
//! vectors. Two encodings of the same pruned weights under different specs
//! are **different artifacts**: a serving layer caching encoded weights per
//! device keys its cache (and its on-disk store) by the spec, and a
//! heterogeneous device pool carries one spec per device.

use dsstc_formats::{TwoLevelBitmapMatrix, VectorLayout};
use dsstc_sim::GpuConfig;

use crate::tiling::GemmTiling;

/// Identity of a two-level bitmap encoding: the warp tiling plus the
/// condensed-vector layout of each operand.
///
/// `Eq + Hash`, so it composes directly into cache keys, and
/// [`EncodingSpec::id`] gives a stable filesystem-safe name for persisted
/// artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EncodingSpec {
    /// The GEMM tiling whose warp tiles the encoding is partitioned into.
    pub tiling: GemmTiling,
    /// Condensed-vector layout of the A (activation) operand.
    pub a_layout: VectorLayout,
    /// Condensed-vector layout of the B (weight) operand.
    pub b_layout: VectorLayout,
}

impl EncodingSpec {
    /// The encoding of the paper's SpGEMM: 32x32x16 warp tiles,
    /// column-major condensed A, row-major condensed B.
    pub fn paper() -> Self {
        EncodingSpec::for_tiling(GemmTiling::paper_spgemm())
    }

    /// The encoding `gpu`'s native kernel tiling expects (see
    /// [`GpuConfig::native_tiling`]). Operand layouts are fixed by the
    /// outer-product formulation: column-major A, row-major B.
    pub fn for_gpu(gpu: &GpuConfig) -> Self {
        EncodingSpec::for_tiling(gpu.native_tiling())
    }

    /// The outer-product encoding for an explicit tiling.
    pub fn for_tiling(tiling: GemmTiling) -> Self {
        EncodingSpec {
            tiling,
            a_layout: VectorLayout::ColumnMajor,
            b_layout: VectorLayout::RowMajor,
        }
    }

    /// Warp-tile shape of the A operand: `warp_m x warp_k`.
    pub fn a_tile(&self) -> (usize, usize) {
        self.tiling.a_tile()
    }

    /// Warp-tile shape of the B operand: `warp_k x warp_n`.
    pub fn b_tile(&self) -> (usize, usize) {
        self.tiling.b_tile()
    }

    /// Whether `enc` is an A operand under this spec (tile shape and
    /// layout both match).
    pub fn matches_a(&self, enc: &TwoLevelBitmapMatrix) -> bool {
        (enc.tile_rows(), enc.tile_cols()) == self.a_tile() && enc.layout() == self.a_layout
    }

    /// Whether `enc` is a B operand under this spec.
    pub fn matches_b(&self, enc: &TwoLevelBitmapMatrix) -> bool {
        (enc.tile_rows(), enc.tile_cols()) == self.b_tile() && enc.layout() == self.b_layout
    }

    /// Stable, filesystem-safe identifier (`<tiling-id>-<a>-<b>` with `cm` /
    /// `rm` layout suffixes), used to name persisted encoded artifacts.
    pub fn id(&self) -> String {
        let tag = |l: VectorLayout| match l {
            VectorLayout::ColumnMajor => "cm",
            VectorLayout::RowMajor => "rm",
        };
        format!("{}-{}-{}", self.tiling.id(), tag(self.a_layout), tag(self.b_layout))
    }
}

impl Default for EncodingSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::{Matrix, SparsityPattern};

    #[test]
    fn paper_spec_matches_paper_tiling_operands() {
        let spec = EncodingSpec::paper();
        assert_eq!(spec.a_tile(), (32, 16));
        assert_eq!(spec.b_tile(), (16, 32));
        assert_eq!(spec, EncodingSpec::default());
        assert_eq!(spec, EncodingSpec::for_gpu(&GpuConfig::v100()));
    }

    #[test]
    fn heterogeneous_gpus_produce_distinct_specs_and_ids() {
        let v100 = EncodingSpec::for_gpu(&GpuConfig::v100());
        let a100 = EncodingSpec::for_gpu(&GpuConfig::a100());
        assert_ne!(v100, a100);
        assert_ne!(v100.id(), a100.id());
        assert_eq!(v100.id(), "b128x128x16-w32x32x16-cm-rm");
        assert!(a100.id().chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn matches_checks_tile_shape_and_layout() {
        let spec = EncodingSpec::paper();
        let dense = Matrix::random_sparse(64, 64, 0.7, SparsityPattern::Uniform, 5);
        let b = TwoLevelBitmapMatrix::encode(&dense, 16, 32, VectorLayout::RowMajor);
        assert!(spec.matches_b(&b));
        assert!(!spec.matches_a(&b), "B tiling is not the A tiling");
        let wrong_layout = TwoLevelBitmapMatrix::encode(&dense, 16, 32, VectorLayout::ColumnMajor);
        assert!(!spec.matches_b(&wrong_layout));
        let a100 = EncodingSpec::for_gpu(&GpuConfig::a100());
        assert!(!a100.matches_b(&b), "V100 artifact must not pass as an A100 one");
    }
}
