//! Criterion bench behind Table III: wall-clock time of the three im2col
//! implementations on the ResNet-18 layer at several feature-map sparsities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc_kernels::im2col::{BitmapIm2col, CsrIm2col, DenseIm2col};
use dsstc_models::activation_feature_map;
use dsstc_tensor::ConvShape;
use std::hint::black_box;

fn bench_im2col(c: &mut Criterion) {
    // A reduced 28x28x32 version of the Table III layer keeps Criterion's
    // iteration counts reasonable; the harness binary runs the full layer.
    let shape = ConvShape::square(28, 32, 32, 3, 1, 1);
    let mut group = c.benchmark_group("table3_im2col");
    for &sparsity in &[0.0, 0.5, 0.99] {
        let input = activation_feature_map(&shape, sparsity, 42);
        let dense = DenseIm2col::new();
        group.bench_with_input(BenchmarkId::new("dense", sparsity), &input, |b, input| {
            b.iter(|| black_box(dense.lower(input, &shape)));
        });
        let csr = CsrIm2col::new();
        let csr_enc = csr.encode(&input);
        group.bench_with_input(BenchmarkId::new("csr", sparsity), &csr_enc, |b, enc| {
            b.iter(|| black_box(csr.lower(enc, &shape)));
        });
        let bitmap = BitmapIm2col::new();
        let bitmap_enc = bitmap.encode(&input);
        group.bench_with_input(BenchmarkId::new("bitmap", sparsity), &bitmap_enc, |b, enc| {
            b.iter(|| black_box(bitmap.lower(enc, &shape)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_im2col);
criterion_main!(benches);
