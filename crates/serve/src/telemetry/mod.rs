//! End-to-end telemetry for the serving stack: a lock-free metrics
//! registry with log-bucketed histograms ([`metrics`]), per-request stage
//! tracing ([`trace`]) and Prometheus-style exposition ([`export`]).
//!
//! One [`Telemetry`] hub is created per server and threaded through the
//! scheduler, dispatcher, workers and (when enabled) the wire front-end,
//! so every layer stamps the same trace and feeds the same registry. See
//! `docs/OBSERVABILITY.md` for the metric families, the trace event
//! schema and scrape examples.

pub mod export;
pub mod metrics;
pub mod trace;

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::request::Priority;

pub use self::export::render_prometheus;
#[cfg(target_os = "linux")]
pub use self::export::MetricsServer;
pub use self::metrics::{Counter, Gauge, LogHistogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use self::trace::{now_us, CacheOutcome, RequestTrace, Stage, TraceSink, STAGES};

/// The per-server telemetry hub: the metrics registry, the trace sink and
/// pre-registered hot-path handles so workers never touch the registry
/// lock while serving.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    sink: TraceSink,
    traces_recorded: Arc<Counter>,
    queue_us: Vec<Arc<LogHistogram>>,
    e2e_us: Vec<Arc<LogHistogram>>,
    execute_us: Arc<LogHistogram>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_sink(TraceSink::new())
    }
}

impl Telemetry {
    /// A hub with the in-memory trace ring only.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A hub that additionally streams chrome-trace JSONL to `path`
    /// (the `--trace-out` file).
    pub fn with_trace_out(path: &Path) -> io::Result<Self> {
        Ok(Telemetry::with_sink(TraceSink::with_output(path)?))
    }

    fn with_sink(sink: TraceSink) -> Self {
        let registry = MetricsRegistry::new();
        let traces_recorded = registry.counter(
            "dsstc_traces_recorded_total",
            "",
            "Completed request traces recorded by the sink",
        );
        let queue_us = Priority::ALL
            .iter()
            .map(|p| {
                registry.histogram(
                    "dsstc_trace_queue_us",
                    &format!("priority=\"{}\"", p.name()),
                    "Queue wait (enqueued to released) from request traces, microseconds",
                )
            })
            .collect();
        let e2e_us = Priority::ALL
            .iter()
            .map(|p| {
                registry.histogram(
                    "dsstc_trace_e2e_us",
                    &format!("priority=\"{}\"", p.name()),
                    "End-to-end latency (admitted to responded) from request traces, microseconds",
                )
            })
            .collect();
        let execute_us = registry.histogram(
            "dsstc_trace_execute_us",
            "",
            "Kernel execution span from request traces, microseconds",
        );
        Telemetry { registry, sink, traces_recorded, queue_us, e2e_us, execute_us }
    }

    /// The live metrics registry (rendered into every scrape).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The completed-trace sink.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Folds one finished trace into the latency histograms and records
    /// it with the sink. Called once per request, after its terminal
    /// stage ([`Stage::Responded`], or [`Stage::WireFlushed`] on the wire
    /// path).
    pub fn record_completed(&self, trace: RequestTrace) {
        let priority = trace.priority.unwrap_or(Priority::Normal).index();
        if let Some(us) = trace.span_us(Stage::Enqueued, Stage::Released) {
            self.queue_us[priority].record(us);
        }
        if let Some(us) = trace.span_us(Stage::Admitted, Stage::Responded) {
            self.e2e_us[priority].record(us);
        }
        if let Some(us) = trace.span_us(Stage::ExecuteStart, Stage::ExecuteEnd) {
            self.execute_us.record(us);
        }
        self.traces_recorded.inc();
        self.sink.record(trace);
    }

    /// Completed traces recorded so far (exact, unlike the bounded ring).
    pub fn traces_recorded(&self) -> u64 {
        self.traces_recorded.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_folds_completed_traces_into_histograms() {
        let telemetry = Telemetry::new();
        let mut trace = RequestTrace::new();
        trace.priority = Some(Priority::High);
        trace.record_at(Stage::Admitted, 0);
        trace.record_at(Stage::Enqueued, 10);
        trace.record_at(Stage::Released, 110);
        trace.record_at(Stage::Dispatched, 120);
        trace.record_at(Stage::CacheResolved, 130);
        trace.record_at(Stage::ExecuteStart, 140);
        trace.record_at(Stage::ExecuteEnd, 540);
        trace.record_at(Stage::Responded, 560);
        telemetry.record_completed(trace);

        assert_eq!(telemetry.traces_recorded(), 1);
        assert_eq!(telemetry.sink().len(), 1);
        let queue = &telemetry.queue_us[Priority::High.index()];
        let (lower, upper) = queue.quantile_bounds(0.5).expect("queue span recorded");
        assert!(lower <= 100 && 100 < upper);
        let (lower, upper) = telemetry.execute_us.quantile_bounds(0.5).expect("execute span");
        assert!(lower <= 400 && 400 < upper);
        // The histograms surface in the registry render.
        let mut out = String::new();
        telemetry.registry().render(&mut out);
        assert!(out.contains("dsstc_trace_e2e_us_count{priority=\"high\"} 1"));
        assert!(out.contains("dsstc_traces_recorded_total 1"));
    }

    #[test]
    fn partial_traces_only_feed_recorded_spans() {
        let telemetry = Telemetry::new();
        let mut trace = RequestTrace::new();
        trace.record_at(Stage::Admitted, 0);
        trace.record_at(Stage::Responded, 50);
        telemetry.record_completed(trace);
        assert_eq!(telemetry.e2e_us[Priority::Normal.index()].count(), 1);
        assert_eq!(telemetry.queue_us[Priority::Normal.index()].count(), 0);
        assert_eq!(telemetry.execute_us.count(), 0);
    }
}
