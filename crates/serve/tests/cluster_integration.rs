//! End-to-end tests of cluster-scale serving: a real 3-node loopback
//! cluster with consistent-hash sharding, replica groups, hello/shard-map
//! exchange, `NotMine` redirects, peer liveness and client failover.
//!
//! The acceptance bar mirrors `docs/CLUSTER.md`: the cluster serves a full
//! sweep **bit-identical** to a single-node baseline, and killing a node
//! mid-load loses no acknowledged request (inference is deterministic, so
//! the client's resends are idempotent).
#![cfg(target_os = "linux")]

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use dsstc_serve::cluster::shard_hash;
use dsstc_serve::net::{ClusterClient, WireClient, WireServer, WireStatus};
use dsstc_serve::{ClusterConfig, InferRequest, ModelId, Priority, ServeConfig};
use dsstc_tensor::{Matrix, SparsityPattern};

const PROXY_DIM: usize = 32;
const RING_SEED: u64 = 0x5EED;

fn features(seed: u64) -> Matrix {
    Matrix::random_sparse(2, PROXY_DIM, 0.4, SparsityPattern::Uniform, seed)
}

/// The sweep workload: 12 distinct shard keys (model and sparsity both
/// derived from `seed % 12`), so routing spreads over the whole ring
/// instead of a couple of shards.
fn request(seed: u64) -> InferRequest {
    let model = if seed.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
    let priority = if seed.is_multiple_of(4) { Priority::High } else { Priority::Normal };
    let sparsity = 0.50 + (seed % 12) as f64 * 0.04;
    InferRequest::new(model, features(seed)).with_priority(priority).with_weight_sparsity(sparsity)
}

/// A finer key generator for ring searches: up to 100 distinct shard keys,
/// so "a shard whose owner group excludes node N" always exists.
fn probe_request(n: u64) -> InferRequest {
    let model = if n.is_multiple_of(2) { ModelId::RnnLm } else { ModelId::BertBase };
    let sparsity = 0.50 + (n % 50) as f64 * 0.01;
    InferRequest::new(model, features(n)).with_weight_sparsity(sparsity)
}

/// Reserves `n` distinct loopback ports by binding them all at once, then
/// releasing; nodes must know each other's addresses before any of them
/// binds, so OS-assigned ports cannot be used directly.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("bound addr")).collect()
}

/// Boots an `n`-node loopback cluster, returning the servers and their
/// addresses. `ping` controls the liveness cadence: fast for failover
/// tests, effectively-off for tests that drive liveness by hand.
fn start_cluster(
    n: usize,
    replication: usize,
    ping: Duration,
) -> (Vec<WireServer>, Vec<SocketAddr>) {
    let addrs = free_addrs(n);
    let servers = (0..n)
        .map(|i| {
            let peers: Vec<(u16, String)> =
                (0..n).filter(|&j| j != i).map(|j| (j as u16, addrs[j].to_string())).collect();
            let cluster = ClusterConfig::new(i as u16, addrs[i].to_string(), peers)
                .with_replication(replication)
                .with_seed(RING_SEED)
                .with_ping(ping, 2);
            WireServer::start(
                ServeConfig::default()
                    .with_listen(addrs[i])
                    .with_max_queue_wait(Duration::from_millis(1))
                    .with_proxy_dim(PROXY_DIM)
                    .with_reactors(1)
                    .with_cluster(cluster),
            )
            .expect("bind cluster node")
        })
        .collect();
    (servers, addrs)
}

#[test]
fn three_node_cluster_serves_a_sweep_bit_identical_to_a_single_node() {
    let (mut servers, addrs) = start_cluster(3, 2, Duration::from_millis(200));
    let mut baseline = WireServer::start(
        ServeConfig::default()
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM),
    )
    .expect("bind baseline");

    let mut client = ClusterClient::connect(&addrs).expect("cluster hello");
    assert_eq!(client.map().nodes.len(), 3);
    assert_eq!(client.map().replication, 2);

    for seed in 0..24u64 {
        let clustered = client.infer(&request(seed)).expect("served by the cluster");
        let single = baseline.server().infer(request(seed)).expect("baseline");
        assert_eq!(clustered.output, single.output, "seed {seed}");
        assert_eq!(clustered.model, single.model);
    }
    // Routing by key means zero redirects when client and servers share a
    // map version — the common case this sweep exercises.
    assert_eq!(client.redirects_followed(), 0, "shared map version routes first-try");
    assert_eq!(client.failovers(), 0);

    // The load actually spread: every request was served by exactly one
    // node, and every node attaches cluster stats to its snapshot.
    let mut served_total = 0;
    let mut serving_nodes = 0;
    for server in &servers {
        let stats = server.stats();
        let cluster = stats.cluster.expect("cluster stats attached");
        assert_eq!(cluster.peers_total, 3);
        served_total += stats.completed_requests;
        serving_nodes += u32::from(stats.completed_requests > 0);
    }
    assert_eq!(served_total, 24);
    assert!(serving_nodes >= 2, "8 shards over 3 nodes must not collapse onto one");
    for server in &mut servers {
        server.shutdown();
    }
    baseline.shutdown();
}

#[test]
fn a_misrouted_request_redirects_with_the_owning_replica_group() {
    // Liveness driven by hand below; park the pingers out of the way.
    let (mut servers, addrs) = start_cluster(3, 2, Duration::from_secs(3600));
    // Hand-route with a plain WireClient so we can aim a request at a node
    // that does *not* own its shard.
    let mut probe = WireClient::connect(addrs[0]).expect("connect node 0");
    let map = probe.hello(None).expect("map");
    let ring = map.ring();

    let (misrouted, owners) = (0..100u64)
        .find_map(|n| {
            let owners = ring.replicas(shard_hash(&probe_request(n).key()), 2);
            (!owners.contains(&0)).then_some((n, owners))
        })
        .expect("some shard excludes node 0");

    let id = probe.send(&probe_request(misrouted)).expect("send misrouted");
    let response = probe.recv().expect("redirect frame");
    assert_eq!(response.id, id);
    assert_eq!(response.status, WireStatus::NotMine);
    assert!(response.message.starts_with("owners="), "{}", response.message);
    assert!(response.message.ends_with(";version=1"), "{}", response.message);
    for owner in &owners {
        let addr = map.addr_of(*owner).expect("owner addr");
        assert!(response.message.contains(addr), "{} missing {addr}", response.message);
    }
    // Redirects are routing, not errors: the connection survives and an
    // owned shard still serves on it.
    let owned = (0..100u64)
        .find(|n| ring.replicas(shard_hash(&probe_request(*n).key()), 2).contains(&0))
        .expect("some shard includes node 0");
    probe.infer(&probe_request(owned)).expect("owned shard serves");
    let cluster = servers[0].stats().cluster.expect("cluster stats");
    assert_eq!(cluster.redirects, 1);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn a_stale_client_follows_redirects_after_a_membership_change() {
    // Replication 1 (single owner per shard) and hand-driven liveness make
    // the redirect deterministic.
    let (mut servers, addrs) = start_cluster(3, 1, Duration::from_secs(3600));
    let mut client = ClusterClient::connect(&addrs).expect("cluster hello");
    assert_eq!(client.map().version, 1);

    // A shard owned by node 2 under the version-1 map.
    let ring = client.map().ring();
    let n = (0..100u64)
        .find(|n| ring.primary(shard_hash(&probe_request(*n).key())) == Some(2))
        .expect("node 2 owns some shard");
    client.infer(&probe_request(n)).expect("owner serves, no redirect");
    assert_eq!(client.redirects_followed(), 0);

    // Membership change behind the client's back: every node (including 2
    // itself) marks node 2 dead, so the shard moves to a survivor and the
    // map version bumps to 2 fleet-wide.
    for server in &servers {
        assert!(server.cluster().expect("cluster state").set_alive(2, false));
    }

    // The client still routes by its version-1 map, dialling node 2 — which
    // answers `NotMine` naming the new owner; the client follows the
    // redirect and is served, all inside one infer() call.
    client.infer(&probe_request(n)).expect("redirect followed to the new owner");
    assert_eq!(client.redirects_followed(), 1);
    let redirecting = servers[2].stats().cluster.expect("cluster stats");
    assert_eq!(redirecting.redirects, 1);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn killing_a_node_mid_load_loses_no_acknowledged_request() {
    let (mut servers, addrs) = start_cluster(3, 2, Duration::from_millis(100));
    let mut client = ClusterClient::connect(&addrs).expect("cluster hello");

    // Shards whose primary is node 2: these are the requests the kill puts
    // in harm's way (3 distinct keys keeps the encode bill bounded).
    let ring = client.map().ring();
    let endangered: Vec<u64> = (0..200u64)
        .filter(|n| ring.primary(shard_hash(&probe_request(*n).key())) == Some(2))
        .take(3)
        .collect();
    assert!(!endangered.is_empty(), "node 2 must own something under seed {RING_SEED:#x}");

    // Acknowledged answers with all three nodes up.
    let before: Vec<(u64, Matrix)> = endangered
        .iter()
        .map(|&n| (n, client.infer(&probe_request(n)).expect("served pre-kill").output))
        .collect();

    // Kill the primary under load.
    servers[2].shutdown();

    // Every resend is answered by the surviving replica, bit-identically:
    // no acknowledged request (nor its deterministic answer) is lost.
    for (n, acknowledged) in &before {
        let again = client.infer(&probe_request(*n)).expect("served despite the kill");
        assert_eq!(&again.output, acknowledged, "probe {n}");
    }
    assert!(client.failovers() >= 1, "the dead primary forced at least one failover");
    // Unendangered traffic is untouched.
    for seed in 0..8u64 {
        client.infer(&request(seed)).expect("served during the outage");
    }

    // The survivors' pingers notice the death: their maps bump past
    // version 1 and shrink to 2 alive members.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let settled = servers[..2].iter().all(|server| {
            let map = server.cluster().expect("cluster state").map();
            map.alive_count() == 2 && map.version > 1
        });
        if settled {
            break;
        }
        assert!(Instant::now() < deadline, "survivors never marked the dead node");
        std::thread::sleep(Duration::from_millis(20));
    }
    for server in &servers[..2] {
        let cluster = server.stats().cluster.expect("cluster stats");
        assert_eq!(cluster.peers_alive, 2, "node {}: {cluster:?}", cluster.node_id);
        assert!(cluster.shard_map_version > 1, "death bumps the map version: {cluster:?}");
        assert!(cluster.peer_probes > 0);
        assert!(cluster.peer_failures > 0);
    }
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn cluster_metrics_expose_the_dsstc_cluster_families() {
    use std::io::{Read, Write};
    let addrs = free_addrs(1);
    let metrics_bind: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
    let cluster = ClusterConfig::new(0, addrs[0].to_string(), Vec::new()).with_seed(RING_SEED);
    let mut server = WireServer::start(
        ServeConfig::default()
            .with_listen(addrs[0])
            .with_max_queue_wait(Duration::from_millis(1))
            .with_proxy_dim(PROXY_DIM)
            .with_metrics_addr(metrics_bind)
            .with_cluster(cluster),
    )
    .expect("bind node");
    let mut client = WireClient::connect(addrs[0]).expect("connect");
    client.hello(None).expect("hello");
    client.infer(&request(0)).expect("served");

    let mut stream = std::net::TcpStream::connect(server.metrics_addr().expect("metrics bound"))
        .expect("scrape");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send scrape");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape");
    for family in [
        "dsstc_cluster_shard_map_version{node=\"0\"}",
        "dsstc_cluster_peers_alive{node=\"0\"}",
        "dsstc_cluster_peers_total{node=\"0\"}",
        "dsstc_cluster_redirects_total{node=\"0\"}",
        "dsstc_cluster_failover_serves_total{node=\"0\"}",
        "dsstc_cluster_hellos_total{node=\"0\"}",
        "dsstc_cluster_auth_failures_total{node=\"0\"}",
        "dsstc_cluster_peer_probes_total{node=\"0\"}",
        "dsstc_cluster_peer_failures_total{node=\"0\"}",
    ] {
        assert!(body.contains(family), "scrape missing {family}");
    }
    assert!(body.contains("dsstc_cluster_hellos_total{node=\"0\"} 1"), "hello counted");
    server.shutdown();
}
