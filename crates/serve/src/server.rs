//! The serving front-end tying queue, repository, timing model, workers and
//! stats together.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batcher::{BatchPolicy, BatchScheduler, PendingRequest};
use crate::config::ServeConfig;
use crate::dispatch::DeviceDispatcher;
use crate::repository::ModelRepository;
use crate::request::{InferRequest, InferResponse, Priority};
use crate::stats::{ServerStats, StatsCollector};
use crate::telemetry::{RequestTrace, Stage, Telemetry};
use crate::worker::{WorkerContext, WorkerPool};

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request was malformed (wrong feature width, empty features...).
    InvalidRequest(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A bounded wait elapsed before the response arrived.
    Timeout,
    /// Admission control shed the request: the projected queue delay for
    /// its priority class exhausted the class's SLO headroom (or the hard
    /// queue bound was hit). Retry later, or at a higher priority.
    ShedLoad {
        /// The class the request was shed from.
        priority: Priority,
        /// The modelled queue delay the request was projected to see, µs.
        projected_us: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Timeout => f.write_str("timed out waiting for the response"),
            ServeError::ShedLoad { priority, projected_us } => write!(
                f,
                "load shed: projected queue delay {projected_us} us exhausts the {} class's \
                 SLO headroom",
                priority.name()
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Handle to a submitted request; resolves to its [`InferResponse`].
#[derive(Debug)]
pub struct PendingResponse {
    id: u64,
    rx: Receiver<InferResponse>,
}

impl PendingResponse {
    /// The server-assigned request id (matches the eventual response's).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }

    /// Blocks up to `timeout` for the response.
    ///
    /// On timeout the handle is returned so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferResponse, (Self, ServeError)> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(RecvTimeoutError::Timeout) => Err((self, ServeError::Timeout)),
            Err(RecvTimeoutError::Disconnected) => Err((self, ServeError::ShuttingDown)),
        }
    }
}

/// A batched, multi-threaded inference server over the dual-side sparse
/// Tensor Core stack.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct InferenceServer {
    config: ServeConfig,
    context: Arc<WorkerContext>,
    pool: Option<WorkerPool>,
    next_id: AtomicU64,
}

impl InferenceServer {
    /// Boots the server: builds the shared state (one encoding spec, timing
    /// model and kernel per pooled device; the repository optionally backed
    /// by a persistent `encode_cache_dir`) and spawns the dispatcher plus
    /// one pinned worker per device. Models are encoded lazily on their
    /// first request — or restored from the on-disk store when a previous
    /// run already encoded them.
    pub fn start(config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "batches need at least one request");
        let mut repository =
            ModelRepository::new(config.devices.primary().clone(), config.proxy_dim)
                .with_budget(config.encode_cache_budget)
                .with_store_budget(config.encode_store_budget);
        if let Some(dir) = &config.encode_cache_dir {
            repository = repository.with_disk_cache(dir.clone());
        }
        let repository = Arc::new(repository);
        let dispatcher = Arc::new(DeviceDispatcher::new(&config.devices, config.dispatch));
        if repository.disk_cache_dir().is_some() {
            // Boot-time warmer: restore (heal, or re-encode for the current
            // pool) every persisted artifact before the first request, so a
            // restarted server's first lookup is a memory hit.
            let mut specs: Vec<crate::EncodingSpec> = Vec::new();
            for &spec in dispatcher.specs() {
                if !specs.contains(&spec) {
                    specs.push(spec);
                }
            }
            let _ = repository.warm_boot(&specs, config.warm_boot_threads);
        }
        let kernels = WorkerContext::kernels_for(&repository, &dispatcher, config.execute_threads);
        let telemetry = match &config.trace_out {
            Some(path) => Telemetry::with_trace_out(path)
                .unwrap_or_else(|e| panic!("cannot open trace output {}: {e}", path.display())),
            None => Telemetry::new(),
        };
        let context = Arc::new(WorkerContext {
            scheduler: Arc::new(BatchScheduler::new(BatchPolicy {
                max_batch: config.max_batch,
                max_queue_wait: config.max_queue_wait,
            })),
            repository,
            dispatcher,
            stats: Arc::new(StatsCollector::new()),
            telemetry: Arc::new(telemetry),
            kernels,
        });
        let pool = WorkerPool::spawn(Arc::clone(&context));
        InferenceServer { config, context, pool: Some(pool), next_id: AtomicU64::new(0) }
    }

    /// The configuration the server was booted with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::len)
    }

    /// The model repository (exposed for warm-up and inspection).
    pub fn repository(&self) -> &Arc<ModelRepository> {
        &self.context.repository
    }

    /// Requests currently waiting in the batching queue.
    pub fn queue_len(&self) -> usize {
        self.context.scheduler.queue_len()
    }

    /// Warm-up: loads, prunes and pre-encodes `model` at `weight_sparsity`
    /// for **every distinct device encoding in the pool** (restoring from
    /// the persistent store when possible) and pre-prices every batch
    /// bucket on every pooled device, so no live request pays the one-time
    /// encode or pricing cost. Returns the total milliseconds spent
    /// obtaining the artifacts (zero-ish when everything was already
    /// cached; disk restores cost a fraction of a fresh encode).
    pub fn warm_model(&self, model: crate::ModelId, weight_sparsity: Option<f64>) -> f64 {
        let key = crate::ModelKey::new(model, weight_sparsity);
        let mut warmed: Vec<crate::EncodingSpec> = Vec::new();
        let mut total_ms = 0.0;
        for device in 0..self.context.dispatcher.len() {
            let spec = self.context.dispatcher.spec(device);
            let encoded = self.context.repository.get_for(key, spec);
            if !warmed.contains(&spec) {
                warmed.push(spec);
                total_ms += encoded.encode_ms;
            }
            self.context.dispatcher.timing(device).warm(&encoded, self.config.max_batch);
        }
        total_ms
    }

    /// Enqueues a request; the returned handle resolves to its response.
    pub fn submit(&self, request: InferRequest) -> Result<PendingResponse, ServeError> {
        let (tx, rx) = std::sync::mpsc::channel();
        let id = self.submit_with(request, tx)?;
        Ok(PendingResponse { id, rx })
    }

    /// Enqueues a request whose response goes to a caller-supplied channel
    /// (several requests may share one channel — the TCP front-end funnels
    /// every wire request into a single completion stream this way).
    /// Returns the server-assigned id the response will carry.
    pub fn submit_with(
        &self,
        request: InferRequest,
        response_tx: std::sync::mpsc::Sender<InferResponse>,
    ) -> Result<u64, ServeError> {
        self.submit_with_trace(request, response_tx, RequestTrace::new())
    }

    /// [`Self::submit_with`] continuing a caller-started [`RequestTrace`]
    /// (the TCP front-end stamps the wire-decode stage before submitting).
    /// The admission stage, id, model and priority are stamped here.
    pub fn submit_with_trace(
        &self,
        request: InferRequest,
        response_tx: std::sync::mpsc::Sender<InferResponse>,
        mut trace: RequestTrace,
    ) -> Result<u64, ServeError> {
        let expected = self.context.repository.input_dim();
        if request.features.cols() != expected {
            return Err(ServeError::InvalidRequest(format!(
                "features have {} columns, the server's proxy dimension is {expected}",
                request.features.cols()
            )));
        }
        if let Some(policy) = &self.config.admission {
            let queued = self.context.scheduler.queue_len();
            let projected_us = self.projected_queue_delay_us(request.key(), request.priority);
            if policy.should_shed(request.priority, projected_us, queued) {
                self.context.stats.record_shed(request.priority);
                return Err(ServeError::ShedLoad {
                    priority: request.priority,
                    projected_us: projected_us.round() as u64,
                });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        trace.id = id;
        trace.model = Some(request.model);
        trace.priority = Some(request.priority);
        trace.record(Stage::Admitted);
        let pending = PendingRequest {
            id,
            key: request.key(),
            priority: request.priority,
            slo: request.deadline,
            features: request.features,
            response_tx,
            enqueued: Instant::now(),
            trace,
        };
        if !self.context.scheduler.enqueue(pending) {
            return Err(ServeError::ShuttingDown);
        }
        Ok(id)
    }

    /// Convenience: submit and block for the response.
    pub fn infer(&self, request: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Modelled queue delay a newly admitted request of `priority` for
    /// `key` would see: the requests queued at or above its priority
    /// (everything the batcher extracts before it), spread across the
    /// pool, each priced at the key's modelled unit cost. Driven entirely
    /// by the [`crate::BatchTimingModel`] — deterministic, no wall clock —
    /// which is what makes the admission decision testable.
    pub fn projected_queue_delay_us(&self, key: crate::ModelKey, priority: Priority) -> f64 {
        let depths = self.context.scheduler.queue_depths();
        let ahead: usize = depths[priority.index()..].iter().sum();
        if ahead == 0 {
            return 0.0;
        }
        let unit_us = self.context.dispatcher.unit_cost_us(key);
        ahead as f64 * unit_us / self.context.dispatcher.len() as f64
    }

    /// A point-in-time metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.context.stats.snapshot(
            self.context.repository.counters(),
            self.context.dispatcher.timing_hit_rate(),
            self.context.dispatcher.names(),
        )
    }

    /// The batch-to-device dispatcher (exposed for inspection: per-device
    /// timing models, modelled backlog horizons and makespan).
    pub fn dispatcher(&self) -> &Arc<DeviceDispatcher> {
        &self.context.dispatcher
    }

    /// The telemetry hub: the live metrics registry and the completed
    /// request-trace sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.context.telemetry
    }

    /// Stops accepting requests, drains the queue and joins the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.context.scheduler.shutdown();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use dsstc_tensor::Matrix;

    fn tiny_server(workers: usize, max_batch: usize) -> InferenceServer {
        InferenceServer::start(
            ServeConfig::default()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_max_queue_wait(Duration::from_millis(1))
                .with_proxy_dim(32),
        )
    }

    fn features(seed: u64) -> Matrix {
        Matrix::random_sparse(2, 32, 0.4, dsstc_tensor::SparsityPattern::Uniform, seed)
    }

    #[test]
    fn infer_round_trips_one_request() {
        let server = tiny_server(1, 4);
        let response =
            server.infer(InferRequest::new(ModelId::BertBase, features(1))).expect("served");
        assert_eq!(response.output.rows(), 2);
        assert_eq!(response.output.cols(), 32);
        assert_eq!(response.model, ModelId::BertBase);
        assert!(response.queue_us >= 0.0);
        assert!(response.execute_us > 0.0);
        assert!(response.modelled_batch_us > 0.0);
    }

    #[test]
    fn submit_validates_feature_shape() {
        let server = tiny_server(1, 2);
        let bad_width = InferRequest::new(ModelId::RnnLm, Matrix::zeros(2, 16));
        assert!(matches!(server.submit(bad_width), Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn shutdown_rejects_new_requests_and_is_idempotent() {
        let mut server = tiny_server(1, 2);
        server.shutdown();
        server.shutdown();
        assert_eq!(server.worker_count(), 0);
        assert!(matches!(
            server.submit(InferRequest::new(ModelId::BertBase, features(2))),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn stats_reflect_served_requests_and_cache_hits() {
        let server = tiny_server(2, 4);
        let pending: Vec<_> = (0..8)
            .map(|i| {
                server.submit(InferRequest::new(ModelId::BertBase, features(i))).expect("queued")
            })
            .collect();
        for p in pending {
            p.wait().expect("response");
        }
        let stats = server.stats();
        assert_eq!(stats.completed_requests, 8);
        assert!(stats.executed_batches >= 2);
        assert!(stats.mean_batch_size >= 1.0);
        // One miss (first batch encodes), the rest hit.
        assert_eq!(stats.encode_misses, 1);
        assert!(stats.encode_hits >= 1);
        assert!(stats.encode_hit_rate > 0.0);
        assert!(stats.throughput_rps > 0.0);
    }

    #[test]
    fn pending_response_ids_match_responses() {
        let server = tiny_server(1, 2);
        let pending =
            server.submit(InferRequest::new(ModelId::RnnLm, features(7))).expect("queued");
        let id = pending.id();
        let response = pending.wait().expect("response");
        assert_eq!(response.id, id);
    }

    #[test]
    fn responses_carry_priority_and_device() {
        use crate::request::Priority;
        let server = tiny_server(2, 2);
        let request = InferRequest::new(ModelId::RnnLm, features(9))
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(1));
        let response = server.infer(request).expect("served");
        assert_eq!(response.priority, Priority::High);
        assert!(response.device < server.worker_count());
        let stats = server.stats();
        assert_eq!(stats.for_priority(Priority::High).completed, 1);
        assert_eq!(stats.per_device.len(), 2);
        assert!(stats.modelled_makespan_us > 0.0);
    }

    #[test]
    fn shed_load_error_names_the_class_and_the_projection() {
        let e = ServeError::ShedLoad { priority: Priority::Low, projected_us: 1234 };
        let text = e.to_string();
        assert!(text.contains("1234 us"), "{text}");
        assert!(text.contains("low"), "{text}");
    }

    #[test]
    fn projected_queue_delay_is_zero_on_an_idle_server() {
        let server = tiny_server(1, 4);
        let key = crate::ModelKey::new(ModelId::BertBase, None);
        assert_eq!(server.projected_queue_delay_us(key, Priority::Low), 0.0);
        assert_eq!(server.projected_queue_delay_us(key, Priority::High), 0.0);
    }

    #[test]
    fn admission_sheds_low_priority_once_the_queue_exhausts_its_slo() {
        use crate::config::AdmissionControl;
        // One worker, batches of 8, a long batching window: submitted
        // requests sit visibly in the queue while we probe admission.
        // The low class gets a 1 us SLO (any backlog sheds it); normal and
        // high get an hour (projection never sheds them).
        let hour = Duration::from_secs(3600);
        let server = InferenceServer::start(
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(8)
                .with_max_queue_wait(Duration::from_millis(500))
                .with_proxy_dim(32)
                .with_admission_control(AdmissionControl::new(
                    [Duration::from_micros(1), hour, hour],
                    1.0,
                    10_000,
                )),
        );
        let mut pending = Vec::new();
        for seed in 0..3 {
            let request = InferRequest::new(ModelId::BertBase, features(seed))
                .with_priority(Priority::Normal);
            pending.push(server.submit(request).expect("normal class has headroom"));
        }
        assert!(server.queue_len() > 0, "requests should still be queued");
        let low = InferRequest::new(ModelId::BertBase, features(10)).with_priority(Priority::Low);
        match server.submit(low) {
            Err(ServeError::ShedLoad { priority, projected_us }) => {
                assert_eq!(priority, Priority::Low);
                assert!(projected_us > 0, "a non-empty queue projects a positive delay");
            }
            other => panic!("expected ShedLoad, got {other:?}"),
        }
        // High priority is never shed by projection.
        let high = InferRequest::new(ModelId::BertBase, features(11)).with_priority(Priority::High);
        pending.push(server.submit(high).expect("high class is projection-proof"));
        let stats = server.stats();
        assert_eq!(stats.total_shed(), 1);
        assert_eq!(stats.for_priority(Priority::Low).shed, 1);
        assert_eq!(stats.for_priority(Priority::High).shed, 0);
        for p in pending {
            p.wait().expect("admitted requests complete");
        }
    }

    #[test]
    fn the_queue_bound_sheds_every_class_even_high() {
        use crate::config::AdmissionControl;
        let hour = Duration::from_secs(3600);
        let server = InferenceServer::start(
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(8)
                .with_max_queue_wait(Duration::from_millis(500))
                .with_proxy_dim(32)
                .with_admission_control(AdmissionControl::new([hour, hour, hour], 1.0, 2)),
        );
        let mut pending = Vec::new();
        for seed in 0..2 {
            let request =
                InferRequest::new(ModelId::BertBase, features(seed)).with_priority(Priority::High);
            pending.push(server.submit(request).expect("under the bound"));
        }
        let over = InferRequest::new(ModelId::BertBase, features(5)).with_priority(Priority::High);
        match server.submit(over) {
            Err(ServeError::ShedLoad { priority, .. }) => assert_eq!(priority, Priority::High),
            other => panic!("expected ShedLoad, got {other:?}"),
        }
        assert_eq!(server.stats().for_priority(Priority::High).shed, 1);
        for p in pending {
            p.wait().expect("admitted requests complete");
        }
    }

    #[test]
    fn a_restarted_server_warm_boots_and_skips_the_fresh_encode() {
        let dir = std::env::temp_dir().join(format!(
            "dsstc-server-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(2)
                .with_max_queue_wait(Duration::from_millis(1))
                .with_proxy_dim(32)
                .with_encode_cache_dir(&dir)
        };
        {
            let cold = InferenceServer::start(config());
            cold.infer(InferRequest::new(ModelId::RnnLm, features(1))).expect("served");
            let stats = cold.stats();
            assert_eq!(stats.encode_fresh, 1, "first run pays the encode");
            assert_eq!(stats.encode_warm_restored, 0, "nothing to warm on an empty store");
        }
        let warm = InferenceServer::start(config());
        let booted = warm.stats();
        assert_eq!(booted.encode_warm_restored, 1, "the artifact is restored at boot");
        assert!(booted.store_entries >= 1);
        warm.infer(InferRequest::new(ModelId::RnnLm, features(2))).expect("served");
        let stats = warm.stats();
        assert_eq!(stats.encode_fresh, 0, "the warmed artifact serves from memory");
        assert!(stats.encode_hits >= 1);
        drop(warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heterogeneous_pool_is_reported_in_stats() {
        use crate::config::DevicePool;
        use dsstc_sim::GpuConfig;
        let server = InferenceServer::start(
            ServeConfig::default()
                .with_devices(DevicePool::new(vec![GpuConfig::v100(), GpuConfig::a100()]))
                .with_max_batch(2)
                .with_max_queue_wait(Duration::from_millis(1))
                .with_proxy_dim(32),
        );
        for seed in 0..6 {
            server.infer(InferRequest::new(ModelId::RnnLm, features(seed))).expect("served");
        }
        let stats = server.stats();
        assert_eq!(stats.per_device.len(), 2);
        assert_eq!(stats.per_device[0].name, "Tesla V100");
        assert_eq!(stats.per_device[1].name, "A100");
        let executed: u64 = stats.per_device.iter().map(|d| d.batches).sum();
        assert_eq!(executed, stats.executed_batches);
    }
}
