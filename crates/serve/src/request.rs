//! Request / response types of the serving runtime.

use dsstc_models::{networks, Network};
use dsstc_tensor::Matrix;

/// The served model catalogue: the paper's five evaluated networks plus
/// ResNet-50 (the classic serving workload).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// VGG-16 (AGP-pruned CNN).
    Vgg16,
    /// ResNet-18 (AGP-pruned CNN).
    ResNet18,
    /// ResNet-50 (AGP-pruned CNN).
    ResNet50,
    /// Mask R-CNN (AGP-pruned CNN, COCO resolution).
    MaskRcnn,
    /// BERT-base encoder (movement-pruned GEMM stack).
    BertBase,
    /// 2+4-layer LSTM language model (AGP-pruned GEMM stack).
    RnnLm,
}

impl ModelId {
    /// Every served model.
    pub const ALL: [ModelId; 6] = [
        ModelId::Vgg16,
        ModelId::ResNet18,
        ModelId::ResNet50,
        ModelId::MaskRcnn,
        ModelId::BertBase,
        ModelId::RnnLm,
    ];

    /// Human-readable name (matches the underlying network table).
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::Vgg16 => "VGG-16",
            ModelId::ResNet18 => "ResNet-18",
            ModelId::ResNet50 => "ResNet-50",
            ModelId::MaskRcnn => "Mask R-CNN",
            ModelId::BertBase => "BERT-base encoder",
            ModelId::RnnLm => "RNN",
        }
    }

    /// The layer table the timing model charges for this model.
    pub fn network(&self) -> Network {
        match self {
            ModelId::Vgg16 => networks::vgg16(),
            ModelId::ResNet18 => networks::resnet18(),
            ModelId::ResNet50 => networks::resnet50(),
            ModelId::MaskRcnn => networks::mask_rcnn(),
            ModelId::BertBase => networks::bert_base(),
            ModelId::RnnLm => networks::rnn_lm(),
        }
    }

    /// Whether the functional proxy applies ReLU between layers (the CNNs;
    /// the GELU/sigmoid-based NLP models produce near-dense activations).
    pub fn uses_relu(&self) -> bool {
        !matches!(self, ModelId::BertBase | ModelId::RnnLm)
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// The encode-cache key: a model pruned to one weight-sparsity level.
///
/// Sparsity is stored in permille so the key is `Eq + Hash`; `None` means
/// "the per-layer sparsities of the published table".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Which model.
    pub model: ModelId,
    /// Uniform weight-sparsity override in permille, if any.
    pub sparsity_permille: Option<u16>,
}

impl ModelKey {
    /// Builds the key for a model and an optional uniform weight-sparsity
    /// override in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the override is outside `[0, 1]`.
    pub fn new(model: ModelId, weight_sparsity: Option<f64>) -> Self {
        let sparsity_permille = weight_sparsity.map(|s| {
            assert!((0.0..=1.0).contains(&s), "weight sparsity must be in [0,1]");
            (s * 1000.0).round() as u16
        });
        ModelKey { model, sparsity_permille }
    }

    /// The sparsity override as a fraction, if any.
    pub fn weight_sparsity(&self) -> Option<f64> {
        self.sparsity_permille.map(|p| f64::from(p) / 1000.0)
    }
}

/// One inference request.
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// Which model to run.
    pub model: ModelId,
    /// Optional uniform weight-sparsity override (e.g. serve the same model
    /// pruned to several levels); `None` uses the published per-layer table.
    pub weight_sparsity: Option<f64>,
    /// Input features: one row per sample/token, `proxy_dim` columns.
    pub features: Matrix,
}

impl InferRequest {
    /// A request against the published sparsity table.
    pub fn new(model: ModelId, features: Matrix) -> Self {
        InferRequest { model, weight_sparsity: None, features }
    }

    /// Sets a uniform weight-sparsity override.
    pub fn with_weight_sparsity(mut self, sparsity: f64) -> Self {
        self.weight_sparsity = Some(sparsity);
        self
    }

    /// The encode-cache key this request maps to.
    pub fn key(&self) -> ModelKey {
        ModelKey::new(self.model, self.weight_sparsity)
    }
}

/// One completed inference.
#[derive(Clone, Debug)]
pub struct InferResponse {
    /// The id [`crate::InferenceServer::submit`] returned for the request.
    pub id: u64,
    /// Which model ran.
    pub model: ModelId,
    /// Output features (same row count as the request's input).
    pub output: Matrix,
    /// Wall-clock time the request waited in the batching queue, µs.
    pub queue_us: f64,
    /// Wall-clock time the worker spent executing the whole batch, µs.
    pub execute_us: f64,
    /// Modelled dual-side sparse Tensor Core time of the whole batch at the
    /// network's real layer shapes, µs.
    pub modelled_batch_us: f64,
    /// The batch's modelled time divided by its size: this request's
    /// amortised modelled latency, µs.
    pub modelled_request_us: f64,
    /// How many requests were merged into the executing batch.
    pub batch_size: usize,
    /// Index of the worker thread that executed the batch.
    pub worker: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_match_network_tables() {
        for id in ModelId::ALL {
            assert_eq!(id.name(), id.network().name());
        }
    }

    #[test]
    fn relu_only_for_conv_models() {
        for id in ModelId::ALL {
            assert_eq!(id.uses_relu(), id.network().has_conv_layers(), "{id}");
        }
    }

    #[test]
    fn model_key_quantises_sparsity() {
        let a = ModelKey::new(ModelId::BertBase, Some(0.9004));
        let b = ModelKey::new(ModelId::BertBase, Some(0.9));
        assert_eq!(a, b);
        assert_eq!(a.weight_sparsity(), Some(0.9));
        assert_eq!(ModelKey::new(ModelId::BertBase, None).weight_sparsity(), None);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_override_panics() {
        let _ = ModelKey::new(ModelId::Vgg16, Some(1.5));
    }

    #[test]
    fn request_key_reflects_override() {
        let m = Matrix::zeros(4, 64);
        let r = InferRequest::new(ModelId::ResNet50, m.clone());
        assert_eq!(r.key(), ModelKey::new(ModelId::ResNet50, None));
        let r = InferRequest::new(ModelId::ResNet50, m).with_weight_sparsity(0.8);
        assert_eq!(r.key(), ModelKey::new(ModelId::ResNet50, Some(0.8)));
    }
}
