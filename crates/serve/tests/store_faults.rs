//! Fault-injection property tests for the on-disk encoding store.
//!
//! Every case doctors a freshly seeded store — truncating, bit-flipping or
//! zeroing the artifact or the manifest at an arbitrary offset — then
//! proves the lifecycle self-heals: warm boot and lookups never panic,
//! corrupt artifacts fall back to a fresh encode and are rewritten, the
//! manifest is rebuilt, and the bytes served always match a clean encode.
//!
//! Case count honours `PROPTEST_CASES` (CI runs the suite in release mode
//! with 64 cases).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dsstc_serve::{CacheBudget, EncodingSpec, ModelId, ModelKey, ModelRepository};
use dsstc_sim::GpuConfig;
use dsstc_tensor::{Matrix, SparsityPattern};
use proptest::prelude::*;

/// The manifest filename — part of the store's documented on-disk format
/// (see `docs/ENCODING_CACHE.md`).
const MANIFEST_NAME: &str = "MANIFEST.dsstcm";

/// A narrow proxy width keeps each fresh encode cheap enough to run dozens
/// of fault cases.
const PROXY_DIM: usize = 16;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A unique, self-cleaning store directory per fault case.
struct TempStore(PathBuf);

impl TempStore {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dsstc-faults-{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp store");
        TempStore(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn repo(dir: &Path) -> ModelRepository {
    ModelRepository::new(GpuConfig::v100(), PROXY_DIM).with_disk_cache(dir)
}

fn key() -> ModelKey {
    ModelKey::new(ModelId::RnnLm, Some(0.9))
}

fn spec() -> EncodingSpec {
    EncodingSpec::for_gpu(&GpuConfig::v100())
}

fn probe_input() -> Matrix {
    Matrix::random_sparse(2, PROXY_DIM, 0.4, SparsityPattern::Uniform, 7)
}

/// The output a clean, memory-only encode serves for the probe input.
/// Encoding is deterministic, so any correctly restored or re-encoded
/// artifact must reproduce these bytes exactly.
fn reference_output() -> Vec<f32> {
    let r = ModelRepository::new(GpuConfig::v100(), PROXY_DIM);
    let m = r.get_for(key(), spec());
    m.forward(r.kernel(), &probe_input()).as_slice().to_vec()
}

/// Seeds `dir` with one persisted artifact (plus its manifest) and returns
/// the artifact's filename.
fn seed_store(dir: &Path) -> String {
    let r = repo(dir);
    let _ = r.get_for(key(), spec());
    artifact_names(dir).pop().expect("seeding persisted an artifact")
}

/// Artifact filenames in `dir`, sorted (skips the manifest + lock).
fn artifact_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".dsstc"))
        .collect();
    names.sort();
    names
}

/// Applies one fault to `file`: 0 truncates at `offset`, 1 flips one bit
/// at `offset`, 2 replaces the file with a zero-length write.
fn inject(file: &Path, mode: u8, offset_permille: u32, bit: u8) {
    let bytes = std::fs::read(file).expect("read target");
    let offset = (bytes.len().saturating_sub(1)) * offset_permille as usize / 1000;
    match mode {
        0 => std::fs::write(file, &bytes[..offset]).expect("truncate"),
        1 => {
            let mut bytes = bytes;
            if !bytes.is_empty() {
                bytes[offset] ^= 1 << (bit % 8);
            }
            std::fs::write(file, bytes).expect("bit flip");
        }
        _ => std::fs::write(file, b"").expect("zero-length write"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever happens to the artifact file, warm boot self-heals: no
    /// panic, the store ends up with a valid artifact again, and the bytes
    /// served match a clean encode exactly.
    #[test]
    fn any_artifact_corruption_self_heals(
        mode in 0u8..3,
        offset_permille in 0u32..=1000,
        bit in 0u8..8,
    ) {
        let store = TempStore::new("artifact");
        let file = seed_store(store.path());
        inject(&store.path().join(&file), mode, offset_permille, bit);

        let r = repo(store.path());
        let report = r.warm_boot(&[spec()], 1);
        // A flipped bit in a slack byte can leave the artifact readable;
        // every outcome must be one of restored-intact or healed-by-fresh-
        // encode — never a crash, never silence.
        prop_assert_eq!(report.restored + report.healed, 1,
            "restored {} healed {}", report.restored, report.healed);
        let m = r.get_for(key(), spec());
        prop_assert_eq!(
            m.forward(r.kernel(), &probe_input()).as_slice().to_vec(),
            reference_output()
        );

        // The heal (or intact restore) is durable: a fresh process restores
        // from disk and serves the same bytes.
        let r2 = repo(store.path());
        let m2 = r2.get_for(key(), spec());
        prop_assert!(m2.from_disk, "rewritten artifact restores cleanly");
        prop_assert_eq!(
            m2.forward(r2.kernel(), &probe_input()).as_slice().to_vec(),
            reference_output()
        );
    }

    /// Whatever happens to the manifest file, the store rebuilds it from a
    /// directory scan: warm boot restores the artifact, the rewritten
    /// manifest verifies, and GC keeps working.
    #[test]
    fn any_manifest_corruption_is_rebuilt(
        mode in 0u8..3,
        offset_permille in 0u32..=1000,
        bit in 0u8..8,
    ) {
        let store = TempStore::new("manifest");
        let _ = seed_store(store.path());
        let manifest = store.path().join(MANIFEST_NAME);
        prop_assert!(manifest.exists(), "seeding writes a manifest");
        inject(&manifest, mode, offset_permille, bit);

        let r = repo(store.path());
        let report = r.warm_boot(&[spec()], 1);
        prop_assert_eq!(report.restored, 1, "the artifact itself is intact");
        prop_assert_eq!(r.counters().fresh_encodes, 0);

        // The rebuilt manifest round-trips: a second warm boot trusts it.
        let r2 = repo(store.path());
        let report2 = r2.warm_boot(&[spec()], 1);
        prop_assert_eq!(report2.restored, 1);

        // GC over the rebuilt manifest behaves: a 1-byte budget shrinks the
        // store to its floor of one artifact without panicking.
        let gc = ModelRepository::new(GpuConfig::v100(), PROXY_DIM)
            .with_disk_cache(store.path())
            .with_store_budget(CacheBudget { max_entries: usize::MAX, max_bytes: 1 });
        let _ = gc.gc_store();
        prop_assert_eq!(artifact_names(store.path()).len(), 1);
    }

    /// Corrupting artifact and manifest together still converges: the
    /// artifact heals via a fresh encode and both files verify afterwards.
    #[test]
    fn simultaneous_artifact_and_manifest_corruption_converges(
        artifact_mode in 0u8..3,
        manifest_mode in 0u8..3,
        offset_permille in 0u32..=1000,
    ) {
        let store = TempStore::new("both");
        let file = seed_store(store.path());
        inject(&store.path().join(&file), artifact_mode, offset_permille, 3);
        inject(&store.path().join(MANIFEST_NAME), manifest_mode, offset_permille, 3);

        let r = repo(store.path());
        let report = r.warm_boot(&[spec()], 1);
        prop_assert_eq!(report.restored + report.healed, 1);
        let m = r.get_for(key(), spec());
        prop_assert_eq!(
            m.forward(r.kernel(), &probe_input()).as_slice().to_vec(),
            reference_output()
        );
        // Converged: the next boot is a clean restore with nothing to heal.
        let r2 = repo(store.path());
        let report2 = r2.warm_boot(&[spec()], 1);
        prop_assert_eq!((report2.restored, report2.healed), (1, 0));
    }
}

/// Regression: a foreign-proxy-width artifact (written by a process with a
/// different `proxy_dim`) is skipped by warm boot but still counts against
/// the store byte budget — GC must treat it as a first-class (indeed,
/// preferred) eviction candidate. Before the fix, eviction was strictly
/// LRU, so a *newer* foreign artifact could push the only natively
/// servable artifact out of the store.
#[test]
fn gc_evicts_foreign_width_artifacts_before_native_ones() {
    let store = TempStore::new("foreign");
    // Native artifact first (older last-restore timestamp).
    let _ = seed_store(store.path());
    // A foreign-width artifact lands second, so plain LRU would keep it.
    let foreign =
        ModelRepository::new(GpuConfig::v100(), 2 * PROXY_DIM).with_disk_cache(store.path());
    let _ = foreign.get_for(key(), spec());
    let names = artifact_names(store.path());
    assert_eq!(names.len(), 2, "native + foreign artifacts seeded: {names:?}");

    let gc =
        repo(store.path()).with_store_budget(CacheBudget { max_entries: usize::MAX, max_bytes: 1 });
    assert_eq!(gc.gc_store(), 1, "over-budget store evicts exactly one artifact");
    let survivors = artifact_names(store.path());
    assert_eq!(survivors.len(), 1);
    assert!(
        survivors[0].contains(&format!("-d{PROXY_DIM}-")),
        "the native-width artifact survives, not the newer foreign one: {survivors:?}"
    );

    // The survivor is genuinely servable by this process: a fresh repo
    // restores it from disk.
    let r = repo(store.path());
    assert!(r.get_for(key(), spec()).from_disk, "survivor restores cleanly");
}

/// Lookups (not just warm boot) self-heal too: a poisoned artifact under a
/// live repository falls back to a fresh encode and rewrites the file.
#[test]
fn a_lookup_on_a_poisoned_store_falls_back_and_rewrites() {
    let store = TempStore::new("lookup");
    let file = seed_store(store.path());
    inject(&store.path().join(&file), 2, 0, 0); // zero-length artifact
    let r = repo(store.path());
    let m = r.get_for(key(), spec());
    assert!(!m.from_disk, "a zeroed artifact must not be served");
    assert_eq!(r.counters().fresh_encodes, 1);
    assert_eq!(m.forward(r.kernel(), &probe_input()).as_slice().to_vec(), reference_output());
    let r2 = repo(store.path());
    assert!(r2.get_for(key(), spec()).from_disk, "the fallback rewrote the artifact");
}
