//! Hardware configuration of the modelled GPU.
//!
//! Defaults follow the Tesla V100 the paper models in Accel-Sim (80 SMs,
//! 4 sub-cores per SM, 2 Tensor Cores per sub-core, 1530 MHz, 900 GB/s HBM2)
//! plus the paper's OTC extensions (4 KB multi-bank accumulation buffer,
//! 128-way parallel accumulators, operand collector).

use crate::tiling::GemmTiling;

/// Configuration of the Outer-product Tensor Core extensions (Section V).
#[derive(Clone, Debug, PartialEq)]
pub struct OtcConfig {
    /// Rows of the per-OTC outer-product tile (8 in the paper).
    pub tile_m: usize,
    /// Columns covered by the two cooperating OTCs per OHMMA (16).
    pub tile_n: usize,
    /// Accumulation buffer capacity in bytes (4 KB = 32x32 FP32).
    pub accum_buffer_bytes: usize,
    /// Number of single-ported banks in the accumulation buffer.
    pub accum_banks: usize,
    /// Parallel FP32 accumulators servicing the merge (128 in the paper).
    pub accum_parallelism: usize,
    /// Queue depth of the operand collector in front of the banks.
    pub operand_collector_depth: usize,
    /// How many times larger a binary (1-bit) tile is than the FP16 tile for
    /// the same instruction slot (16, inherited from Volta's binary ops).
    pub binary_speedup: usize,
}

impl OtcConfig {
    /// The configuration used throughout the paper.
    pub fn paper() -> Self {
        OtcConfig {
            tile_m: 8,
            tile_n: 16,
            accum_buffer_bytes: 4 * 1024,
            accum_banks: 16,
            accum_parallelism: 128,
            operand_collector_depth: 8,
            binary_speedup: 16,
        }
    }

    /// Warp-tile side length supported by the accumulation buffer
    /// (`sqrt(bytes / 4)` FP32 elements, 32 for the 4 KB buffer).
    pub fn warp_tile_dim(&self) -> usize {
        let elems = self.accum_buffer_bytes / 4;
        (elems as f64).sqrt() as usize
    }
}

impl Default for OtcConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Top-level GPU configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("Tesla V100").
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Sub-cores (processing blocks) per SM.
    pub sub_cores_per_sm: usize,
    /// Tensor Cores per sub-core.
    pub tensor_cores_per_sub_core: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm_bytes: usize,
    /// Maximum resident thread blocks per SM used by the occupancy model.
    pub max_blocks_per_sm: usize,
    /// FP32 CUDA cores per SM (scalar-op throughput per cycle).
    pub fp32_lanes_per_sm: usize,
    /// Integer/POPC lanes per SM.
    pub int_lanes_per_sm: usize,
    /// Fixed kernel-launch overhead in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Multiply-accumulates one tensor-core instruction retires
    /// (4x4x4 = 64 for Volta HMMA, and the OTC's 8x8x1 FEOP is sized to
    /// match).
    pub macs_per_tc_instruction: usize,
    /// Outer-product Tensor Core extension parameters.
    pub otc: OtcConfig,
}

impl GpuConfig {
    /// The Tesla V100 configuration modelled in the paper.
    pub fn v100() -> Self {
        GpuConfig {
            name: "Tesla V100".to_string(),
            num_sms: 80,
            sub_cores_per_sm: 4,
            tensor_cores_per_sub_core: 2,
            clock_ghz: 1.53,
            dram_bandwidth_gbs: 900.0,
            l2_bytes: 6 * 1024 * 1024,
            shared_mem_per_sm_bytes: 96 * 1024,
            max_blocks_per_sm: 2,
            fp32_lanes_per_sm: 64,
            int_lanes_per_sm: 64,
            kernel_launch_overhead_us: 2.0,
            macs_per_tc_instruction: 64,
            otc: OtcConfig::paper(),
        }
    }

    /// An A100-like configuration (108 SMs, 1.41 GHz, 1555 GB/s HBM2e,
    /// 40 MB L2, third-generation Tensor Cores retiring 8x4x8 FP16 MACs per
    /// instruction), for heterogeneous device-pool experiments alongside
    /// [`GpuConfig::v100`]. The OTC extension parameters are kept at the
    /// paper's values so the dual-side model stays comparable across
    /// devices.
    pub fn a100() -> Self {
        GpuConfig {
            name: "A100".to_string(),
            num_sms: 108,
            sub_cores_per_sm: 4,
            tensor_cores_per_sub_core: 1,
            clock_ghz: 1.41,
            dram_bandwidth_gbs: 1555.0,
            l2_bytes: 40 * 1024 * 1024,
            shared_mem_per_sm_bytes: 164 * 1024,
            max_blocks_per_sm: 2,
            fp32_lanes_per_sm: 64,
            int_lanes_per_sm: 64,
            kernel_launch_overhead_us: 2.0,
            macs_per_tc_instruction: 256,
            otc: OtcConfig::paper(),
        }
    }

    /// A deliberately small configuration handy for fast unit tests.
    pub fn tiny() -> Self {
        GpuConfig {
            name: "tiny-test-gpu".to_string(),
            num_sms: 2,
            sub_cores_per_sm: 2,
            tensor_cores_per_sub_core: 2,
            clock_ghz: 1.0,
            dram_bandwidth_gbs: 100.0,
            l2_bytes: 256 * 1024,
            shared_mem_per_sm_bytes: 64 * 1024,
            max_blocks_per_sm: 2,
            fp32_lanes_per_sm: 32,
            int_lanes_per_sm: 32,
            kernel_launch_overhead_us: 1.0,
            macs_per_tc_instruction: 64,
            otc: OtcConfig::paper(),
        }
    }

    /// Total Tensor Cores on the device (640 for V100).
    pub fn total_tensor_cores(&self) -> usize {
        self.num_sms * self.sub_cores_per_sm * self.tensor_cores_per_sub_core
    }

    /// Tensor-core instructions the whole device can issue per cycle.
    ///
    /// One warp-level tensor instruction is issued per sub-core per cycle;
    /// the two Tensor Cores in a sub-core cooperate on it (paper Fig. 13).
    pub fn tc_issue_per_cycle(&self) -> f64 {
        (self.num_sms * self.sub_cores_per_sm) as f64
    }

    /// FP32 scalar operations the device retires per cycle.
    pub fn scalar_ops_per_cycle(&self) -> f64 {
        (self.num_sms * self.fp32_lanes_per_sm) as f64
    }

    /// Integer/POPC operations the device retires per cycle.
    pub fn int_ops_per_cycle(&self) -> f64 {
        (self.num_sms * self.int_lanes_per_sm) as f64
    }

    /// DRAM bytes transferred per core-clock cycle at peak bandwidth.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbs / self.clock_ghz
    }

    /// Shared-memory bytes per cycle (128 B/cycle per SM on Volta).
    pub fn shared_bytes_per_cycle(&self) -> f64 {
        (self.num_sms * 128) as f64
    }

    /// Peak dense FP16 tensor throughput in TFLOPS, for sanity checks.
    pub fn peak_tensor_tflops(&self) -> f64 {
        // 2 FLOPs per MAC. Each issued instruction drives both Tensor Cores
        // of a sub-core (2 x macs_per_tc_instruction MACs).
        let macs_per_cycle = self.tc_issue_per_cycle()
            * (self.tensor_cores_per_sub_core * self.macs_per_tc_instruction) as f64;
        2.0 * macs_per_cycle * self.clock_ghz / 1e3
    }

    /// Converts a cycle count into microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }

    /// The GEMM tiling this device's sparse kernels natively run — the
    /// shape model encodings must target to execute on it.
    ///
    /// The warp-tile side is what the OTC accumulation buffer supports
    /// (32 for the paper's 4 KB buffer); the K slice scales with the MACs
    /// one tensor-core instruction retires — Volta's 64-MAC HMMA sustains
    /// the paper's 16-deep slice, and instructions retiring more MACs
    /// amortise proportionally deeper slices, capped at the warp-tile side.
    /// Thread blocks keep the paper's 4x4 arrangement of warp tiles. For
    /// [`GpuConfig::v100`] this reproduces [`GemmTiling::paper_spgemm`]
    /// exactly; an A100's third-generation Tensor Cores (256 MACs) run a
    /// 32-deep K slice, so its encodings are **not** interchangeable with a
    /// V100's.
    pub fn native_tiling(&self) -> GemmTiling {
        let warp = self.otc.warp_tile_dim();
        let warp_k = (self.macs_per_tc_instruction / 4).clamp(8, warp);
        GemmTiling {
            block_m: 4 * warp,
            block_n: 4 * warp,
            block_k: warp_k,
            warp_m: warp,
            warp_n: warp,
            warp_k,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_has_640_tensor_cores() {
        let cfg = GpuConfig::v100();
        assert_eq!(cfg.total_tensor_cores(), 640);
        assert_eq!(cfg.num_sms, 80);
    }

    #[test]
    fn v100_peak_tflops_is_about_125() {
        let cfg = GpuConfig::v100();
        let tflops = cfg.peak_tensor_tflops();
        assert!((tflops - 125.0).abs() < 5.0, "got {tflops} TFLOPS");
    }

    #[test]
    fn dram_bytes_per_cycle() {
        let cfg = GpuConfig::v100();
        let b = cfg.dram_bytes_per_cycle();
        assert!((b - 588.2).abs() < 1.0, "got {b}");
    }

    #[test]
    fn otc_warp_tile_dim_is_32() {
        assert_eq!(OtcConfig::paper().warp_tile_dim(), 32);
    }

    #[test]
    fn otc_tile_matches_inner_product_multiplier_count() {
        // 8x8x1 outer product uses the same 64 FP16 multipliers as 4x4x4.
        let otc = OtcConfig::paper();
        assert_eq!(otc.tile_m * 8, 64);
        let cfg = GpuConfig::v100();
        assert_eq!(cfg.macs_per_tc_instruction, 64);
    }

    #[test]
    fn cycles_to_us_roundtrip() {
        let cfg = GpuConfig::v100();
        // 1530 cycles at 1.53 GHz = 1 us.
        assert!((cfg.cycles_to_us(1530.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(GpuConfig::default(), GpuConfig::v100());
        assert_eq!(OtcConfig::default(), OtcConfig::paper());
    }

    #[test]
    fn a100_peak_tflops_is_about_312() {
        let cfg = GpuConfig::a100();
        let tflops = cfg.peak_tensor_tflops();
        assert!((tflops - 312.0).abs() < 5.0, "got {tflops} TFLOPS");
        assert_eq!(cfg.total_tensor_cores(), 432);
        assert!(cfg.dram_bandwidth_gbs > GpuConfig::v100().dram_bandwidth_gbs);
    }

    #[test]
    fn tiny_config_is_smaller() {
        let tiny = GpuConfig::tiny();
        assert!(tiny.total_tensor_cores() < GpuConfig::v100().total_tensor_cores());
    }

    #[test]
    fn v100_native_tiling_is_the_paper_tiling() {
        assert_eq!(GpuConfig::v100().native_tiling(), GemmTiling::paper_spgemm());
        assert_eq!(GpuConfig::tiny().native_tiling(), GemmTiling::paper_spgemm());
    }

    #[test]
    fn a100_native_tiling_runs_a_deeper_k_slice() {
        let v100 = GpuConfig::v100().native_tiling();
        let a100 = GpuConfig::a100().native_tiling();
        assert_ne!(v100, a100, "heterogeneous devices must not share encodings");
        assert_eq!(a100.warp_k, 32, "256-MAC instructions sustain a 32-deep slice");
        assert_eq!((a100.warp_m, a100.warp_n), (32, 32), "same accumulation buffer");
        assert_ne!(v100.b_tile(), a100.b_tile(), "weight encodings differ per device");
    }
}
