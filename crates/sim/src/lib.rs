//! A warp/tile-granular GPU timing model standing in for Accel-Sim.
//!
//! The paper evaluates its architecture on Accel-Sim with a V100
//! configuration. A full cycle-accurate GPU simulator is far outside the
//! scope of a Rust reproduction, but the performance effects the paper
//! reports are driven by a small set of countable events:
//!
//! * how many tensor-core instructions (`HMMA`, `OHMMA`, `BOHMMA`) a kernel
//!   issues after sparsity-driven skipping,
//! * how many scalar/`POPC` operations the encoding and im2col logic costs,
//! * how many bytes move through DRAM/L2/shared memory,
//! * how many extra cycles the accumulation-buffer bank conflicts add during
//!   the sparse merge, and
//! * how much parallelism (thread blocks) is available to hide all of the
//!   above.
//!
//! Kernels in `dsstc-kernels` count those events per warp tile and hand the
//! totals to [`GpuTimingModel`], which converts them into cycles and
//! microseconds using V100-like peak rates. Because every scheme — dense
//! CUTLASS-style GEMM, cuSparse-style CSR SpGEMM, the single-side sparse
//! Tensor Core baseline, and the paper's dual-side design — is scored by the
//! same model, relative speedups (the quantity every figure of the paper
//! reports) are preserved.
//!
//! # Example
//!
//! ```
//! use dsstc_sim::{GpuConfig, GpuTimingModel, WorkloadProfile};
//!
//! let model = GpuTimingModel::new(GpuConfig::v100());
//! let mut profile = WorkloadProfile::new("toy-gemm");
//! profile.hmma_instructions = 1_000_000;
//! profile.dram_bytes_read = 64 << 20;
//! profile.thread_blocks = 1024;
//! let est = model.estimate(&profile);
//! assert!(est.time_us() > 0.0);
//! ```

#![deny(missing_docs)]

pub mod accum_buffer;
pub mod config;
pub mod engine;
pub mod isa;
pub mod otc;
pub mod stats;
pub mod tiling;

pub use crate::accum_buffer::{AccumulationBuffer, ScatterStats};
pub use crate::config::{GpuConfig, OtcConfig};
pub use crate::engine::GpuTimingModel;
pub use crate::isa::{predicate_mask, MachineInstruction, SpWmmaSet, WarpProgram};
pub use crate::otc::{OtcStepCost, WarpTileCost};
pub use crate::stats::{KernelEstimate, WorkloadProfile};
pub use crate::tiling::{GemmTiling, TrafficEstimate, TrafficInputs};
