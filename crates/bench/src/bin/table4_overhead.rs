//! Regenerates **Table IV**: area and power overhead of the dual-side
//! sparse Tensor Core extensions on a V100 at 12 nm.
//!
//! Run with `cargo run --release -p dsstc-bench --bin table4_overhead`.

use dsstc_hwmodel::DsstcOverhead;

fn main() {
    let overhead = DsstcOverhead::paper_configuration();
    println!("Table IV: area and power overhead estimation (12 nm)");
    println!("{}", overhead.render_table());
    println!(
        "(paper reference: adders 0.121 mm2 / 2.35 W, operand collector 1.51 mm2 / 0.46 W, \
         accumulation buffer 11.215 mm2 / 1.08 W, total 12.846 mm2 (1.5%) / 3.89 W (1.6%))"
    );
}
