//! Regenerates **Figure 22**: layer-wise and full-model inference speedups
//! for VGG-16, ResNet-18, Mask R-CNN, the LSTM language model and the
//! BERT-base encoder under every execution scheme.
//!
//! CNN layers compare the five convolution schemes normalised to *Dense
//! Implicit* (cuDNN); the NLP models compare the three GEMM schemes
//! normalised to *Dense GEMM* (CUTLASS), exactly as the paper plots them.
//!
//! Run with `cargo run --release -p dsstc-bench --bin fig22_models`.

use dsstc::InferenceEstimator;
use dsstc_models::networks;

fn main() {
    let estimator = InferenceEstimator::v100();
    let mut dual_speedups = Vec::new();

    for network in networks::all_networks() {
        let report = estimator.estimate_network(&network);
        println!("{}", report.render_table());
        for layer in &report.layers {
            dual_speedups.push(layer.dual_side_speedup());
        }
        println!();
    }

    let min = dual_speedups.iter().cloned().fold(f64::MAX, f64::min);
    let max = dual_speedups.iter().cloned().fold(f64::MIN, f64::max);
    let mean = dual_speedups.iter().sum::<f64>() / dual_speedups.len() as f64;
    println!("Dual-side layer-wise speedup over the dense baseline: min {min:.2}x, mean {mean:.2}x, max {max:.2}x");
    println!(
        "(paper reference: 1.25x-7.49x for SpCONV, 3.62x-8.45x for SpGEMM layers, CNN average 4.38x, NLP average 6.74x)"
    );
}
