//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace is built without network access, so instead of the registry
//! crate this vendored shim provides exactly the (deterministic) subset of
//! the rand 0.9 API the other crates consume:
//!
//! * [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_bool`] for Bernoulli draws, and
//! * [`RngExt::random_range`] over half-open `f32` / `f64` / integer ranges.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically more
//! than good enough for synthetic sparse-matrix generation, and fully
//! reproducible given a seed (which the workspace's tests rely on).

#![deny(missing_docs)]

use std::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose whole state is derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one add +
            // three xor-shift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform value in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against the top end being reached through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let v = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the span sizes this workspace
                // uses (tile dimensions, element indices); acceptable for
                // synthetic data generation.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Convenience sampling methods, mirroring rand 0.9's `Rng` trait surface
/// under the name the workspace imports.
pub trait RngExt: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }

    /// Draws one uniform value from `range`.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn random_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let trues = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&trues), "got {trues}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.random_range(3usize..9);
            assert!((3..9).contains(&u));
            let d = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn mean_of_unit_range_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
