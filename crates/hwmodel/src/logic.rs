//! Logic component models: FP32 adder arrays and the operand collector.
//!
//! These stand in for the paper's RTL estimates. Constants are quoted at
//! 12 nm directly (the node the RTL was synthesised for) and calibrated so
//! the Table IV module figures are reproduced by the paper's component
//! counts.

use crate::tech::TechnologyNode;

/// Area of one FP32 adder at 12 nm, in µm².
const FP32_ADDER_AREA_UM2_12NM: f64 = 95.0;
/// Energy per FP32 addition at 12 nm, in joules.
const FP32_ADD_ENERGY_J_12NM: f64 = 1.2e-12;
/// Area of one operand-collector queue entry (flop + control) at 12 nm, µm².
const QUEUE_ENTRY_AREA_UM2_12NM: f64 = 25.0;
/// Area of one crossbar cross-point (per data bit) at 12 nm, µm².
const CROSSBAR_POINT_AREA_UM2_12NM: f64 = 0.16;
/// Switching power per operand-collector instance at full activity, watts
/// at 12 nm.
const COLLECTOR_DYNAMIC_W_12NM: f64 = 1.4e-3;

/// An array of FP32 adders (the extra accumulate stage the FEOP units need).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fp32AdderArray {
    /// Number of adders on the whole device.
    pub count: u64,
}

impl Fp32AdderArray {
    /// Creates an adder array description.
    pub fn new(count: u64) -> Self {
        Fp32AdderArray { count }
    }

    /// Total area at the given node, in mm².
    pub fn area_mm2(&self, node: TechnologyNode) -> f64 {
        let at_12 = self.count as f64 * FP32_ADDER_AREA_UM2_12NM / 1e6;
        rescale_from_12nm_area(at_12, node)
    }

    /// Total power at the given node assuming every adder fires once per
    /// cycle at `clock_ghz`, in watts.
    pub fn power_w(&self, node: TechnologyNode, clock_ghz: f64, activity: f64) -> f64 {
        let at_12 = self.count as f64 * FP32_ADD_ENERGY_J_12NM * clock_ghz * 1e9 * activity;
        rescale_from_12nm_power(at_12, node)
    }
}

/// The operand collector added in front of the accumulation-buffer banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperandCollector {
    /// Number of collector instances on the device (one per sub-core).
    pub instances: u64,
    /// Banks each collector arbitrates.
    pub banks: u32,
    /// Pending-instruction queue depth.
    pub queue_depth: u32,
    /// Data width per access in bits.
    pub data_bits: u32,
}

impl OperandCollector {
    /// Creates a collector description.
    pub fn new(instances: u64, banks: u32, queue_depth: u32, data_bits: u32) -> Self {
        OperandCollector { instances, banks, queue_depth, data_bits }
    }

    /// Total area at the given node, in mm².
    pub fn area_mm2(&self, node: TechnologyNode) -> f64 {
        let queues = self.banks as f64 * self.queue_depth as f64 * self.data_bits as f64 / 32.0
            * QUEUE_ENTRY_AREA_UM2_12NM;
        let crossbar = self.banks as f64
            * self.banks as f64
            * self.data_bits as f64
            * CROSSBAR_POINT_AREA_UM2_12NM;
        let at_12 = self.instances as f64 * (queues + crossbar) / 1e6;
        rescale_from_12nm_area(at_12, node)
    }

    /// Total power at the given node, in watts.
    pub fn power_w(&self, node: TechnologyNode, activity: f64) -> f64 {
        let at_12 = self.instances as f64 * COLLECTOR_DYNAMIC_W_12NM * activity;
        rescale_from_12nm_power(at_12, node)
    }
}

fn rescale_from_12nm_area(area_at_12: f64, node: TechnologyNode) -> f64 {
    area_at_12 * node.area_factor_vs_22nm() / TechnologyNode::Nm12.area_factor_vs_22nm()
}

fn rescale_from_12nm_power(power_at_12: f64, node: TechnologyNode) -> f64 {
    power_at_12 * node.power_factor_vs_22nm() / TechnologyNode::Nm12.power_factor_vs_22nm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_array_matches_paper_scale() {
        // Two extra accumulate adders per Tensor Core: 1280 adders.
        let adders = Fp32AdderArray::new(1280);
        let area = adders.area_mm2(TechnologyNode::Nm12);
        assert!((area - 0.121).abs() < 0.03, "got {area} mm2");
        let power = adders.power_w(TechnologyNode::Nm12, 1.53, 1.0);
        assert!((power - 2.35).abs() < 0.5, "got {power} W");
    }

    #[test]
    fn collector_matches_paper_scale() {
        let collector = OperandCollector::new(320, 16, 8, 36);
        let area = collector.area_mm2(TechnologyNode::Nm12);
        assert!((area - 1.51).abs() < 0.4, "got {area} mm2");
        let power = collector.power_w(TechnologyNode::Nm12, 1.0);
        assert!((power - 0.46).abs() < 0.15, "got {power} W");
    }

    #[test]
    fn area_grows_on_larger_nodes() {
        let adders = Fp32AdderArray::new(1000);
        assert!(adders.area_mm2(TechnologyNode::Nm22) > adders.area_mm2(TechnologyNode::Nm12));
    }

    #[test]
    fn power_scales_with_activity_and_clock() {
        let adders = Fp32AdderArray::new(1000);
        let full = adders.power_w(TechnologyNode::Nm12, 1.5, 1.0);
        let half = adders.power_w(TechnologyNode::Nm12, 1.5, 0.5);
        assert!((full / half - 2.0).abs() < 1e-9);
        let slow = adders.power_w(TechnologyNode::Nm12, 0.75, 1.0);
        assert!((full / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn collector_area_scales_with_banks_squared_for_crossbar() {
        let small = OperandCollector::new(1, 8, 8, 32).area_mm2(TechnologyNode::Nm12);
        let large = OperandCollector::new(1, 32, 8, 32).area_mm2(TechnologyNode::Nm12);
        assert!(large > 3.0 * small);
    }
}
