//! Synthetic activation generation.
//!
//! Activation sparsity is *dynamic*: it is created at run time by ReLU and
//! changes with every input (Section II-A of the paper). These generators
//! reproduce that mechanism — pre-activation values are drawn from a
//! zero-symmetric distribution whose offset is chosen so that applying ReLU
//! leaves approximately the requested fraction of zeros — so the tensors the
//! kernels consume have the statistical structure of real feature maps
//! rather than hand-placed zeros.

use dsstc_tensor::{ConvShape, FeatureMap, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a post-ReLU activation matrix of the given shape whose sparsity
/// is approximately `target_sparsity`.
///
/// # Panics
/// Panics if `target_sparsity` is outside `[0, 1]`.
pub fn activation_matrix(rows: usize, cols: usize, target_sparsity: f64, seed: u64) -> Matrix {
    assert!((0.0..=1.0).contains(&target_sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m[(r, c)] = pre_activation(&mut rng, target_sparsity).max(0.0);
        }
    }
    m
}

/// Generates a post-ReLU activation feature map matching a convolution
/// layer's input shape.
///
/// # Panics
/// Panics if `target_sparsity` is outside `[0, 1]`.
pub fn activation_feature_map(shape: &ConvShape, target_sparsity: f64, seed: u64) -> FeatureMap {
    assert!((0.0..=1.0).contains(&target_sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fm = FeatureMap::zeros(shape.c, shape.h, shape.w);
    for c in 0..shape.c {
        for y in 0..shape.h {
            for x in 0..shape.w {
                fm.set(c, y, x, pre_activation(&mut rng, target_sparsity).max(0.0));
            }
        }
    }
    fm
}

/// Draws one pre-activation value: negative (and therefore zeroed by ReLU)
/// with probability `target_sparsity`, otherwise a positive magnitude.
fn pre_activation(rng: &mut StdRng, target_sparsity: f64) -> f32 {
    if rng.random_bool(target_sparsity) {
        -rng.random_range(0.01f32..1.0)
    } else {
        rng.random_range(0.01f32..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_matrix_hits_target_sparsity() {
        for &s in &[0.0, 0.45, 0.8, 0.98] {
            let m = activation_matrix(128, 128, s, 7);
            assert!((m.sparsity() - s).abs() < 0.03, "target {s}, got {}", m.sparsity());
        }
    }

    #[test]
    fn activation_values_are_non_negative() {
        let m = activation_matrix(64, 64, 0.5, 8);
        assert!(m.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn activation_feature_map_matches_shape_and_sparsity() {
        let shape = ConvShape::square(28, 32, 64, 3, 1, 1);
        let fm = activation_feature_map(&shape, 0.6, 9);
        assert_eq!(fm.channels(), 32);
        assert_eq!(fm.height(), 28);
        assert!((fm.sparsity() - 0.6).abs() < 0.03);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = activation_matrix(32, 32, 0.5, 1);
        let b = activation_matrix(32, 32, 0.5, 1);
        let c = activation_matrix(32, 32, 0.5, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn invalid_sparsity_panics() {
        let _ = activation_matrix(4, 4, -0.1, 0);
    }
}
