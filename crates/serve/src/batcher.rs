//! Dynamic, SLO-aware request batching.
//!
//! Requests accumulate in per-class arrival-ordered queues (one per
//! `(model, sparsity)` key, the queues themselves in first-arrival order);
//! a worker (or the device dispatcher) asking for work receives a
//! **batch**: up to `max_batch` queued requests sharing one key. A
//! compatibility class is released as soon as it reaches `max_batch`
//! requests, when any of its members is about to miss its queue deadline
//! (the per-request SLO capped at `max_queue_wait`), or when the scheduler
//! is draining for shutdown — so latency is bounded even under trickle
//! traffic, full batches of one model never wait behind an unfull head of
//! another, and unrelated models queued behind the head cannot starve it.
//!
//! Two SLO-aware refinements over a plain FIFO batcher:
//!
//! * **release order** — when several classes are releasable, the one whose
//!   most urgent member is closest to (or furthest past) its deadline goes
//!   first, higher priority breaking ties; and
//! * **extraction order** — when a class holds more requests than fit in
//!   one batch, deadline-expired requests go first (so nobody in SLO can
//!   starve someone already past it), then higher-[`Priority`] requests,
//!   FIFO within one priority level — latency-critical traffic jumps the
//!   queue without reordering its own service class, and under saturation
//!   (everything expired) the order degrades to strict priority.
//!
//! The release decision is O(classes), not O(queued requests): every
//! aggregate it consults (member count, most urgent deadline, highest
//! priority) is maintained incrementally on enqueue/extract, so a deep
//! backlog — tens of thousands of requests flooded in by the wire
//! front-end's reactors — costs the dispatcher nothing per wake. Before
//! this, `next_batch` re-scanned the whole queue per wake and extraction
//! removed members one `O(n)` splice at a time, which capped the server
//! around 600 batches/s once the queue grew past ~10k requests.

use std::cmp::Reverse;
use std::collections::{BTreeSet, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dsstc_tensor::Matrix;

use crate::request::{InferResponse, ModelKey, Priority};
use crate::telemetry::{RequestTrace, Stage};

/// Batching policy knobs (a subset of [`crate::ServeConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Largest number of requests merged into one batch.
    pub max_batch: usize,
    /// How long any queued request may wait before its batch is flushed
    /// even if it is not full (also the cap on per-request SLO deadlines).
    pub max_queue_wait: Duration,
}

/// One queued request with its response channel.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Server-assigned request id.
    pub id: u64,
    /// Encode-cache key (batch compatibility class).
    pub key: ModelKey,
    /// Scheduling priority.
    pub priority: Priority,
    /// Per-request queue-wait SLO; capped at the policy's `max_queue_wait`.
    pub slo: Option<Duration>,
    /// Input features.
    pub features: Matrix,
    /// Where the response goes.
    pub response_tx: Sender<InferResponse>,
    /// When the request entered the queue.
    pub enqueued: Instant,
    /// The request's staged timeline, stamped as it moves through the
    /// pipeline and returned on its [`InferResponse`].
    pub trace: RequestTrace,
}

/// A group of compatible requests released to one worker.
#[derive(Debug)]
pub(crate) struct Batch {
    /// The shared `(model, sparsity)` key.
    pub key: ModelKey,
    /// The member requests: deadline-expired members first, then by
    /// priority (highest first), FIFO within a priority.
    pub requests: Vec<PendingRequest>,
}

impl Batch {
    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Total feature rows across member requests.
    pub fn total_rows(&self) -> usize {
        self.requests.iter().map(|r| r.features.rows()).sum()
    }
}

/// One queued request plus the bookkeeping the incremental aggregates key
/// on: a monotonic admission sequence number (arrival-order tie-break) and
/// its queue deadline, computed once at admission.
#[derive(Debug)]
struct Member {
    seq: u64,
    deadline: Instant,
    request: PendingRequest,
}

/// One compatibility class's members, arrival-ordered, with the aggregates
/// `next_batch` consults kept current on every enqueue/extract.
#[derive(Debug)]
struct ClassQueue {
    key: ModelKey,
    /// Members in arrival order.
    members: VecDeque<Member>,
    /// Member `(deadline, seq)` pairs, ordered: the first entry is the
    /// class's most urgent member (closest to — or furthest past — its
    /// SLO). The seq disambiguates equal instants.
    deadlines: BTreeSet<(Instant, u64)>,
    /// Member count per priority level, indexed by [`Priority::index`].
    priority_counts: [usize; Priority::ALL.len()],
}

impl ClassQueue {
    fn new(key: ModelKey) -> Self {
        ClassQueue {
            key,
            members: VecDeque::new(),
            deadlines: BTreeSet::new(),
            priority_counts: [0; Priority::ALL.len()],
        }
    }

    /// Earliest queue deadline among members.
    fn min_deadline(&self) -> Instant {
        self.deadlines.first().expect("class queues are never left empty").0
    }

    /// Highest member priority (release-order tie-break).
    fn max_priority(&self) -> Priority {
        for priority in Priority::ALL.iter().rev() {
            if self.priority_counts[priority.index()] > 0 {
                return *priority;
            }
        }
        unreachable!("class queues are never left empty")
    }
}

#[derive(Debug)]
struct QueueState {
    /// Classes currently holding members, in first-arrival order (a class
    /// that empties and later reappears re-enters at the back) — the
    /// final release-order tie-break.
    classes: Vec<ClassQueue>,
    /// Total queued requests across classes.
    len: usize,
    /// Next admission sequence number.
    next_seq: u64,
    open: bool,
}

/// The dynamic batching queue shared by the server front-end and the worker
/// pool.
#[derive(Debug)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl BatchScheduler {
    /// Creates an open scheduler.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "batches need at least one request");
        BatchScheduler {
            policy,
            state: Mutex::new(QueueState { classes: Vec::new(), len: 0, next_seq: 0, open: true }),
            cv: Condvar::new(),
        }
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.state.lock().expect("scheduler mutex poisoned").len
    }

    /// Queued requests per priority level, indexed by
    /// [`Priority::index`] — what admission control projects queue delay
    /// from. O(classes), like the release decision.
    pub fn queue_depths(&self) -> [usize; Priority::ALL.len()] {
        let state = self.state.lock().expect("scheduler mutex poisoned");
        let mut depths = [0; Priority::ALL.len()];
        for class in &state.classes {
            for (slot, count) in depths.iter_mut().zip(class.priority_counts) {
                *slot += count;
            }
        }
        depths
    }

    /// Whether the scheduler still accepts requests.
    pub fn is_open(&self) -> bool {
        self.state.lock().expect("scheduler mutex poisoned").open
    }

    /// The absolute instant by which `request` should leave the queue: its
    /// SLO (capped at `max_queue_wait`) past its enqueue time.
    fn deadline(&self, request: &PendingRequest) -> Instant {
        let wait = request
            .slo
            .map_or(self.policy.max_queue_wait, |slo| slo.min(self.policy.max_queue_wait));
        request.enqueued + wait
    }

    /// Enqueues one request. Returns `false` (dropping the request) if the
    /// scheduler has been shut down.
    pub(crate) fn enqueue(&self, mut request: PendingRequest) -> bool {
        let deadline = self.deadline(&request);
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        if !state.open {
            return false;
        }
        request.trace.record(Stage::Enqueued);
        let seq = state.next_seq;
        state.next_seq += 1;
        let at = match state.classes.iter().position(|c| c.key == request.key) {
            Some(at) => at,
            None => {
                state.classes.push(ClassQueue::new(request.key));
                state.classes.len() - 1
            }
        };
        let class = &mut state.classes[at];
        class.priority_counts[request.priority.index()] += 1;
        class.deadlines.insert((deadline, seq));
        class.members.push_back(Member { seq, deadline, request });
        state.len += 1;
        // Wake every waiting worker: some class may just have become full,
        // and a worker watching a deadline needs to re-evaluate.
        self.cv.notify_all();
        true
    }

    /// Blocks until a batch is ready (or the scheduler is shut down **and**
    /// drained, in which case `None` tells the worker to exit).
    ///
    /// A class is releasable as soon as it holds `max_batch` compatible
    /// requests (so a full batch never waits on anyone's deadline), as soon
    /// as any of its members reaches its queue deadline, or unconditionally
    /// while draining. Among releasable classes, the one whose most urgent
    /// member is closest to violation goes first.
    pub(crate) fn next_batch(&self) -> Option<Batch> {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        loop {
            if state.len == 0 {
                if !state.open {
                    return None;
                }
                state = self.cv.wait(state).expect("scheduler mutex poisoned");
                continue;
            }
            let now = Instant::now();
            if let Some(at) =
                Self::release_index(&state.classes, now, self.policy.max_batch, state.open)
            {
                return Some(self.extract(&mut state, at, now));
            }
            // Nothing full or expired yet: sleep until the most urgent
            // deadline or the next enqueue, whichever comes first.
            let earliest =
                state.classes.iter().map(ClassQueue::min_deadline).min().expect("non-empty queue");
            let wait = earliest.saturating_duration_since(now);
            let (next, _timed_out) =
                self.cv.wait_timeout(state, wait).expect("scheduler mutex poisoned");
            state = next;
        }
    }

    /// The class to release now, if any: releasable classes (full, past a
    /// member deadline, or draining) ordered by urgency — earliest deadline
    /// first, higher priority breaking ties, first arrival breaking those
    /// (`min_by_key` keeps the first of equals, and `classes` is in
    /// first-arrival order). Every aggregate consulted here is maintained
    /// incrementally, so the decision is O(classes).
    fn release_index(
        classes: &[ClassQueue],
        now: Instant,
        max_batch: usize,
        open: bool,
    ) -> Option<usize> {
        classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !open || c.members.len() >= max_batch || c.min_deadline() <= now)
            .min_by_key(|(_, c)| (c.min_deadline(), Reverse(c.max_priority())))
            .map(|(at, _)| at)
    }

    /// Stops accepting requests; queued work is still drained by
    /// `next_batch`.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("scheduler mutex poisoned");
        state.open = false;
        self.cv.notify_all();
    }

    /// Removes up to `max_batch` requests with `key` from the queue. The
    /// selection (and batch member) order is:
    ///
    /// 1. requests already past their queue deadline — so a fresh flood of
    ///    higher-priority (but still in-SLO) arrivals can never starve a
    ///    deadline-expired request out of batch after batch;
    /// 2. then unexpired requests.
    ///
    /// Inside each group: highest priority first, then earliest deadline,
    /// then arrival order. Same-priority requests with equal SLOs
    /// therefore always stay FIFO (equal SLOs expire in arrival order),
    /// and when overload leaves *everything* expired the order degrades to
    /// strict priority — lower classes lose their latency bound only once
    /// the pool is saturated with expired higher-priority work. The rest
    /// of the queue keeps its arrival order.
    fn extract(&self, state: &mut QueueState, at: usize, now: Instant) -> Batch {
        let class = &mut state.classes[at];
        let total = class.members.len();
        // Selection key, ascending: unexpired-last puts deadline-expired
        // members first, `Reverse(priority)` puts the highest priority
        // first inside each group, then earliest deadline, then arrival.
        let selection_key = |member: &Member| {
            (member.deadline > now, Reverse(member.request.priority), member.deadline, member.seq)
        };
        let mut order: Vec<usize> = (0..total).collect();
        if total > self.policy.max_batch {
            // Only the top `max_batch` need ordering: select them in O(n),
            // then sort just that prefix.
            order.select_nth_unstable_by_key(self.policy.max_batch - 1, |&i| {
                selection_key(&class.members[i])
            });
            order.truncate(self.policy.max_batch);
        }
        order.sort_unstable_by_key(|&i| selection_key(&class.members[i]));
        let mut requests = Vec::with_capacity(order.len());
        if order.iter().copied().eq(0..order.len()) {
            // Uniform-priority, uniform-SLO traffic selects a pure arrival
            // prefix (deadlines are arrival-ordered): pop it off the front
            // without disturbing — or copying — the rest of a deep backlog.
            for _ in 0..order.len() {
                requests.push(class.members.pop_front().expect("selected member"));
            }
        } else {
            // Mixed selection: pull the chosen members out in one pass,
            // preserving the arrival order of everything left behind, then
            // restore the selection order.
            let mut selected = vec![false; total];
            for &i in &order {
                selected[i] = true;
            }
            let mut taken: Vec<Option<Member>> = (0..total).map(|_| None).collect();
            let mut remaining = VecDeque::with_capacity(total - order.len());
            for (i, member) in class.members.drain(..).enumerate() {
                if selected[i] {
                    taken[i] = Some(member);
                } else {
                    remaining.push_back(member);
                }
            }
            class.members = remaining;
            for &i in &order {
                requests.push(taken[i].take().expect("selected member"));
            }
        }
        let key = class.key;
        let mut batch = Vec::with_capacity(requests.len());
        for mut member in requests {
            class.deadlines.remove(&(member.deadline, member.seq));
            class.priority_counts[member.request.priority.index()] -= 1;
            member.request.trace.record(Stage::Released);
            batch.push(member.request);
        }
        state.len -= batch.len();
        if class.members.is_empty() {
            state.classes.remove(at);
        }
        debug_assert!(!batch.is_empty(), "extract called with a matching member");
        Batch { key, requests: batch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelId;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn policy(max_batch: usize, wait_ms: u64) -> BatchPolicy {
        BatchPolicy { max_batch, max_queue_wait: Duration::from_millis(wait_ms) }
    }

    fn request(model: ModelId) -> PendingRequest {
        let (tx, _rx) = mpsc::channel();
        // Tests keep the receiver alive only when they assert on responses.
        std::mem::forget(_rx);
        PendingRequest {
            id: 0,
            key: ModelKey::new(model, None),
            priority: Priority::Normal,
            slo: None,
            features: Matrix::zeros(2, 8),
            response_tx: tx,
            enqueued: Instant::now(),
            trace: RequestTrace::new(),
        }
    }

    fn prioritised(model: ModelId, id: u64, priority: Priority) -> PendingRequest {
        PendingRequest { id, priority, ..request(model) }
    }

    #[test]
    fn queue_depths_track_per_priority_counts_across_classes() {
        let s = BatchScheduler::new(policy(8, 50));
        assert_eq!(s.queue_depths(), [0, 0, 0]);
        assert!(s.enqueue(prioritised(ModelId::BertBase, 0, Priority::Low)));
        assert!(s.enqueue(prioritised(ModelId::BertBase, 1, Priority::High)));
        assert!(s.enqueue(prioritised(ModelId::RnnLm, 2, Priority::High)));
        assert!(s.enqueue(prioritised(ModelId::RnnLm, 3, Priority::Normal)));
        assert_eq!(s.queue_depths(), [1, 1, 2], "summed across model classes");
        assert_eq!(s.queue_depths().iter().sum::<usize>(), s.queue_len());
        // Extraction drains the counts class by class.
        s.shutdown();
        while let Some(batch) = s.next_batch() {
            drop(batch);
        }
        assert_eq!(s.queue_depths(), [0, 0, 0]);
    }

    #[test]
    fn full_batches_never_exceed_max_batch() {
        let s = BatchScheduler::new(policy(4, 60_000));
        for _ in 0..10 {
            assert!(s.enqueue(request(ModelId::BertBase)));
        }
        let sizes: Vec<usize> = (0..2).map(|_| s.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(s.queue_len(), 2);
        // The remaining two are not a full batch; they flush on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 2);
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let s = BatchScheduler::new(policy(64, 30));
        let t0 = Instant::now();
        assert!(s.enqueue(request(ModelId::ResNet50)));
        let batch = s.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_secs(5), "flushed after {waited:?}");
    }

    #[test]
    fn per_request_slo_flushes_before_max_queue_wait() {
        // max_queue_wait is a whole minute, but the request carries a 20 ms
        // SLO: its batch must flush on the SLO, not the policy cap.
        let s = BatchScheduler::new(policy(64, 60_000));
        let mut r = request(ModelId::BertBase);
        r.slo = Some(Duration::from_millis(20));
        let t0 = Instant::now();
        assert!(s.enqueue(r));
        let batch = s.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(15), "flushed after {waited:?}");
        assert!(waited < Duration::from_secs(5), "flushed after {waited:?}");
    }

    #[test]
    fn extraction_prefers_high_priority_fifo_within_priority() {
        // Six compatible requests, batches of three: the two High requests
        // and the oldest Normal one go first, each class FIFO internally.
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(prioritised(ModelId::BertBase, 0, Priority::Normal));
        s.enqueue(prioritised(ModelId::BertBase, 1, Priority::High));
        s.enqueue(prioritised(ModelId::BertBase, 2, Priority::Low));
        s.enqueue(prioritised(ModelId::BertBase, 3, Priority::High));
        s.enqueue(prioritised(ModelId::BertBase, 4, Priority::Normal));
        s.enqueue(prioritised(ModelId::BertBase, 5, Priority::Low));
        s.shutdown();
        let first: Vec<u64> = s.next_batch().unwrap().requests.iter().map(|r| r.id).collect();
        assert_eq!(first, vec![1, 3, 0], "high first (FIFO), then oldest normal");
        let second: Vec<u64> = s.next_batch().unwrap().requests.iter().map(|r| r.id).collect();
        assert_eq!(second, vec![4, 2, 5], "remaining normal, then lows FIFO");
    }

    #[test]
    fn an_expired_low_priority_request_is_not_starved_by_a_high_priority_flood() {
        // One Low request with a tiny SLO, buried under two full batches of
        // High traffic on the same model. Once its deadline expires it must
        // ride in the very next released batch, not wait behind every High
        // request.
        let s = BatchScheduler::new(policy(3, 60_000));
        let mut low = prioritised(ModelId::BertBase, 99, Priority::Low);
        low.slo = Some(Duration::from_millis(5));
        s.enqueue(low);
        for id in 0..6 {
            s.enqueue(prioritised(ModelId::BertBase, id, Priority::High));
        }
        std::thread::sleep(Duration::from_millis(10));
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.requests[0].id, 99, "expired request leads the batch");
        assert_eq!(batch.requests[0].priority, Priority::Low);
        // The rest of the slots still go to the highest priorities, FIFO.
        let tail: Vec<u64> = batch.requests[1..].iter().map(|r| r.id).collect();
        assert_eq!(tail, vec![0, 1]);
        s.shutdown();
        while s.next_batch().is_some() {}
    }

    #[test]
    fn release_prefers_the_class_closest_to_violation() {
        // Two unfull classes; the BERT member has the tighter SLO, so even
        // though ResNet-50 arrived first, BERT's batch is released first
        // once deadlines drive the flush.
        let s = BatchScheduler::new(policy(8, 60));
        let mut early = request(ModelId::BertBase);
        early.slo = Some(Duration::from_millis(10));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(early);
        let first = s.next_batch().unwrap();
        assert_eq!(first.key.model, ModelId::BertBase);
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().key.model, ModelId::ResNet50);
    }

    #[test]
    fn batches_group_by_key_without_starving_the_head() {
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::ResNet50));
        s.enqueue(request(ModelId::BertBase));
        // Head is BERT: its three compatible requests batch together.
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.key.model, ModelId::BertBase);
        assert_eq!(b1.len(), 3);
        // ResNet-50 moved to the head; drain it via shutdown flush.
        s.shutdown();
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.key.model, ModelId::ResNet50);
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn a_full_batch_behind_an_unfull_head_releases_immediately() {
        // Head is a lone ResNet-50 request with a long deadline; a FULL
        // BERT batch arrives behind it and must not wait for that deadline.
        let s = BatchScheduler::new(policy(3, 60_000));
        s.enqueue(request(ModelId::ResNet50));
        for _ in 0..3 {
            s.enqueue(request(ModelId::BertBase));
        }
        let t0 = Instant::now();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.key.model, ModelId::BertBase);
        assert_eq!(batch.len(), 3);
        assert!(t0.elapsed() < Duration::from_secs(5), "released without waiting on the head");
        // The head is still queued and flushes on shutdown.
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().key.model, ModelId::ResNet50);
    }

    #[test]
    fn different_sparsity_overrides_do_not_batch_together() {
        let s = BatchScheduler::new(policy(8, 60_000));
        let mut sparse = request(ModelId::RnnLm);
        sparse.key = ModelKey::new(ModelId::RnnLm, Some(0.9));
        s.enqueue(request(ModelId::RnnLm));
        s.enqueue(sparse);
        s.shutdown();
        assert_eq!(s.next_batch().unwrap().len(), 1);
        assert_eq!(s.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn enqueue_after_shutdown_is_rejected() {
        let s = BatchScheduler::new(policy(4, 10));
        s.shutdown();
        assert!(!s.enqueue(request(ModelId::Vgg16)));
        assert!(!s.is_open());
        assert!(s.next_batch().is_none());
    }

    #[test]
    fn total_rows_sums_member_features() {
        let s = BatchScheduler::new(policy(4, 60_000));
        s.enqueue(request(ModelId::BertBase));
        s.enqueue(request(ModelId::BertBase));
        s.shutdown();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.total_rows(), 4); // two requests x two rows
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_request() {
        let s = Arc::new(BatchScheduler::new(policy(5, 5)));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        assert!(s.enqueue(request(ModelId::BertBase)));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while let Some(batch) = s.next_batch() {
                        assert!(batch.len() <= 5);
                        seen += batch.len();
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Give consumers a moment to drain, then close.
        while s.queue_len() > 0 {
            std::thread::yield_now();
        }
        s.shutdown();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    /// Property tests: arbitrary interleavings of enqueue / next_batch over
    /// mixed models, priorities and SLOs never violate the scheduler's
    /// invariants. The case count follows `PROPTEST_CASES` (CI pins 64).
    mod props {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        use std::collections::HashMap;

        /// Wall-clock slack allowed on top of `max_queue_wait` for the
        /// release-latency bound: one extraction cycle (the batch released
        /// ahead of the measured one) plus scheduler wake-up and CI timer
        /// jitter. Generous so the property never flakes on a loaded
        /// machine, yet tight enough to catch real starvation.
        const CYCLE_SLACK: Duration = Duration::from_millis(500);

        const MODELS: [ModelId; 3] = [ModelId::BertBase, ModelId::ResNet50, ModelId::RnnLm];

        fn check_batch(
            batch: &Batch,
            max_batch: usize,
            max_queue_wait: Duration,
            released: &mut HashMap<(ModelKey, Priority), u64>,
            bound_applies: bool,
        ) {
            let now = Instant::now();
            prop_assert!(!batch.requests.is_empty());
            prop_assert!(batch.len() <= max_batch, "batch of {} > {max_batch}", batch.len());
            for r in &batch.requests {
                prop_assert_eq!(r.key, batch.key, "mixed keys in one batch");
                // Same-priority requests within a model are served FIFO:
                // ids are assigned in enqueue order, so per (key, priority)
                // they must be released in increasing order.
                let slot = released.entry((r.key, r.priority)).or_insert(0);
                prop_assert!(
                    r.id >= *slot,
                    "priority {:?} of {:?} released out of order: {} after {}",
                    r.priority,
                    r.key.model,
                    r.id,
                    *slot
                );
                *slot = r.id + 1;
                if bound_applies {
                    let waited = now.duration_since(r.enqueued);
                    prop_assert!(
                        waited <= max_queue_wait + CYCLE_SLACK,
                        "request {} waited {waited:?} (bound {max_queue_wait:?} + cycle)",
                        r.id
                    );
                }
            }
        }

        proptest! {
            #[test]
            fn interleaved_enqueue_and_extract_hold_all_invariants(
                seed in any::<u64>(),
                max_batch in 1usize..=5,
                ops in 12usize..=40,
            ) {
                let wait = Duration::from_millis(2);
                let s = BatchScheduler::new(BatchPolicy { max_batch, max_queue_wait: wait });
                let mut rng = StdRng::seed_from_u64(seed);
                let mut next_id = 0u64;
                let mut enqueued = 0usize;
                let mut drained = 0usize;
                let mut released: HashMap<(ModelKey, Priority), u64> = HashMap::new();
                for _ in 0..ops {
                    let extract = s.queue_len() > 0 && rng.random_bool(0.4);
                    if extract {
                        let batch = s.next_batch().unwrap();
                        drained += batch.len();
                        check_batch(&batch, max_batch, wait, &mut released, true);
                    } else {
                        let model = MODELS[rng.random_range(0usize..MODELS.len())];
                        let priority = Priority::ALL[rng.random_range(0usize..3)];
                        // One SLO per service class: FIFO-within-priority is
                        // only a meaningful invariant when a class shares a
                        // deadline policy (mixed SLOs inside one class are
                        // legitimately served earliest-deadline-first).
                        let slo = match priority {
                            Priority::High => Some(Duration::from_micros(700)),
                            Priority::Normal => None,
                            Priority::Low => Some(Duration::from_micros(1500)),
                        };
                        let mut r = request(model);
                        r.id = next_id;
                        r.priority = priority;
                        r.slo = slo;
                        next_id += 1;
                        prop_assert!(s.enqueue(r));
                        enqueued += 1;
                    }
                }
                // Drain: every request is released exactly once, under the
                // same size / purity / FIFO invariants (the latency bound
                // does not apply to the shutdown flush).
                s.shutdown();
                while let Some(batch) = s.next_batch() {
                    drained += batch.len();
                    check_batch(&batch, max_batch, wait, &mut released, false);
                }
                prop_assert_eq!(drained, enqueued, "requests lost or duplicated");
                prop_assert_eq!(s.queue_len(), 0);
            }
        }
    }
}
