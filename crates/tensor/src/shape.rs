//! Problem-shape descriptors shared by kernels, models and the bench harness.

/// The shape of a (possibly sparse) GEMM `D = A (MxK) * B (KxN) + C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A / D.
    pub m: usize,
    /// Columns of B / D.
    pub n: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be non-zero");
        GemmShape { m, n, k }
    }

    /// Total multiply-accumulate operations of the dense problem.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// FLOPs (2 per MAC) of the dense problem.
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Bytes touched by a dense FP16 GEMM reading A and B once and writing D
    /// in FP32 (a lower bound used by roofline-style checks).
    pub fn min_bytes_fp16(&self) -> u64 {
        let a = (self.m * self.k) as u64 * 2;
        let b = (self.k * self.n) as u64 * 2;
        let d = (self.m * self.n) as u64 * 4;
        a + b + d
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The shape of a 2-D convolution layer.
///
/// Follows the paper's notation: `C` input channels of `H x W` feature maps,
/// `N` output channels, `K x K` kernels, stride `S`, symmetric zero padding
/// `P`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input feature-map height.
    pub h: usize,
    /// Input feature-map width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub n: usize,
    /// Kernel height/width.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
}

impl ConvShape {
    /// Creates a convolution shape.
    ///
    /// # Panics
    /// Panics if a dimension or the stride is zero, or if the kernel (with
    /// padding) does not fit in the input.
    pub fn new(
        h: usize,
        w: usize,
        c: usize,
        n: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            h > 0 && w > 0 && c > 0 && n > 0 && k > 0 && stride > 0,
            "dimensions must be non-zero"
        );
        assert!(h + 2 * padding >= k && w + 2 * padding >= k, "kernel larger than padded input");
        ConvShape { h, w, c, n, k, stride, padding }
    }

    /// Square-input convenience constructor (`H = W`).
    pub fn square(hw: usize, c: usize, n: usize, k: usize, stride: usize, padding: usize) -> Self {
        Self::new(hw, hw, c, n, k, stride, padding)
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.padding - self.k) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.padding - self.k) / self.stride + 1
    }

    /// The GEMM this convolution lowers to under im2col:
    /// `(out_h*out_w) x N x (K*K*C)`.
    pub fn lowered_gemm(&self) -> GemmShape {
        GemmShape::new(self.out_h() * self.out_w(), self.n, self.k * self.k * self.c)
    }

    /// Multiply-accumulate count of the dense convolution.
    pub fn macs(&self) -> u64 {
        self.lowered_gemm().macs()
    }

    /// Elements in the lowered (im2col-expanded) feature map.
    pub fn lowered_elements(&self) -> u64 {
        (self.out_h() * self.out_w()) as u64 * (self.k * self.k * self.c) as u64
    }

    /// Elements in the original input feature map.
    pub fn input_elements(&self) -> u64 {
        (self.h * self.w * self.c) as u64
    }

    /// Data-expansion factor of explicit im2col (≈ K*K for stride 1).
    pub fn im2col_expansion(&self) -> f64 {
        self.lowered_elements() as f64 / self.input_elements() as f64
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}x{} -> {} ch, {}x{} kernel, stride {}, pad {}",
            self.h, self.w, self.c, self.n, self.k, self.k, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_macs_and_flops() {
        let s = GemmShape::new(4, 5, 6);
        assert_eq!(s.macs(), 120);
        assert_eq!(s.flops(), 240);
        assert_eq!(s.to_string(), "4x5x6");
    }

    #[test]
    fn gemm_min_bytes() {
        let s = GemmShape::new(2, 2, 2);
        // A: 4*2 + B: 4*2 + D: 4*4 = 32 bytes.
        assert_eq!(s.min_bytes_fp16(), 32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gemm_zero_dim_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn conv_output_dims_no_padding() {
        let c = ConvShape::new(6, 6, 3, 8, 3, 1, 0);
        assert_eq!(c.out_h(), 4);
        assert_eq!(c.out_w(), 4);
    }

    #[test]
    fn conv_output_dims_padding_and_stride() {
        // The classic "same" conv: 56x56, k=3, pad=1, stride=1.
        let c = ConvShape::square(56, 128, 128, 3, 1, 1);
        assert_eq!(c.out_h(), 56);
        assert_eq!(c.out_w(), 56);
        // Strided downsampling conv.
        let c = ConvShape::square(56, 64, 128, 3, 2, 1);
        assert_eq!(c.out_h(), 28);
    }

    #[test]
    fn conv_lowered_gemm_matches_paper_formula() {
        let c = ConvShape::square(56, 128, 128, 3, 1, 1);
        let g = c.lowered_gemm();
        assert_eq!(g.m, 56 * 56);
        assert_eq!(g.n, 128);
        assert_eq!(g.k, 3 * 3 * 128);
    }

    #[test]
    fn conv_im2col_expansion_close_to_k_squared() {
        let c = ConvShape::square(56, 128, 128, 3, 1, 1);
        let e = c.im2col_expansion();
        assert!(e > 8.0 && e <= 9.0, "expansion {e} should approach K*K = 9");
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn conv_kernel_too_large_panics() {
        let _ = ConvShape::new(2, 2, 1, 1, 5, 1, 0);
    }

    #[test]
    fn conv_1x1_kernel() {
        let c = ConvShape::square(14, 256, 512, 1, 1, 0);
        assert_eq!(c.out_h(), 14);
        assert_eq!(c.lowered_gemm().k, 256);
        assert!((c.im2col_expansion() - 1.0).abs() < 1e-12);
    }
}
