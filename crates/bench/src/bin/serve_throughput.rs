//! Serving-throughput sweep: requests/second and latency of the
//! `dsstc-serve` runtime over a grid of maximum batch size x worker-thread
//! count, under one burst of mixed ResNet-50 / BERT traffic per cell.
//!
//! Shows the two effects the serving layer exists for: dynamic batching
//! amortising per-layer work into larger-M GEMMs, and the worker pool
//! spreading batches across cores.
//!
//! Run with `cargo run --release -p dsstc-bench --bin serve_throughput`.

use std::time::{Duration, Instant};

use dsstc_serve::{InferRequest, InferenceServer, ModelId, ServeConfig, ServerStats};
use dsstc_tensor::{Matrix, SparsityPattern};

const REQUESTS: u64 = 96;

/// Drives one burst of mixed traffic and returns wall time + final stats.
fn run_cell(workers: usize, max_batch: usize) -> (f64, ServerStats) {
    let mut server = InferenceServer::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_queue_wait(Duration::from_millis(2))
            .with_proxy_dim(64),
    );
    // Warm both models so every cell measures steady-state serving: the
    // one-time encode and bucket-pricing costs are exactly what the
    // repository and timing caches amortise away in a long-running server.
    for model in [ModelId::ResNet50, ModelId::BertBase] {
        server.warm_model(model, None);
    }
    let started = Instant::now();
    let pending: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let model = if i % 2 == 0 { ModelId::ResNet50 } else { ModelId::BertBase };
            let features = Matrix::random_sparse(4, 64, 0.4, SparsityPattern::Uniform, i);
            server.submit(InferRequest::new(model, features)).expect("queued")
        })
        .collect();
    for p in pending {
        p.wait().expect("response");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (elapsed, stats)
}

fn main() {
    println!("dsstc-serve throughput sweep: {REQUESTS} mixed ResNet-50/BERT requests per cell\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "workers", "max_batch", "req/s", "mean batch", "queue p99 ms", "exec p99 ms"
    );
    for &workers in &[1usize, 2, 4] {
        for &max_batch in &[1usize, 4, 8, 16] {
            let (elapsed, stats) = run_cell(workers, max_batch);
            println!(
                "{workers:>8} {max_batch:>10} {:>12.1} {:>12.2} {:>14.2} {:>14.2}",
                REQUESTS as f64 / elapsed,
                stats.mean_batch_size,
                stats.queue_p99_us / 1e3,
                stats.execute_p99_us / 1e3,
            );
        }
    }
    println!(
        "\n(modelled GPU latency per request is reported by the server itself; see\n examples/serve_demo.rs for the metrics surface)"
    );
}
