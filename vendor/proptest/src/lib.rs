//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds without network access, so this vendored shim
//! implements the API subset `tests/cross_crate_props.rs` uses: the
//! [`proptest!`] macro with a `proptest_config` attribute, [`Strategy`]
//! implementations for numeric ranges and tuples, [`any`] for primitive
//! types, `prop_map`, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * inputs are drawn from a seeded deterministic RNG (same values on every
//!   run), so failures are reproducible without a persistence file, and
//! * there is **no shrinking** — a failing case reports the panic from the
//!   raw drawn input.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Like the real crate, the default case count honours the
        // PROPTEST_CASES environment variable (CI pins it) and falls back
        // to 64 when unset or unparseable.
        ProptestConfig { cases: cases_from_env(std::env::var("PROPTEST_CASES").ok().as_deref()) }
    }
}

/// Parses a `PROPTEST_CASES` value, falling back to 64.
fn cases_from_env(value: Option<&str>) -> u32 {
    value.and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0).unwrap_or(64)
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (u64::from(hi as u64 - lo as u64) + 1)) as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_int_strategies!(usize, u64, u32, u16, u8);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Builds the deterministic RNG for one test case. Mixing the test name in
/// decorrelates the input streams of different properties.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut seed: u64 = 0xDEAD_BEEF_CAFE_F00D;
    for b in test_name.bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(seed ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Declares property tests: each function runs its body once per random case
/// with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // One closure call per case so `prop_assume!` can skip
                    // the case with an early return.
                    (move || { $body })();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::case_rng("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..=9), &mut rng);
            assert!((3..=9).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_prop_map_compose() {
        let strat = (1usize..=4, 0u8..=10).prop_map(|(a, b)| a * 100 + b as usize);
        let mut rng = super::case_rng("tuples", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((100..=410).contains(&v));
        }
    }

    #[test]
    fn cases_from_env_parses_and_falls_back() {
        assert_eq!(super::cases_from_env(None), 64);
        assert_eq!(super::cases_from_env(Some("128")), 128);
        assert_eq!(super::cases_from_env(Some(" 32 ")), 32);
        assert_eq!(super::cases_from_env(Some("0")), 64, "zero cases would skip every property");
        assert_eq!(super::cases_from_env(Some("not-a-number")), 64);
    }

    #[test]
    fn case_rng_differs_between_tests_and_cases() {
        let a = super::case_rng("x", 0).next_u64();
        let b = super::case_rng("y", 0).next_u64();
        let c = super::case_rng("x", 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_arguments(x in 1usize..=5, seed in any::<u64>()) {
            prop_assume!(seed != 0);
            prop_assert!((1..=5).contains(&x));
            prop_assert_eq!(x * 2 / 2, x);
        }
    }

    use rand::RngCore;
}
