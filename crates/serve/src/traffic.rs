//! Open-loop traffic generation.
//!
//! A closed-loop driver (submit a burst, wait for it to drain) measures the
//! server at whatever rate the server itself sustains; latency-vs-load
//! behaviour only becomes visible under **open-loop** arrivals, where
//! requests keep arriving at the offered rate no matter how far behind the
//! server falls. [`PoissonArrivals`] provides the standard memoryless
//! arrival process for that: inter-arrival gaps are i.i.d. exponential with
//! mean `1 / rate`, drawn from a seeded deterministic generator so a sweep
//! cell is exactly reproducible.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded Poisson arrival process: an infinite iterator of inter-arrival
/// gaps with exponential distribution at a configured mean rate.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_rps: f64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// An arrival process offering `rate_rps` requests per second on
    /// average, reproducible from `seed`.
    ///
    /// # Panics
    /// Panics if `rate_rps` is not strictly positive and finite.
    pub fn new(rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps > 0.0 && rate_rps.is_finite(), "arrival rate must be positive and finite");
        PoissonArrivals { rate_rps, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configured mean arrival rate, requests per second.
    pub fn rate_rps(&self) -> f64 {
        self.rate_rps
    }

    /// The mean inter-arrival gap, `1 / rate`.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.rate_rps)
    }

    /// Draws the next inter-arrival gap: `-ln(1 - u) / rate` with `u`
    /// uniform in `[0, 1)` (inverse-CDF sampling of the exponential
    /// distribution).
    pub fn next_gap(&mut self) -> Duration {
        let u: f64 = self.rng.random_range(0.0f64..1.0);
        Duration::from_secs_f64(-(1.0 - u).ln() / self.rate_rps)
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(self.next_gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_reproduces_the_exact_arrival_sequence() {
        let a: Vec<Duration> = PoissonArrivals::new(500.0, 42).take(256).collect();
        let b: Vec<Duration> = PoissonArrivals::new(500.0, 42).take(256).collect();
        assert_eq!(a, b, "same seed must replay the identical gap sequence");
        let c: Vec<Duration> = PoissonArrivals::new(500.0, 43).take(256).collect();
        assert_ne!(a, c, "different seeds must decorrelate the sequence");
    }

    #[test]
    fn empirical_mean_matches_the_configured_rate_within_5_percent() {
        let rate = 1000.0; // 1 ms mean gap
        let mut gen = PoissonArrivals::new(rate, 7);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| gen.next_gap().as_secs_f64()).sum();
        let mean = total / f64::from(n);
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean gap {mean} s vs expected {expected} s"
        );
        assert_eq!(gen.rate_rps(), rate);
        assert!((gen.mean_gap().as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn gaps_are_finite_and_non_negative() {
        let mut gen = PoissonArrivals::new(250.0, 9);
        for _ in 0..10_000 {
            let gap = gen.next_gap().as_secs_f64();
            assert!(gap.is_finite());
            assert!(gap >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 1);
    }
}
