//! The metrics core: lock-free named counters and gauges plus fixed
//! log-bucketed latency histograms, collected in a [`MetricsRegistry`].
//!
//! The registry complements the reservoir percentiles of [`crate::stats`]:
//! reservoirs give exact-until-capacity percentiles for end-of-run reports,
//! while the histograms here are cheap enough to update on every request,
//! mergeable across threads, bounded in memory no matter how long the
//! server runs, and renderable as Prometheus-style cumulative buckets for
//! live scraping (see [`crate::telemetry::export`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative width of any
/// bucket at `1 / 2^SUB_BITS` (25%).
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Values below `LINEAR_MAX` get one exact bucket each.
const LINEAR_MAX: u64 = (SUB as u64) << 1;
/// Total bucket count: the exact linear range plus `SUB` sub-buckets for
/// every octave up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize - 1) * SUB;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge (an instantaneous level, not a total).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples (latencies in µs).
///
/// The bucket index is computed with shifts only — no floats, no search:
/// values below `LINEAR_MAX` (8) get one exact bucket each, and every
/// power-of-two octave above is split into `SUB` (4) linear sub-buckets, so
/// no bucket is wider than 25% of its lower bound. Memory is bounded at
/// [`HISTOGRAM_BUCKETS`] atomic slots regardless of sample count, updates
/// are lock-free, and two histograms [`merge_from`](Self::merge_from)
/// exactly (bucket-wise addition, associative and commutative).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_MAX {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64; // >= SUB_BITS + 1
        let sub = ((value >> (msb - u64::from(SUB_BITS))) & (SUB as u64 - 1)) as usize;
        LINEAR_MAX as usize + (msb as usize - SUB_BITS as usize - 1) * SUB + sub
    }

    /// The half-open value range `[lower, upper)` of bucket `index` (the
    /// last bucket's upper bound saturates at `u64::MAX`).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        if (index as u64) < LINEAR_MAX {
            return (index as u64, index as u64 + 1);
        }
        let k = index - LINEAR_MAX as usize;
        let msb = (SUB_BITS as usize + 1 + k / SUB) as u32;
        let sub = (k % SUB) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lower = (SUB as u64 + sub) << (msb - SUB_BITS);
        (lower, lower.saturating_add(width))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a latency in µs, clamping negatives and NaN to zero.
    pub fn record_us(&self, us: f64) {
        // `as` saturates: NaN -> 0, negatives -> 0, oversized -> u64::MAX.
        self.record(us.round() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of every recorded sample.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram into this one (bucket-wise addition). The
    /// operation is associative and commutative, so per-thread histograms
    /// can be merged in any order with an identical result.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// The `[lower, upper)` bounds of the bucket holding the nearest-rank
    /// `q`-quantile, or `None` for an empty histogram. The exact quantile
    /// of the recorded stream always falls inside the returned range.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(Self::bucket_bounds(index));
            }
        }
        // Unreachable: cumulative reaches `total` by the last bucket.
        Some(Self::bucket_bounds(HISTOGRAM_BUCKETS - 1))
    }

    /// The nearest-rank `q`-quantile estimate: the upper bound of its
    /// bucket (conservative for SLO reporting; within 25% of exact by the
    /// bucket-width bound). Zero for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantile_bounds(q).map_or(0.0, |(_, upper)| upper as f64)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, the
    /// shape Prometheus exposition wants (`le` buckets are cumulative).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((Self::bucket_bounds(index).1, cumulative));
            }
        }
        out
    }
}

/// What a registry entry is named: the metric family, an optional
/// pre-rendered label set (e.g. `priority="high"`) and a help line.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MetricMeta {
    family: String,
    labels: String,
    help: String,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(MetricMeta, Arc<Counter>)>,
    gauges: Vec<(MetricMeta, Arc<Gauge>)>,
    histograms: Vec<(MetricMeta, Arc<LogHistogram>)>,
}

/// A registry of named metrics.
///
/// Registration (and rendering) takes a short mutex; the returned `Arc`
/// handles update lock-free on the hot path. Registering the same
/// `(family, labels)` twice returns the existing handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or registers a counter. `labels` is a pre-rendered Prometheus
    /// label set without braces (empty for none).
    pub fn counter(&self, family: &str, labels: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) =
            inner.counters.iter().find(|(m, _)| m.family == family && m.labels == labels)
        {
            return Arc::clone(c);
        }
        let handle = Arc::new(Counter::new());
        inner.counters.push((meta(family, labels, help), Arc::clone(&handle)));
        handle
    }

    /// Gets or registers a gauge.
    pub fn gauge(&self, family: &str, labels: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) =
            inner.gauges.iter().find(|(m, _)| m.family == family && m.labels == labels)
        {
            return Arc::clone(g);
        }
        let handle = Arc::new(Gauge::new());
        inner.gauges.push((meta(family, labels, help), Arc::clone(&handle)));
        handle
    }

    /// Gets or registers a histogram.
    pub fn histogram(&self, family: &str, labels: &str, help: &str) -> Arc<LogHistogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) =
            inner.histograms.iter().find(|(m, _)| m.family == family && m.labels == labels)
        {
            return Arc::clone(h);
        }
        let handle = Arc::new(LogHistogram::new());
        inner.histograms.push((meta(family, labels, help), Arc::clone(&handle)));
        handle
    }

    /// Renders every registered metric in Prometheus text exposition
    /// style, `# HELP` / `# TYPE` emitted once per family.
    pub fn render(&self, out: &mut String) {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut seen: Vec<&str> = Vec::new();
        for (m, c) in &inner.counters {
            type_line(out, &mut seen, m, "counter");
            out.push_str(&format!("{} {}\n", with_labels(&m.family, &m.labels), c.value()));
        }
        let mut seen: Vec<&str> = Vec::new();
        for (m, g) in &inner.gauges {
            type_line(out, &mut seen, m, "gauge");
            out.push_str(&format!("{} {}\n", with_labels(&m.family, &m.labels), g.value()));
        }
        let mut seen: Vec<&str> = Vec::new();
        for (m, h) in &inner.histograms {
            type_line(out, &mut seen, m, "histogram");
            let count = h.count();
            for (upper, cumulative) in h.cumulative_buckets() {
                let le = format!("le=\"{upper}\"");
                let labels = if m.labels.is_empty() { le } else { format!("{},{le}", m.labels) };
                out.push_str(&format!("{}_bucket{{{labels}}} {cumulative}\n", m.family));
            }
            let inf = if m.labels.is_empty() {
                "le=\"+Inf\"".to_string()
            } else {
                format!("{},le=\"+Inf\"", m.labels)
            };
            out.push_str(&format!("{}_bucket{{{inf}}} {count}\n", m.family));
            out.push_str(&format!("{}_sum{} {}\n", m.family, braced(&m.labels), h.sum()));
            out.push_str(&format!("{}_count{} {count}\n", m.family, braced(&m.labels)));
        }
    }
}

fn meta(family: &str, labels: &str, help: &str) -> MetricMeta {
    MetricMeta { family: family.to_string(), labels: labels.to_string(), help: help.to_string() }
}

fn type_line<'a>(out: &mut String, seen: &mut Vec<&'a str>, m: &'a MetricMeta, kind: &str) {
    if !seen.contains(&m.family.as_str()) {
        seen.push(&m.family);
        out.push_str(&format!("# HELP {} {}\n# TYPE {} {kind}\n", m.family, m.help, m.family));
    }
}

fn with_labels(family: &str, labels: &str) -> String {
    format!("{family}{}", braced(labels))
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::percentile;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_update_through_registry_handles() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("dsstc_test_total", "", "test counter");
        c.inc();
        c.add(4);
        // Re-registering returns the same handle.
        assert_eq!(registry.counter("dsstc_test_total", "", "test counter").value(), 5);
        let g = registry.gauge("dsstc_level", "", "test gauge");
        g.set(9);
        g.set(3);
        assert_eq!(g.value(), 3);
        let mut out = String::new();
        registry.render(&mut out);
        assert!(out.contains("# TYPE dsstc_test_total counter"));
        assert!(out.contains("dsstc_test_total 5"));
        assert!(out.contains("dsstc_level 3"));
    }

    #[test]
    fn labelled_families_emit_one_type_line() {
        let registry = MetricsRegistry::new();
        registry.counter("dsstc_by_class_total", "priority=\"high\"", "per-class").inc();
        registry.counter("dsstc_by_class_total", "priority=\"low\"", "per-class").add(2);
        let mut out = String::new();
        registry.render(&mut out);
        assert_eq!(out.matches("# TYPE dsstc_by_class_total counter").count(), 1);
        assert!(out.contains("dsstc_by_class_total{priority=\"high\"} 1"));
        assert!(out.contains("dsstc_by_class_total{priority=\"low\"} 2"));
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // The linear range: one bucket per value.
        for v in 0..LINEAR_MAX {
            let i = LogHistogram::bucket_index(v);
            assert_eq!(LogHistogram::bucket_bounds(i), (v, v + 1), "value {v}");
        }
        // Every power of two above opens a fresh sub-bucket whose lower
        // bound is the value itself.
        for shift in 3..63u32 {
            let v = 1u64 << shift;
            let (lower, upper) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert_eq!(lower, v, "2^{shift} must start its bucket");
            assert_eq!(upper - lower, 1 << (shift - SUB_BITS), "bucket width at 2^{shift}");
            // One below the boundary lands in the previous octave's last
            // sub-bucket.
            let (lower, upper) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v - 1));
            assert!(lower < v && v - 1 < upper, "2^{shift} - 1 in [{lower}, {upper})");
            assert_eq!(upper, v, "the previous bucket must end exactly at 2^{shift}");
        }
        // The top bucket saturates instead of overflowing.
        let top = LogHistogram::bucket_index(u64::MAX);
        assert_eq!(top, HISTOGRAM_BUCKETS - 1);
        let (lower, upper) = LogHistogram::bucket_bounds(top);
        assert!(lower < u64::MAX && upper == u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_partition() {
        // Consecutive buckets tile the value range with no gaps/overlaps.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let (_, upper) = LogHistogram::bucket_bounds(i);
            let (next_lower, _) = LogHistogram::bucket_bounds(i + 1);
            assert_eq!(upper, next_lower, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn record_us_clamps_pathological_floats() {
        let h = LogHistogram::new();
        h.record_us(f64::NAN);
        h.record_us(-3.5);
        h.record_us(1e300);
        assert_eq!(h.count(), 3);
        // NaN and negatives land in bucket 0, the huge value in the top.
        assert_eq!(h.quantile_bounds(0.0).unwrap().0, 0);
    }

    #[test]
    fn quantiles_of_known_stream() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (lower, upper) = h.quantile_bounds(0.5).unwrap();
        assert!(lower <= 500 && 500 < upper, "p50 bucket [{lower}, {upper}) must hold 500");
        let (lower, upper) = h.quantile_bounds(0.99).unwrap();
        assert!(lower <= 990 && 990 < upper, "p99 bucket [{lower}, {upper}) must hold 990");
        assert_eq!(h.sum(), 500_500);
        assert!(LogHistogram::new().quantile_bounds(0.5).is_none());
        assert_eq!(LogHistogram::new().quantile(0.99), 0.0);
    }

    proptest! {
        /// The histogram's quantile bucket always contains the exact
        /// nearest-rank percentile ([`crate::stats::percentile`]) of the
        /// identical sample stream — for any stream and any quantile.
        #[test]
        fn quantile_bucket_contains_exact_percentile(seed in any::<u64>()) {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(1usize..400);
            let h = LogHistogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mixed magnitudes: exercise linear and log ranges.
                let v = match rng.random_range(0u32..3) {
                    0 => rng.random_range(0u64..8),
                    1 => rng.random_range(0u64..10_000),
                    _ => rng.random_range(0u64..10_000_000_000),
                };
                h.record(v);
                samples.push(v as f64);
            }
            for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let exact = percentile(&samples, q);
                let (lower, upper) = h.quantile_bounds(q).expect("non-empty");
                prop_assert!(
                    lower as f64 <= exact && exact < upper as f64,
                    "q={q}: exact {exact} outside [{lower}, {upper})"
                );
                // The point estimate is the bucket's upper bound.
                prop_assert_eq!(h.quantile(q), upper as f64);
            }
        }

        /// Merging is associative: (a + b) + c == a + (b + c), bucket for
        /// bucket, for arbitrary streams.
        #[test]
        fn merge_is_associative(seed in any::<u64>()) {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let fill = |h: &LogHistogram, rng: &mut StdRng| {
                for _ in 0..rng.random_range(0usize..100) {
                    h.record(rng.random_range(0u64..1_000_000));
                }
            };
            let (a, b, c) = (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
            fill(&a, &mut rng);
            fill(&b, &mut rng);
            fill(&c, &mut rng);

            // left = (a + b) + c
            let left = LogHistogram::new();
            left.merge_from(&a);
            left.merge_from(&b);
            left.merge_from(&c);
            // right = a + (b + c)
            let bc = LogHistogram::new();
            bc.merge_from(&b);
            bc.merge_from(&c);
            let right = LogHistogram::new();
            right.merge_from(&a);
            right.merge_from(&bc);

            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.sum(), right.sum());
            prop_assert_eq!(left.cumulative_buckets(), right.cumulative_buckets());
            prop_assert_eq!(
                left.count(),
                a.count() + b.count() + c.count(),
                "merge must preserve totals"
            );
        }
    }
}
