//! Criterion bench behind Figure 22: cost of estimating whole-network
//! inference for each evaluated DNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsstc::InferenceEstimator;
use dsstc_models::networks;
use std::hint::black_box;

fn bench_network_estimation(c: &mut Criterion) {
    let estimator = InferenceEstimator::v100();
    let mut group = c.benchmark_group("fig22_network_estimation");
    group.sample_size(10);
    for network in [networks::resnet18(), networks::bert_base(), networks::rnn_lm()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(network.name().to_string()),
            &network,
            |b, net| b.iter(|| black_box(estimator.estimate_network(net))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_network_estimation);
criterion_main!(benches);
