//! Cross-crate integration tests: realistic data flows from the model /
//! pruning crates through the encodings and kernels to the timing model.

use dsstc::DualSideSparseTensorCore;
use dsstc_formats::{BitmapMatrix, CsrMatrix, TwoLevelBitmapMatrix, VectorLayout};
use dsstc_kernels::conv::{ConvKernel, ConvScheme, ConvWorkload};
use dsstc_kernels::im2col::{BitmapIm2col, CsrIm2col, DenseIm2col};
use dsstc_models::{activation_feature_map, activation_matrix, prune_magnitude, prune_n_of_m};
use dsstc_sim::{GpuConfig, GpuTimingModel};
use dsstc_tensor::{ConvShape, GemmShape, Matrix, SparsityPattern};

#[test]
fn pruned_weights_and_relu_activations_flow_through_the_full_stack() {
    // Models crate produces the data...
    let activations = activation_matrix(128, 96, 0.65, 3);
    let dense_weights = Matrix::random_sparse(96, 64, 0.0, SparsityPattern::Uniform, 4);
    let weights = prune_magnitude(&dense_weights, 0.85);

    // ...the engine runs the dual-side SpGEMM on it...
    let engine = DualSideSparseTensorCore::v100();
    let result = engine.spgemm(&activations, &weights);

    // ...and the result matches the dense reference while being modelled
    // faster than the dense Tensor Core.
    assert!(result.output.approx_eq(&activations.matmul(&weights), 1e-2));
    assert!(result.speedup_over_dense > 1.0, "speedup {}", result.speedup_over_dense);
}

#[test]
fn every_encoding_roundtrips_the_same_pruned_weight_matrix() {
    let weights =
        prune_n_of_m(&Matrix::random_sparse(64, 96, 0.0, SparsityPattern::Uniform, 9), 8, 32);
    assert_eq!(BitmapMatrix::encode(&weights, VectorLayout::ColumnMajor).decode(), weights);
    assert_eq!(BitmapMatrix::encode(&weights, VectorLayout::RowMajor).decode(), weights);
    assert_eq!(CsrMatrix::encode(&weights).decode(), weights);
    assert_eq!(
        TwoLevelBitmapMatrix::encode(&weights, 32, 16, VectorLayout::ColumnMajor).decode(),
        weights
    );
}

#[test]
fn all_three_im2col_variants_agree_on_a_relu_sparse_feature_map() {
    let shape = ConvShape::square(14, 8, 4, 3, 1, 1);
    let input = activation_feature_map(&shape, 0.55, 11);
    let dense = DenseIm2col::new().lower(&input, &shape);
    let csr = CsrIm2col::new();
    let bitmap = BitmapIm2col::new();
    assert_eq!(csr.lower(&csr.encode(&input), &shape), dense);
    assert_eq!(bitmap.lower(&bitmap.encode(&input), &shape), dense);
}

#[test]
fn conv_scheme_ordering_matches_the_paper_on_a_sparse_resnet_layer() {
    let model = GpuTimingModel::v100();
    let driver = ConvKernel::new(GpuConfig::v100());
    let workload = ConvWorkload::new(ConvShape::square(28, 128, 128, 3, 1, 1), 0.65, 0.8);
    let t = |s| driver.estimate_us(&model, &workload, s);
    let dense_explicit = t(ConvScheme::DenseExplicit);
    let dense_implicit = t(ConvScheme::DenseImplicit);
    let dual = t(ConvScheme::DualSparseImplicit);
    // Fig. 22's consistent ordering: implicit beats explicit, dual-side
    // sparse beats dense.
    assert!(dense_implicit < dense_explicit);
    assert!(dual < dense_implicit);
    // And the theoretical bound is not exceeded.
    let bound = 1.0 / ((1.0 - 0.65) * (1.0 - 0.8));
    assert!(dense_implicit / dual <= bound);
}

#[test]
fn figure21_key_relationships_hold_at_reduced_scale() {
    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(1024, 1024, 1024);
    // Dense/dense: our method is within ~1.5x of CUTLASS (small overhead).
    let dense_dense = engine.compare_schemes(shape, 0.0, 0.0);
    assert!(dense_dense.dual_side_us <= dense_dense.dense_us * 1.5);
    // A 50% / B 0%: we are already faster than dense (paper: crossover ~25%).
    let half = engine.compare_schemes(shape, 0.5, 0.0);
    assert!(half.dual_side_us < half.dense_us);
    // A 0% / B 99%: clear speedup even with one dense side (the paper's
    // 13.4x is measured at 4096^3 where the dense baseline is fully
    // compute-bound; at this reduced 1024^3 scale the launch/memory floor
    // compresses the ratio).
    let one_side = engine.compare_schemes(shape, 0.0, 0.99);
    assert!(one_side.dual_side_speedup() > 2.0, "got {}", one_side.dual_side_speedup());
    // Very sparse dual-side clearly beats the fixed-ratio baseline (again
    // the margin widens at the paper's 4096^3 scale).
    let very_sparse = engine.compare_schemes(shape, 0.95, 0.95);
    assert!(
        very_sparse.dual_side_us < very_sparse.vector_sparse_us * 0.8,
        "dual {} vs vector-sparse {}",
        very_sparse.dual_side_us,
        very_sparse.vector_sparse_us
    );
    // cuSparse loses to dense at moderate sparsity.
    let moderate = engine.compare_schemes(shape, 0.75, 0.75);
    if let Some(cusparse) = moderate.cusparse_us {
        assert!(cusparse > moderate.dense_us);
    }
}

#[test]
fn hardware_overhead_scales_with_the_gpu_and_stays_small() {
    let v100 = DualSideSparseTensorCore::v100().hardware_overhead();
    assert!(v100.area_fraction_of_v100() > 0.005 && v100.area_fraction_of_v100() < 0.02);
    let mut half_config = GpuConfig::v100();
    half_config.num_sms = 40;
    let half = DualSideSparseTensorCore::new(half_config).hardware_overhead();
    assert!(half.total().area_mm2 < v100.total().area_mm2);
}

#[test]
fn ablations_never_improve_on_the_full_design() {
    use dsstc_kernels::bitmap_spgemm::{BitmapSpGemm, BitmapSpGemmOptions, SyntheticGemmSpec};
    let model = GpuTimingModel::v100();
    let spec = SyntheticGemmSpec::new(GemmShape::new(1024, 1024, 1024), 0.85, 0.85, 5);
    let time = |opts: BitmapSpGemmOptions| {
        let (p, _) =
            BitmapSpGemm::new(GpuConfig::v100()).with_options(opts).profile_synthetic(&spec);
        model.estimate(&p).time_us()
    };
    let full = time(BitmapSpGemmOptions { operand_collector: true, two_level: true });
    let no_collector = time(BitmapSpGemmOptions { operand_collector: false, two_level: true });
    let one_level = time(BitmapSpGemmOptions { operand_collector: true, two_level: false });
    assert!(no_collector >= full);
    assert!(one_level >= full);
}
