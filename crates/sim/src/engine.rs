//! The roofline-style timing engine.
//!
//! [`GpuTimingModel::estimate`] converts a [`WorkloadProfile`] (device-wide
//! event counts) into cycles: each hardware resource — tensor-core issue,
//! scalar/POPC pipelines, DRAM, shared memory, the accumulation-buffer merge
//! path — contributes `events / peak_rate` cycles, the critical path is the
//! maximum over resources (they overlap in a well-pipelined kernel), an
//! occupancy factor penalises launches with too few thread blocks to fill
//! the machine, and a fixed launch overhead is added. This mirrors how the
//! paper's speedups arise: skipped OHMMAs shrink the tensor term, bitmap
//! metadata shrinks the DRAM term, bank conflicts inflate the merge term,
//! and small layers stay bound by data movement and overhead.

use crate::config::GpuConfig;
use crate::stats::{Bottleneck, KernelEstimate, WorkloadProfile};

/// The timing model for one GPU configuration.
#[derive(Clone, Debug)]
pub struct GpuTimingModel {
    config: GpuConfig,
}

impl GpuTimingModel {
    /// Creates a model for `config`.
    pub fn new(config: GpuConfig) -> Self {
        GpuTimingModel { config }
    }

    /// Convenience constructor for the paper's V100 configuration.
    pub fn v100() -> Self {
        Self::new(GpuConfig::v100())
    }

    /// The underlying configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Fraction of the machine a launch with `thread_blocks` blocks can keep
    /// busy (1.0 when there are at least `num_sms * max_blocks_per_sm`
    /// blocks).
    pub fn occupancy(&self, thread_blocks: u64) -> f64 {
        if thread_blocks == 0 {
            return 1.0;
        }
        let full = (self.config.num_sms * self.config.max_blocks_per_sm) as f64;
        (thread_blocks as f64 / full).min(1.0)
    }

    /// Estimates the execution time of one kernel launch.
    pub fn estimate(&self, profile: &WorkloadProfile) -> KernelEstimate {
        let cfg = &self.config;
        let occupancy = self.occupancy(profile.thread_blocks).max(1e-6);

        let tensor_cycles = profile.tensor_instructions() as f64 / cfg.tc_issue_per_cycle();
        let scalar_cycles = (profile.scalar_ops as f64 / cfg.scalar_ops_per_cycle())
            .max(profile.popc_instructions as f64 / cfg.int_ops_per_cycle());
        let dram_cycles = profile.dram_bytes() as f64 / cfg.dram_bytes_per_cycle();
        let shared_cycles = profile.shared_bytes as f64 / cfg.shared_bytes_per_cycle();
        // Merge work is expressed by kernels in warp-cycles; one merge engine
        // exists per sub-core, so the device retires `tc_issue_per_cycle`
        // warp-cycles of merge work per clock.
        let merge_cycles = (profile.merge_cycles + profile.accum_conflict_cycles) as f64
            / cfg.tc_issue_per_cycle();

        // Compute-side resources are scaled by occupancy (idle SMs cannot
        // help); DRAM is a shared resource but a handful of blocks cannot
        // saturate it either, so it gets the same treatment with a floor.
        let resources = [
            (Bottleneck::TensorCore, tensor_cycles / occupancy),
            (Bottleneck::Scalar, scalar_cycles / occupancy),
            (Bottleneck::Dram, dram_cycles / occupancy.max(0.25)),
            (Bottleneck::SharedMemory, shared_cycles / occupancy),
            (Bottleneck::Merge, merge_cycles / occupancy),
        ];
        let (mut bottleneck, critical_cycles) =
            resources.iter().cloned().fold((Bottleneck::TensorCore, 0.0f64), |acc, (b, c)| {
                if c > acc.1 {
                    (b, c)
                } else {
                    acc
                }
            });

        let overhead_cycles = cfg.kernel_launch_overhead_us * cfg.clock_ghz * 1e3;
        let total_cycles = critical_cycles + overhead_cycles;
        if overhead_cycles >= critical_cycles {
            bottleneck = Bottleneck::Parallelism;
        }

        KernelEstimate {
            name: profile.name.clone(),
            tensor_cycles,
            scalar_cycles,
            dram_cycles,
            shared_cycles,
            merge_cycles,
            total_cycles,
            total_us: cfg.cycles_to_us(total_cycles),
            bottleneck,
        }
    }

    /// Estimates a sequence of kernels executed back to back (e.g. explicit
    /// im2col followed by GEMM, or all layers of a network) and returns the
    /// summed time in microseconds.
    pub fn estimate_sequence(&self, profiles: &[WorkloadProfile]) -> f64 {
        profiles.iter().map(|p| self.estimate(p).total_us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuTimingModel {
        GpuTimingModel::v100()
    }

    #[test]
    fn empty_profile_costs_only_launch_overhead() {
        let est = model().estimate(&WorkloadProfile::new("empty"));
        assert!((est.total_us - 2.0).abs() < 1e-9);
        assert_eq!(est.bottleneck, Bottleneck::Parallelism);
    }

    #[test]
    fn dense_4096_gemm_is_near_peak_tflops() {
        // 4096^3 dense GEMM: HMMA count = MNK / 128 MACs per issued
        // instruction-pair... here macs per instruction slot = 128 (two TCs).
        let m = model();
        let macs: u64 = 4096 * 4096 * 4096;
        let mut p = WorkloadProfile::new("dense-gemm");
        p.hmma_instructions = macs / 128;
        p.dram_bytes_read = 300 << 20; // generous L2-reused traffic
        p.dram_bytes_written = 64 << 20;
        p.thread_blocks = 32 * 32;
        let est = m.estimate(&p);
        let flops = 2.0 * macs as f64;
        let tflops = flops / (est.total_us * 1e-6) / 1e12;
        assert!(tflops > 80.0 && tflops <= 130.0, "got {tflops} TFLOPS");
        assert_eq!(est.bottleneck, Bottleneck::TensorCore);
    }

    #[test]
    fn halving_tensor_work_halves_compute_bound_time() {
        let m = model();
        let mut p = WorkloadProfile::new("a");
        p.ohmma_instructions = 100_000_000;
        p.thread_blocks = 10_000;
        let t1 = m.estimate(&p).total_us;
        p.ohmma_instructions = 50_000_000;
        let t2 = m.estimate(&p).total_us;
        let ratio = (t1 - 2.0) / (t2 - 2.0); // subtract launch overhead
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernel_reports_dram_bottleneck() {
        let m = model();
        let mut p = WorkloadProfile::new("memcpy-like");
        p.dram_bytes_read = 1 << 30;
        p.dram_bytes_written = 1 << 30;
        p.thread_blocks = 10_000;
        p.hmma_instructions = 1000;
        let est = m.estimate(&p);
        assert_eq!(est.bottleneck, Bottleneck::Dram);
        // 2 GiB at 900 GB/s ~ 2.4 ms.
        assert!(est.time_ms() > 2.0 && est.time_ms() < 3.0, "got {} ms", est.time_ms());
    }

    #[test]
    fn low_occupancy_inflates_time() {
        let m = model();
        let mut p = WorkloadProfile::new("small");
        p.ohmma_instructions = 1_000_000;
        p.thread_blocks = 160; // fills the machine
        let full = m.estimate(&p).total_us;
        p.thread_blocks = 16; // 10% occupancy
        let starved = m.estimate(&p).total_us;
        assert!(starved > full * 5.0, "full {full} starved {starved}");
    }

    #[test]
    fn merge_conflicts_add_cycles() {
        let m = model();
        let mut p = WorkloadProfile::new("merge-bound");
        p.merge_cycles = 10_000_000;
        p.thread_blocks = 10_000;
        let base = m.estimate(&p).total_us;
        p.accum_conflict_cycles = 10_000_000;
        let with_conflicts = m.estimate(&p).total_us;
        assert!(with_conflicts > base * 1.8);
        assert_eq!(m.estimate(&p).bottleneck, Bottleneck::Merge);
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let m = model();
        assert!((m.occupancy(1_000_000) - 1.0).abs() < 1e-12);
        assert!(m.occupancy(1) < 0.01);
        assert!((m.occupancy(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_sums_kernel_times() {
        let m = model();
        let mut p = WorkloadProfile::new("k");
        p.ohmma_instructions = 1_000_000;
        p.thread_blocks = 1000;
        let single = m.estimate(&p).total_us;
        let seq = m.estimate_sequence(&[p.clone(), p.clone(), p]);
        assert!((seq - 3.0 * single).abs() < 1e-9);
    }

    #[test]
    fn scalar_and_popc_pipelines_are_modelled() {
        let m = model();
        let mut p = WorkloadProfile::new("scalar");
        p.scalar_ops = 1_000_000_000;
        p.thread_blocks = 10_000;
        let est = m.estimate(&p);
        assert_eq!(est.bottleneck, Bottleneck::Scalar);
        // 1e9 ops at 5120 ops/cycle ~ 195k cycles ~ 128 us.
        assert!(est.total_us > 100.0 && est.total_us < 200.0);
    }
}
