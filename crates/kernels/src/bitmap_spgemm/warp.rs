//! Warp-level bitmap outer-product SpGEMM (paper Section III-B).
//!
//! One warp owns a `32 x 32` output tile held in the OTC accumulation
//! buffer and iterates over `K` in steps of one condensed A column and one
//! condensed B row. Functionally each step is a sparse outer product merged
//! into the tile (gather–accumulate–scatter, Fig. 7); architecturally each
//! step costs a `BOHMMA`, two `POPC`s, the predicated `OHMMA`s and the merge
//! cycles counted by [`dsstc_sim::otc`].

use dsstc_formats::{BitmapMatrix, VectorLayout};
use dsstc_sim::{AccumulationBuffer, OtcConfig, WarpTileCost};
use dsstc_tensor::Matrix;

/// Cost summary of one warp tile including accumulation-buffer conflicts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WarpTileProfile {
    /// Instruction/merge counts from the OTC model.
    pub cost: WarpTileCost,
    /// Extra cycles lost to accumulation-buffer bank conflicts.
    pub conflict_cycles: u64,
}

/// Computes the per-step condensed non-zero counts of a column-major A tile
/// (one entry per column, i.e. per `k`).
pub fn a_step_nnz(a_tile: &BitmapMatrix) -> Vec<usize> {
    assert_eq!(a_tile.layout(), VectorLayout::ColumnMajor, "A tile must be column-major");
    (0..a_tile.vector_count()).map(|k| a_tile.vector_nnz(k)).collect()
}

/// Computes the per-step condensed non-zero counts of a row-major B tile
/// (one entry per row, i.e. per `k`).
pub fn b_step_nnz(b_tile: &BitmapMatrix) -> Vec<usize> {
    assert_eq!(b_tile.layout(), VectorLayout::RowMajor, "B tile must be row-major");
    (0..b_tile.vector_count()).map(|k| b_tile.vector_nnz(k)).collect()
}

/// Architectural cost of one warp tile given the per-step non-zero counts.
///
/// `use_collector` selects whether the accumulation buffer's operand
/// collector is present; without it, scatter conflicts inflate the merge.
pub fn warp_tile_profile(
    a_nnz: &[usize],
    b_nnz: &[usize],
    warp_dim: usize,
    otc: &OtcConfig,
    use_collector: bool,
) -> WarpTileProfile {
    let cost = WarpTileCost::from_step_nnz(a_nnz, b_nnz, warp_dim, otc);
    let buffer = AccumulationBuffer::from_otc(otc);
    // Each issued OHMMA delivers up to 16 scattered outputs to the banks.
    let factor = buffer.conflict_factor_estimate(16, use_collector);
    let conflict_cycles = ((factor - 1.0) * cost.steps.merge_cycles as f64).round() as u64;
    WarpTileProfile { cost, conflict_cycles }
}

/// Functional warp-level SpGEMM: accumulates `A_tile * B_tile` into `acc`
/// using the outer-product / gather-scatter formulation.
///
/// `a_tile` must be column-major encoded (`M x K`), `b_tile` row-major
/// (`K x N`), and `acc` sized `M x N`.
///
/// # Panics
/// Panics if the layouts or shapes are inconsistent.
pub fn warp_spgemm(a_tile: &BitmapMatrix, b_tile: &BitmapMatrix, acc: &mut Matrix) {
    assert_eq!(a_tile.layout(), VectorLayout::ColumnMajor, "A tile must be column-major");
    assert_eq!(b_tile.layout(), VectorLayout::RowMajor, "B tile must be row-major");
    assert_eq!(a_tile.cols(), b_tile.rows(), "inner dimensions must agree");
    assert_eq!(acc.rows(), a_tile.rows(), "accumulator rows mismatch");
    assert_eq!(acc.cols(), b_tile.cols(), "accumulator cols mismatch");

    for k in 0..a_tile.cols() {
        // Multiply-value: cross product of the condensed vectors.
        let a_positions = a_tile.vector_positions(k);
        let a_values = a_tile.vector_values(k);
        let b_positions = b_tile.vector_positions(k);
        let b_values = b_tile.vector_values(k);
        // Merge: gather the previous partials, accumulate, scatter back. On
        // a dense accumulator the gather/scatter is the indexing itself.
        for (ai, &row) in a_positions.iter().enumerate() {
            let av = a_values[ai];
            for (bi, &col) in b_positions.iter().enumerate() {
                acc[(row, col)] += av * b_values[bi];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsstc_tensor::SparsityPattern;

    fn encode_pair(
        sparsity_a: f64,
        sparsity_b: f64,
        k: usize,
    ) -> (Matrix, Matrix, BitmapMatrix, BitmapMatrix) {
        let a = Matrix::random_sparse(32, k, sparsity_a, SparsityPattern::Uniform, 7);
        let b = Matrix::random_sparse(k, 32, sparsity_b, SparsityPattern::Uniform, 8);
        let a_enc = BitmapMatrix::encode(&a, VectorLayout::ColumnMajor);
        let b_enc = BitmapMatrix::encode(&b, VectorLayout::RowMajor);
        (a, b, a_enc, b_enc)
    }

    #[test]
    fn warp_spgemm_matches_dense_matmul() {
        for (sa, sb) in [(0.0, 0.0), (0.5, 0.5), (0.9, 0.2), (0.99, 0.99)] {
            let (a, b, a_enc, b_enc) = encode_pair(sa, sb, 16);
            let mut acc = Matrix::zeros(32, 32);
            warp_spgemm(&a_enc, &b_enc, &mut acc);
            assert!(acc.approx_eq(&a.matmul(&b), 1e-3), "sparsity ({sa},{sb})");
        }
    }

    #[test]
    fn warp_spgemm_accumulates_into_existing_tile() {
        let (a, b, a_enc, b_enc) = encode_pair(0.6, 0.6, 16);
        let bias = Matrix::random_sparse(32, 32, 0.0, SparsityPattern::Uniform, 9);
        let mut acc = bias.clone();
        warp_spgemm(&a_enc, &b_enc, &mut acc);
        assert!(acc.approx_eq(&bias.add(&a.matmul(&b)), 1e-3));
    }

    #[test]
    fn step_nnz_extraction() {
        let (_, _, a_enc, b_enc) = encode_pair(0.5, 0.5, 16);
        let a_nnz = a_step_nnz(&a_enc);
        let b_nnz = b_step_nnz(&b_enc);
        assert_eq!(a_nnz.len(), 16);
        assert_eq!(b_nnz.len(), 16);
        assert_eq!(a_nnz.iter().sum::<usize>(), a_enc.nnz());
        assert_eq!(b_nnz.iter().sum::<usize>(), b_enc.nnz());
    }

    #[test]
    #[should_panic(expected = "column-major")]
    fn a_step_nnz_rejects_row_major() {
        let m = Matrix::zeros(4, 4);
        let enc = BitmapMatrix::encode(&m, VectorLayout::RowMajor);
        let _ = a_step_nnz(&enc);
    }

    #[test]
    fn profile_dense_tile_issues_all_ohmmas_without_conflicts_when_collected() {
        let otc = OtcConfig::paper();
        let p = warp_tile_profile(&[32; 16], &[32; 16], 32, &otc, true);
        assert_eq!(p.cost.steps.ohmma_issued, 16 * 8);
        assert_eq!(p.conflict_cycles, 0);
    }

    #[test]
    fn removing_the_operand_collector_costs_conflict_cycles() {
        let otc = OtcConfig::paper();
        let with = warp_tile_profile(&[20; 16], &[20; 16], 32, &otc, true);
        let without = warp_tile_profile(&[20; 16], &[20; 16], 32, &otc, false);
        assert_eq!(with.cost, without.cost);
        assert!(without.conflict_cycles > with.conflict_cycles);
    }

    #[test]
    fn sparse_tile_skips_ohmmas() {
        let otc = OtcConfig::paper();
        // Paper Fig. 5: a 20-nnz column and 11-nnz row skip 5 of 8 OHMMAs.
        let p = warp_tile_profile(&[20], &[11], 32, &otc, true);
        assert_eq!(p.cost.steps.ohmma_issued, 3);
        assert_eq!(p.cost.steps.ohmma_skipped, 5);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn warp_spgemm_validates_shapes() {
        let a = BitmapMatrix::encode(&Matrix::zeros(32, 16), VectorLayout::ColumnMajor);
        let b = BitmapMatrix::encode(&Matrix::zeros(8, 32), VectorLayout::RowMajor);
        let mut acc = Matrix::zeros(32, 32);
        warp_spgemm(&a, &b, &mut acc);
    }
}
