//! Request / response types of the serving runtime.

use std::time::Duration;

use dsstc_kernels::EncodingSpec;
use dsstc_models::{networks, Network};
use dsstc_tensor::Matrix;

use crate::telemetry::RequestTrace;

/// Scheduling priority of a request.
///
/// Priorities order extraction within a batch's compatibility class: when
/// more compatible requests are queued than fit in one batch, higher
/// priorities go out first (FIFO within one priority level). A request's
/// SLO deadline (see [`InferRequest::with_deadline`]) additionally makes the
/// scheduler flush its batch early when the deadline is about to be missed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background traffic: batched last, still bounded by the queue
    /// deadline.
    Low,
    /// The default service class.
    #[default]
    Normal,
    /// Latency-critical traffic: extracted first within its model.
    High,
}

impl Priority {
    /// Every priority, lowest first (matches the `Ord` derivation).
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Stable index into per-priority tables (`Low` = 0 .. `High` = 2).
    pub fn index(&self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Stable single-byte tag used by the wire protocol (see
    /// [`crate::net::frame`]). Equals [`Priority::index`] today, but the
    /// wire contract is this function, not the table index.
    pub fn wire_code(&self) -> u8 {
        self.index() as u8
    }

    /// Decodes a wire tag written by [`Priority::wire_code`].
    pub fn from_wire_code(code: u8) -> Option<Priority> {
        Priority::ALL.get(code as usize).copied()
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// The served model catalogue: the paper's five evaluated networks plus
/// ResNet-50 (the classic serving workload).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// VGG-16 (AGP-pruned CNN).
    Vgg16,
    /// ResNet-18 (AGP-pruned CNN).
    ResNet18,
    /// ResNet-50 (AGP-pruned CNN).
    ResNet50,
    /// Mask R-CNN (AGP-pruned CNN, COCO resolution).
    MaskRcnn,
    /// BERT-base encoder (movement-pruned GEMM stack).
    BertBase,
    /// 2+4-layer LSTM language model (AGP-pruned GEMM stack).
    RnnLm,
}

impl ModelId {
    /// Every served model.
    pub const ALL: [ModelId; 6] = [
        ModelId::Vgg16,
        ModelId::ResNet18,
        ModelId::ResNet50,
        ModelId::MaskRcnn,
        ModelId::BertBase,
        ModelId::RnnLm,
    ];

    /// Human-readable name (matches the underlying network table).
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::Vgg16 => "VGG-16",
            ModelId::ResNet18 => "ResNet-18",
            ModelId::ResNet50 => "ResNet-50",
            ModelId::MaskRcnn => "Mask R-CNN",
            ModelId::BertBase => "BERT-base encoder",
            ModelId::RnnLm => "RNN",
        }
    }

    /// Short filesystem-safe slug, used to name persisted encoded-weight
    /// artifacts.
    pub fn slug(&self) -> &'static str {
        match self {
            ModelId::Vgg16 => "vgg16",
            ModelId::ResNet18 => "resnet18",
            ModelId::ResNet50 => "resnet50",
            ModelId::MaskRcnn => "maskrcnn",
            ModelId::BertBase => "bertbase",
            ModelId::RnnLm => "rnnlm",
        }
    }

    /// Stable single-byte tag used by the wire protocol (see
    /// [`crate::net::frame`]). Matches this model's position in
    /// [`ModelId::ALL`]; new catalogue entries must append, never reorder.
    pub fn wire_code(&self) -> u8 {
        ModelId::ALL.iter().position(|m| m == self).expect("every model is in ALL") as u8
    }

    /// Decodes a wire tag written by [`ModelId::wire_code`].
    pub fn from_wire_code(code: u8) -> Option<ModelId> {
        ModelId::ALL.get(code as usize).copied()
    }

    /// The layer table the timing model charges for this model.
    pub fn network(&self) -> Network {
        match self {
            ModelId::Vgg16 => networks::vgg16(),
            ModelId::ResNet18 => networks::resnet18(),
            ModelId::ResNet50 => networks::resnet50(),
            ModelId::MaskRcnn => networks::mask_rcnn(),
            ModelId::BertBase => networks::bert_base(),
            ModelId::RnnLm => networks::rnn_lm(),
        }
    }

    /// Whether the functional proxy applies ReLU between layers (the CNNs;
    /// the GELU/sigmoid-based NLP models produce near-dense activations).
    pub fn uses_relu(&self) -> bool {
        !matches!(self, ModelId::BertBase | ModelId::RnnLm)
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// The encode-cache key: a model pruned to one weight-sparsity level.
///
/// Sparsity is stored in permille so the key is `Eq + Hash`; `None` means
/// "the per-layer sparsities of the published table".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Which model.
    pub model: ModelId,
    /// Uniform weight-sparsity override in permille, if any.
    pub sparsity_permille: Option<u16>,
}

impl ModelKey {
    /// Builds the key for a model and an optional uniform weight-sparsity
    /// override in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the override is outside `[0, 1]`.
    pub fn new(model: ModelId, weight_sparsity: Option<f64>) -> Self {
        let sparsity_permille = weight_sparsity.map(|s| {
            assert!((0.0..=1.0).contains(&s), "weight sparsity must be in [0,1]");
            (s * 1000.0).round() as u16
        });
        ModelKey { model, sparsity_permille }
    }

    /// The sparsity override as a fraction, if any.
    pub fn weight_sparsity(&self) -> Option<f64> {
        self.sparsity_permille.map(|p| f64::from(p) / 1000.0)
    }

    /// The real layer table this key serves: the model's published network
    /// with any uniform weight-sparsity override applied. Cheap to build
    /// (no weights are materialised), so schedulers can price batches
    /// without touching the encode cache.
    pub fn network(&self) -> Network {
        let base = self.model.network();
        match self.weight_sparsity() {
            None => base,
            Some(sparsity) => {
                let layers = base
                    .layers()
                    .iter()
                    .map(|layer| {
                        let mut layer = layer.clone();
                        layer.weight_sparsity = sparsity;
                        layer
                    })
                    .collect();
                Network::new(base.name(), layers)
            }
        }
    }
}

/// One inference request.
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// Which model to run.
    pub model: ModelId,
    /// Optional uniform weight-sparsity override (e.g. serve the same model
    /// pruned to several levels); `None` uses the published per-layer table.
    pub weight_sparsity: Option<f64>,
    /// Input features: one row per sample/token, `proxy_dim` columns.
    pub features: Matrix,
    /// Scheduling priority ([`Priority::Normal`] by default).
    pub priority: Priority,
    /// Optional per-request SLO: how long this request may wait in the
    /// batching queue before its batch is flushed early. Effectively capped
    /// at the server's `max_queue_wait`, which remains the upper bound for
    /// every request.
    pub deadline: Option<Duration>,
}

impl InferRequest {
    /// A request against the published sparsity table.
    pub fn new(model: ModelId, features: Matrix) -> Self {
        InferRequest {
            model,
            weight_sparsity: None,
            features,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Sets a uniform weight-sparsity override.
    pub fn with_weight_sparsity(mut self, sparsity: f64) -> Self {
        self.weight_sparsity = Some(sparsity);
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-request queue-wait SLO.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The encode-cache key this request maps to.
    pub fn key(&self) -> ModelKey {
        ModelKey::new(self.model, self.weight_sparsity)
    }
}

/// One completed inference.
#[derive(Clone, Debug)]
pub struct InferResponse {
    /// The id [`crate::InferenceServer::submit`] returned for the request.
    pub id: u64,
    /// Which model ran.
    pub model: ModelId,
    /// Output features (same row count as the request's input).
    pub output: Matrix,
    /// Wall-clock time the request waited in the batching queue, µs.
    pub queue_us: f64,
    /// Wall-clock time the worker spent executing the whole batch, µs.
    pub execute_us: f64,
    /// Modelled dual-side sparse Tensor Core time of the whole batch at the
    /// network's real layer shapes, µs.
    pub modelled_batch_us: f64,
    /// The batch's modelled time divided by its size: this request's
    /// amortised modelled latency, µs.
    pub modelled_request_us: f64,
    /// How many requests were merged into the executing batch.
    pub batch_size: usize,
    /// Index into the server's device pool of the device the batch was
    /// dispatched to (which is also the index of the worker thread that
    /// executed it — workers are pinned 1:1 to devices).
    pub device: usize,
    /// The encoding identity the batch executed: the tiling matches the
    /// chosen device's native [`dsstc_sim::GemmTiling`].
    pub encoding: EncodingSpec,
    /// The priority the request was scheduled at.
    pub priority: Priority,
    /// The request's staged timeline: admitted → enqueued → released →
    /// dispatched → cache resolved → execute start/end → responded (wire
    /// decode/flush stamps are added by the TCP front-end). Every stage up
    /// to `Responded` is populated by the time the response arrives.
    pub trace: RequestTrace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_match_network_tables() {
        for id in ModelId::ALL {
            assert_eq!(id.name(), id.network().name());
        }
    }

    #[test]
    fn slugs_are_filesystem_safe_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in ModelId::ALL {
            let slug = id.slug();
            assert!(slug.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{slug}");
            assert!(seen.insert(slug), "duplicate slug {slug}");
        }
    }

    #[test]
    fn relu_only_for_conv_models() {
        for id in ModelId::ALL {
            assert_eq!(id.uses_relu(), id.network().has_conv_layers(), "{id}");
        }
    }

    #[test]
    fn model_key_quantises_sparsity() {
        let a = ModelKey::new(ModelId::BertBase, Some(0.9004));
        let b = ModelKey::new(ModelId::BertBase, Some(0.9));
        assert_eq!(a, b);
        assert_eq!(a.weight_sparsity(), Some(0.9));
        assert_eq!(ModelKey::new(ModelId::BertBase, None).weight_sparsity(), None);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_override_panics() {
        let _ = ModelKey::new(ModelId::Vgg16, Some(1.5));
    }

    #[test]
    fn request_key_reflects_override() {
        let m = Matrix::zeros(4, 64);
        let r = InferRequest::new(ModelId::ResNet50, m.clone());
        assert_eq!(r.key(), ModelKey::new(ModelId::ResNet50, None));
        let r = InferRequest::new(ModelId::ResNet50, m).with_weight_sparsity(0.8);
        assert_eq!(r.key(), ModelKey::new(ModelId::ResNet50, Some(0.8)));
    }

    #[test]
    fn model_key_network_applies_the_override() {
        let plain = ModelKey::new(ModelId::BertBase, None).network();
        let overridden = ModelKey::new(ModelId::BertBase, Some(0.7)).network();
        assert_eq!(plain.layers().len(), overridden.layers().len());
        for layer in overridden.layers() {
            assert_eq!(layer.weight_sparsity, 0.7, "{}", layer.name);
        }
        assert_ne!(
            plain.layers().iter().map(|l| l.weight_sparsity).collect::<Vec<_>>(),
            overridden.layers().iter().map(|l| l.weight_sparsity).collect::<Vec<_>>()
        );
    }

    #[test]
    fn priorities_order_and_index_consistently() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Priority::High.to_string(), "high");
    }

    #[test]
    fn request_builders_set_priority_and_deadline() {
        let r = InferRequest::new(ModelId::BertBase, Matrix::zeros(1, 8));
        assert_eq!(r.priority, Priority::Normal);
        assert_eq!(r.deadline, None);
        let r = r.with_priority(Priority::High).with_deadline(Duration::from_millis(3));
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline, Some(Duration::from_millis(3)));
    }
}
