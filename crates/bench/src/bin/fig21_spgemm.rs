//! Regenerates **Figure 21**: SpGEMM execution time on a 4096x4096x4096
//! problem as matrix A's sparsity sweeps from 0 % to 99.9 %, for several
//! matrix B sparsities, compared against the CUTLASS dense baseline, the
//! fixed-ratio single-side Sparse Tensor Core, and a cuSparse-style CSR
//! SpGEMM.
//!
//! Run with `cargo run --release -p dsstc-bench --bin fig21_spgemm`.

use dsstc::DualSideSparseTensorCore;
use dsstc_formats::CsrMatrix;
use dsstc_kernels::csr_spgemm::CsrSpGemm;
use dsstc_sim::GpuConfig;
use dsstc_tensor::{GemmShape, Matrix, SparsityPattern};

fn main() {
    let engine = DualSideSparseTensorCore::v100();
    let shape = GemmShape::new(4096, 4096, 4096);
    let a_sparsities = [0.0, 0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90, 0.95, 0.99, 0.999];
    let b_sparsities = [0.0, 0.20, 0.40, 0.60, 0.80, 0.90, 0.99, 0.999];

    // Baselines that do not depend on A's sparsity.
    let dense_us = engine.compare_schemes(shape, 0.0, 0.0).dense_us;
    let vector_us = engine.compare_schemes(shape, 0.0, 0.75).vector_sparse_us;

    println!("Figure 21: SpGEMM execution time (us), 4096x4096x4096");
    println!("CUTLASS dense baseline: {dense_us:.1} us");
    println!(
        "Sparse Tensor Core [72] (fixed 75% weight sparsity): {vector_us:.1} us ({:.2}x)",
        dense_us / vector_us
    );
    println!();

    // Our method: one curve per B sparsity.
    print!("{:<16}", "A sparsity (%)");
    for &b in &b_sparsities {
        print!("{:>14}", format!("B={:.1}%", b * 100.0));
    }
    println!();
    for &a in &a_sparsities {
        print!("{:<16}", format!("{:.1}", a * 100.0));
        for &b in &b_sparsities {
            let est = engine.estimate_spgemm(shape, a, b);
            print!("{:>14}", format!("{:.1}", est.time_us()));
        }
        println!();
    }
    println!();

    // Speedup over CUTLASS for the same grid.
    print!("{:<16}", "speedup vs dense");
    for &b in &b_sparsities {
        print!("{:>14}", format!("B={:.1}%", b * 100.0));
    }
    println!();
    for &a in &a_sparsities {
        print!("{:<16}", format!("{:.1}", a * 100.0));
        for &b in &b_sparsities {
            let est = engine.estimate_spgemm(shape, a, b);
            print!("{:>14}", format!("{:.2}x", dense_us / est.time_us()));
        }
        println!();
    }
    println!();

    // cuSparse curve (B fixed at 99%, A from 90%): evaluated at a reduced
    // 1024^3 size to keep CSR materialisation cheap, then scaled by the
    // dense-GEMM work ratio, matching how the paper presents it as a
    // reference curve.
    println!("cuSparse-style CSR SpGEMM (B = 99%):");
    let small_shape = GemmShape::new(1024, 1024, 1024);
    let scale = shape.macs() as f64 / small_shape.macs() as f64;
    let cusparse_kernel = CsrSpGemm::new(GpuConfig::v100());
    for &a in &[0.90, 0.95, 0.99, 0.999] {
        let a_mat = Matrix::random_sparse(1024, 1024, a, SparsityPattern::Uniform, 7);
        let b_mat = Matrix::random_sparse(1024, 1024, 0.99, SparsityPattern::Uniform, 8);
        let profile =
            cusparse_kernel.profile(&CsrMatrix::encode(&a_mat), &CsrMatrix::encode(&b_mat));
        let us = engine.timing_model().estimate(&profile).time_us() * scale;
        println!("  A={:>6.1}%  {:>10.1} us   ({:.2}x vs CUTLASS)", a * 100.0, us, dense_us / us);
    }
    println!();
    println!(
        "(paper reference points: ours 13.4x at A=0%/B=99%, 23x at A=99.9%/B=99%; \
              cuSparse only beats CUTLASS above ~95% A sparsity)"
    );
}
