//! # dsstc-serve — batched, multi-threaded inference serving
//!
//! A serving runtime on top of the dual-side sparse Tensor Core stack,
//! turning the one-shot estimates of [`dsstc_kernels`] / `dsstc::inference`
//! into a request-driven system:
//!
//! * [`ModelRepository`] — loads a network from [`dsstc_models`], prunes its
//!   weights and **pre-encodes them once** into the paper's two-level bitmap
//!   format, cached per `(model, sparsity)` key. The paper encodes pruned
//!   weights offline for exactly this reason: weight sparsity is static, so
//!   per-request re-encoding is pure waste.
//! * [`BatchScheduler`] — accepts [`InferRequest`]s on a queue and
//!   dynamically merges compatible requests into larger-M GEMM batches,
//!   bounded by a maximum batch size and a queue-latency deadline.
//! * [`WorkerPool`] — OS threads executing batches on the dual-side SpGEMM
//!   kernel against the cached encodings; every request receives an
//!   [`InferResponse`] carrying its output features plus the modelled GPU
//!   latency of the real network at the batch's size (via
//!   [`BatchTimingModel`]).
//! * [`ServerStats`] — throughput, queue/execute latency percentiles, the
//!   batch-size histogram and the encode-cache hit rate.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use dsstc_serve::{InferRequest, InferenceServer, ModelId, ServeConfig};
//! use dsstc_tensor::{Matrix, SparsityPattern};
//!
//! let mut server = InferenceServer::start(
//!     ServeConfig::default()
//!         .with_workers(2)
//!         .with_max_batch(4)
//!         .with_max_queue_wait(Duration::from_millis(1))
//!         .with_proxy_dim(32),
//! );
//!
//! // Submit a burst of BERT requests; the scheduler batches them.
//! let pending: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let features = Matrix::random_sparse(2, 32, 0.3, SparsityPattern::Uniform, seed);
//!         server.submit(InferRequest::new(ModelId::BertBase, features)).unwrap()
//!     })
//!     .collect();
//! for p in pending {
//!     let response = p.wait().unwrap();
//!     assert_eq!(response.output.rows(), 2);
//!     assert!(response.modelled_batch_us > 0.0);
//! }
//!
//! // The first request encoded the weights; the rest reused the cache.
//! let stats = server.stats();
//! assert_eq!(stats.completed_requests, 4);
//! assert_eq!(stats.encode_misses, 1);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod config;
pub mod repository;
pub mod request;
pub mod server;
pub mod stats;
pub mod timing;
pub mod worker;

pub use crate::batcher::{BatchPolicy, BatchScheduler};
pub use crate::config::ServeConfig;
pub use crate::repository::{EncodedLayer, EncodedModel, ModelRepository};
pub use crate::request::{InferRequest, InferResponse, ModelId, ModelKey};
pub use crate::server::{InferenceServer, PendingResponse, ServeError};
pub use crate::stats::ServerStats;
pub use crate::timing::BatchTimingModel;
pub use crate::worker::WorkerPool;
